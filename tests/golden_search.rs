//! Golden snapshot of the schedule-space search: on (bert64, PC) at
//! `P=4, B=7` the searched [`ScheduleTable`] must pass the standalone
//! validity checker and *strictly beat* the best named scheme's simulated
//! iteration time — the paper-facing claim that the tabular IR admits
//! schedules the seven named generators do not emit. The winning table's
//! rendering and scores are frozen under `tests/golden/`.
//!
//! To regenerate after an intentional search/simulator change:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test --test golden_search
//! ```

use hanayo::cluster::topology::pc_partial_nvlink;
use hanayo::core::schedule::table::check_table;
use hanayo::model::{ModelConfig, Recompute};
use hanayo::sim::{search_schedule, ScheduleSearchOptions, SimOptions};
use std::fs;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

#[test]
fn searched_schedule_beats_best_named_scheme() {
    let cluster = pc_partial_nvlink(4);
    let r = search_schedule(
        &ModelConfig::bert64(),
        &cluster,
        4,
        7,
        1,
        Recompute::None,
        SimOptions::default(),
        &ScheduleSearchOptions::default(),
    )
    .unwrap();

    // The searched table is a legal schedule by the standalone checker...
    check_table(&r.table).unwrap();
    // ...and strictly beats the best named scheme — the acceptance bar.
    assert!(
        r.iteration_time_s < r.baseline_iteration_time_s,
        "searched {} did not beat best named ({}) {}",
        r.iteration_time_s,
        r.seed_scheme,
        r.baseline_iteration_time_s
    );

    // Freeze the full outcome: scores and the winning table's rendering.
    let mut rendered = String::new();
    rendered.push_str("pair        bert64 on PC, P=4 B=7, recompute none\n");
    rendered.push_str(&format!("seed scheme {}\n", r.seed_scheme));
    rendered.push_str(&format!("best named  {:.9} s\n", r.baseline_iteration_time_s));
    rendered.push_str(&format!("searched    {:.9} s\n", r.iteration_time_s));
    rendered.push_str(&format!("improvement {:.4} %\n", r.improvement_pct));
    rendered.push('\n');
    rendered.push_str(&r.table.render());

    let path = golden_dir().join("search_bert64_pc_p4_b7.txt");
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        fs::create_dir_all(golden_dir()).unwrap();
        fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {path:?} ({e}); \
             regenerate with GOLDEN_UPDATE=1 cargo test --test golden_search"
        )
    });
    assert_eq!(
        rendered, golden,
        "searched schedule drifted from {path:?}; if the change is intentional, \
         regenerate with GOLDEN_UPDATE=1 cargo test --test golden_search"
    );
}
