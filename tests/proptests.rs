//! Property-based tests over the whole stack: arbitrary pipeline shapes
//! must yield valid schedules, sane memory replays, bounded simulations
//! and bit-exact runtime equivalence.

use hanayo::cluster::topology::fc_full_nvlink;
use hanayo::core::config::{PipelineConfig, Scheme};
use hanayo::core::gantt::replay_timeline;
use hanayo::core::memory::unit_profile;
use hanayo::core::schedule::{build_compute_schedule, build_schedule};
use hanayo::core::validate::validate;
use hanayo::model::builders::MicroModel;
use hanayo::model::{CostTable, ModelConfig};
use hanayo::runtime::trainer::{sequential_reference, synthetic_data, train, TrainerConfig};
use hanayo::runtime::LossKind;
use hanayo::sim::{simulate, SimOptions};
use proptest::prelude::*;

/// Arbitrary scheme over a device count.
fn scheme_strategy(p: u32) -> BoxedStrategy<Scheme> {
    let mut options = vec![
        Just(Scheme::GPipe).boxed(),
        Just(Scheme::Dapple).boxed(),
        (1u32..=3).prop_map(|w| Scheme::Hanayo { waves: w }).boxed(),
        (2u32..=3).prop_map(|v| Scheme::Interleaved { chunks: v }).boxed(),
    ];
    if p.is_multiple_of(2) {
        options.push(Just(Scheme::Chimera).boxed());
    }
    proptest::strategy::Union::new(options).boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated schedule validates: completeness, chain order,
    /// matched communication, deadlock-freedom, flush.
    #[test]
    fn any_shape_generates_a_valid_schedule(
        (p, scheme) in (2u32..=6).prop_flat_map(|p| (Just(p), scheme_strategy(p))),
        b_mult in 1u32..=3,
        extra in 0u32..=2,
    ) {
        // Mix micro-batch counts that are and are not multiples of P
        // (Chimera needs an even count).
        let b = (p * b_mult + 2 * extra).max(2) & !1;
        let cfg = PipelineConfig::new(p, b, scheme).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        validate(&schedule).unwrap();
    }

    /// Unit-memory replay: every stash drains, peaks are positive and
    /// bounded by B units, and Hanayo holds exactly one weight copy.
    #[test]
    fn memory_replay_invariants(p in 2u32..=6, b in 2u32..=12, w in 1u32..=3) {
        let cfg = PipelineConfig::new(p, b, Scheme::Hanayo { waves: w }).unwrap();
        let cs = build_compute_schedule(&cfg).unwrap();
        let prof = unit_profile(&cs);
        for (d, (&mw, &ma)) in prof.mw_units.iter().zip(&prof.ma_peak_units).enumerate() {
            prop_assert!((mw - 1.0).abs() < 1e-9, "device {d} weight units {mw}");
            prop_assert!(ma > 0.0);
            prop_assert!(ma <= b as f64 + 1e-9, "device {d} peak {ma} > B {b}");
        }
    }

    /// Abstract replay: bubble ratio in [0,1), makespan at least the
    /// critical path of one micro-batch.
    #[test]
    fn replay_bounds(p in 2u32..=6, b in 2u32..=10, w in 1u32..=2) {
        let cfg = PipelineConfig::new(p, b, Scheme::Hanayo { waves: w }).unwrap();
        let cs = build_compute_schedule(&cfg).unwrap();
        let tl = replay_timeline(&cs, 1, 2, 0);
        prop_assert!((0.0..1.0).contains(&tl.bubble_ratio()));
        let s = cs.stage_map.stages as u64;
        prop_assert!(tl.makespan >= 3 * s, "makespan {} below one chain", tl.makespan);
    }

    /// Discrete-event simulation terminates with conserved compute for
    /// arbitrary shapes.
    #[test]
    fn simulation_conserves_compute(p in 2u32..=5, b in 2u32..=8, w in 1u32..=2) {
        let cfg = PipelineConfig::new(p, b, Scheme::Hanayo { waves: w }).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let cluster = fc_full_nvlink(p as usize);
        let cost = CostTable::build(&ModelConfig::gpt128(), cfg.stages(), 1);
        let r = simulate(&schedule, &cost, &cluster, SimOptions::default());
        let expect = b as f64 * cost.total_fwd_flops() * 3.0 / cluster.effective_flops(0);
        let busy: f64 = r.device_busy.iter().sum();
        prop_assert!((busy - expect).abs() / expect < 1e-6);
    }
}

proptest! {
    // The runtime spawns OS threads per case; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Bit-exact equivalence for random tiny training jobs.
    #[test]
    fn runtime_matches_sequential_on_random_shapes(
        p in 2u32..=3,
        b in 2u32..=4,
        w in 1u32..=2,
        seed in 0u64..1000,
    ) {
        let cfg = PipelineConfig::new(p, b, Scheme::Hanayo { waves: w }).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let s = schedule.stage_map.stages;
        let model = MicroModel { width: 6, total_blocks: s as usize, seed };
        let trainer = TrainerConfig::new(schedule, model.build_stages(s), 0.05, LossKind::Mse);
        let data = synthetic_data(seed.wrapping_add(1), 1, b as usize, 2, 6);
        let out = train(&trainer, &data);
        let seq = sequential_reference(&trainer.stages, &data, trainer.lr, &trainer.loss);
        prop_assert_eq!(out.stages, seq.stages);
    }
}
