//! Golden observability exposition: the seeded demo scenario behind the
//! `metrics` binary — a P=8/M=8 Hanayo-2w simulation, a serial sweep, an
//! 8-device training run, a checkpoint round-trip and one calibration
//! validation attempt — must render byte-identical Prometheus text and
//! `hanayo-metrics-v1` JSON on every run and every machine.
//!
//! Two ingredients make that possible: the registry clock is pinned
//! (every duration histogram collapses into its first bucket) and the
//! one scheduling-dependent series (`hanayo_worker_mailbox_parked_peak`)
//! is scrubbed before rendering. Everything that remains — worker op
//! counts, GEMM dispatches, engine events and stalls, serial-sweep cache
//! verdicts, checkpoint bytes, the calibration error histogram — is a
//! pure function of the workload, and this test freezes it.
//!
//! To regenerate after an intentional instrumentation change:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test --test golden_metrics
//! ```

use hanayo::metrics;
use hanayo::repro::metricsio::{demo_scenario, scrub_scheduling_dependent};
use std::fs;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn check(name: &str, rendered: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        fs::create_dir_all(golden_dir()).unwrap();
        fs::write(&path, rendered).unwrap();
        return;
    }
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden exposition {path:?} ({e}); \
             regenerate with GOLDEN_UPDATE=1 cargo test --test golden_metrics"
        )
    });
    assert_eq!(
        rendered, golden,
        "{name}: exposition drifted from the golden snapshot; if the \
         instrumentation change is intentional, regenerate with \
         GOLDEN_UPDATE=1 cargo test --test golden_metrics"
    );
}

/// One test function on purpose: the registry is process-global, and a
/// second test running concurrently would interleave its counts into
/// this snapshot.
#[test]
fn golden_metrics_exposition_p8_m8() {
    metrics::reset();
    // The same pinned instant the `metrics` binary uses, so binary and
    // test freeze identical documents.
    metrics::set_clock(metrics::ClockMode::Fixed(1_700_000_000_000_000_000));
    metrics::set_enabled(true);
    demo_scenario().expect("demo scenario");
    metrics::set_enabled(false);

    let mut snap = metrics::snapshot();
    scrub_scheduling_dependent(&mut snap);
    let prom = metrics::expo::prometheus(&snap);
    let json = metrics::expo::json(&snap);

    // The frozen document must also be well-formed exposition text.
    let samples = metrics::expo::validate_prometheus(&prom).expect("prometheus grammar");
    assert!(samples > 50, "suspiciously small exposition: {samples} samples");

    check("metrics_p8_m8.prom", &prom);
    check("metrics_p8_m8.json", &json);

    metrics::reset();
    metrics::set_clock(metrics::ClockMode::Wall);
}
