//! The trace-truth contract, closing the measurement loop end-to-end.
//!
//! 1. **Sim trace == sim report, exactly.** For every golden scheme at
//!    `(P=8, M=8)`, the trace lowered out of the discrete-event engine has
//!    a makespan bit-identical to `SimReport::iteration_time`, per-device
//!    busy identical to `device_busy`, and tracing never perturbs the
//!    report.
//! 2. **Closed loop: measure → calibrate → predict.** A real threaded
//!    training run is traced with wall-clock spans; `calibrate()` fits
//!    per-stage `T_F`/`T_B` and the link time; the resulting `CostTable`
//!    drives the simulator; the simulated makespan must land within
//!    [`CALIBRATION_TOLERANCE`] of the measured one. This is the
//!    profile-guided workflow the paper's §4 runtime uses to pick wave
//!    configurations, executed on the micro-model.
//! 3. **Chrome export round-trips.** Every exported trace is valid
//!    `trace_event` JSON with the fields Perfetto requires.

use hanayo::cluster::topology::fc_full_nvlink;
use hanayo::core::config::{PipelineConfig, Scheme};
use hanayo::core::schedule::build_schedule;
use hanayo::model::builders::{micro_cost_table, MicroModel};
use hanayo::model::{CostTable, ModelConfig, Recompute};
use hanayo::runtime::trainer::{synthetic_data, train, TrainerConfig};
use hanayo::runtime::LossKind;
use hanayo::sim::{simulate, simulate_traced, SimOptions};
use hanayo::trace::{analyze, calibrate, chrome_trace_json, validate_chrome_json, Trace};

/// Documented tolerance of the calibrated prediction on the micro-model:
/// the simulated makespan must land within ±40% of the measured one. The
/// residual is scheduling noise the simulator does not model (thread
/// wake-ups, channel latency, OS jitter) — per-op compute costs are fitted
/// from the very spans being predicted, so agreement far tighter than this
/// is typical; the bound is set for noisy CI machines.
const CALIBRATION_TOLERANCE: f64 = 0.4;

/// The 7 golden schemes (same set the golden-schedule snapshots freeze).
fn golden_schemes() -> Vec<(&'static str, Scheme)> {
    vec![
        ("gpipe", Scheme::GPipe),
        ("dapple", Scheme::Dapple),
        ("interleaved2", Scheme::Interleaved { chunks: 2 }),
        ("chimera", Scheme::Chimera),
        ("hanayo_w1", Scheme::Hanayo { waves: 1 }),
        ("hanayo_w2", Scheme::Hanayo { waves: 2 }),
        ("hanayo_w4", Scheme::Hanayo { waves: 4 }),
    ]
}

#[test]
fn sim_trace_makespan_equals_report_exactly_on_every_golden_scheme() {
    for (name, scheme) in golden_schemes() {
        let cfg = PipelineConfig::new(8, 8, scheme).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let cost = CostTable::build(&ModelConfig::bert64(), cfg.stages(), 1);
        let cluster = fc_full_nvlink(8);
        let untraced = simulate(&schedule, &cost, &cluster, SimOptions::default());
        let (report, trace) = simulate_traced(
            &schedule,
            &cost,
            &cluster,
            SimOptions { trace: true, ..Default::default() },
        );
        assert_eq!(untraced, report, "{name}: tracing perturbed the report");
        let trace = trace.expect("trace requested");
        trace.validate().unwrap_or_else(|e| panic!("{name}: invalid trace: {e}"));
        // Exact, not approximate: the trace is a lowering of the very
        // events the report aggregated.
        assert_eq!(trace.makespan(), report.iteration_time, "{name}: makespan diverged");
        assert_eq!(trace.device_busy(), report.device_busy, "{name}: busy diverged");
        let a = analyze(&trace);
        assert!(
            (a.bubble_ratio - report.bubble_ratio).abs() < 1e-12,
            "{name}: bubble {} vs {}",
            a.bubble_ratio,
            report.bubble_ratio
        );
        // The Chrome export of every golden trace is loadable.
        let json = chrome_trace_json(&trace).unwrap();
        assert_eq!(validate_chrome_json(&json).unwrap(), trace.events.len(), "{name}");
    }
}

/// One traced training run of the micro-model, returning the measured
/// trace and the stages it trained (for byte-column probing).
fn traced_run(p: u32, b: u32, scheme: Scheme) -> (Trace, Vec<hanayo::tensor::Stage>) {
    let cfg = PipelineConfig::new(p, b, scheme).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    let s = cfg.stages();
    // Wide enough that per-op compute (~hundreds of µs in a debug build)
    // dwarfs channel/wake-up latency (~tens of µs).
    let model = MicroModel { width: 64, total_blocks: s as usize * 2, seed: 23 };
    let stages = model.build_stages(s);
    let trainer = TrainerConfig {
        trace: true,
        ..TrainerConfig::new(schedule, stages.clone(), 0.05, LossKind::Mse)
    };
    let data = synthetic_data(17, 1, b as usize, 16, 64);
    let out = train(&trainer, &data);
    (out.trace.expect("trace requested"), stages)
}

#[test]
fn calibrated_sim_predicts_the_measured_runtime_makespan() {
    // Measure → calibrate → predict, with retries: the measurement side is
    // a real multi-threaded run on a shared CI machine, so any single
    // trace can be polluted by scheduling noise. Three attempts must
    // produce one within tolerance (each attempt re-measures AND
    // re-calibrates, so this never mixes runs).
    let (p, b, scheme) = (4u32, 8u32, Scheme::Dapple);
    let cfg = PipelineConfig::new(p, b, scheme).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    let cluster = fc_full_nvlink(p as usize);
    let mut errors = Vec::new();
    for attempt in 0..3u32 {
        let (trace, stages) = traced_run(p, b, scheme);
        trace.validate().unwrap();
        let measured = trace.duration();
        assert!(measured > 0.0);

        let cal = calibrate(&trace, cfg.stages() as usize).expect("full coverage");
        assert!(cal.fwd_samples.iter().all(|&n| n == b as usize), "{:?}", cal.fwd_samples);
        let bytes = micro_cost_table(&stages, 16, 64, Recompute::None);
        let table = cal.cost_table(&bytes, &cluster).unwrap();

        let report = simulate(&schedule, &table, &cluster, SimOptions::default());
        let predicted = report.iteration_time;
        // Scores the attempt and, with metrics enabled, records the error
        // percentage histogram + structured event.
        let rel_err = hanayo::trace::record_validation_attempt(
            attempt,
            predicted,
            measured,
            CALIBRATION_TOLERANCE,
        );
        if rel_err < CALIBRATION_TOLERANCE {
            return;
        }
        errors.push(rel_err);
    }
    panic!(
        "calibrated sim missed the measured makespan in all 3 attempts: \
         relative errors {errors:?} (tolerance {CALIBRATION_TOLERANCE})"
    );
}

#[test]
fn runtime_trace_exports_valid_chrome_json() {
    let (trace, _) = traced_run(2, 4, Scheme::Hanayo { waves: 1 });
    let json = chrome_trace_json(&trace).unwrap();
    assert_eq!(validate_chrome_json(&json).unwrap(), trace.events.len());
    // And the trace itself serde-round-trips exactly.
    let back: Trace = hanayo::trace::Trace::clone(&trace);
    let json2 = serde_json::to_string(&trace).unwrap();
    let reparsed: Trace = serde_json::from_str(&json2).unwrap();
    assert_eq!(reparsed, back);
}

#[test]
fn runtime_analysis_sees_pipeline_structure() {
    let (trace, _) = traced_run(4, 8, Scheme::Hanayo { waves: 1 });
    let a = analyze(&trace);
    // Every device computed something and the measurement axis is sane.
    assert!(a.device_busy.iter().all(|&busy| busy > 0.0), "{:?}", a.device_busy);
    assert!(a.duration > 0.0 && a.makespan >= a.duration);
    assert!((0.0..1.0).contains(&a.bubble_ratio), "bubble {}", a.bubble_ratio);
    // The dependency walk finds a multi-hop chain ending in real compute.
    assert!(a.critical_path_len > 2, "path {}", a.critical_path_len);
    assert!(a.critical_path_compute > 0.0);
    assert!(a.critical_path_fraction <= 1.0 + 1e-9);
}
