//! Fast-path vs. seed engine: the indexed simulator must reproduce the
//! seed `HashMap` engine's reports **exactly** — same makespans, same
//! per-device busy/wait times, same memory peaks, same spans — on every
//! golden scheme at `(P = 8, M = 8)`, on real cluster models, under both
//! prefetch settings. This is the contract that lets the tuner's wide
//! sweep run on the fast path while the seed engine stays the oracle.

use hanayo::cluster::topology::{fc_full_nvlink, lonestar6};
use hanayo::core::config::{PipelineConfig, Scheme};
use hanayo::core::schedule::build_schedule;
use hanayo::model::{CostTable, ModelConfig};
use hanayo::sim::{simulate, simulate_reference, SimOptions};

/// The 7 golden schemes frozen under `tests/golden/`.
fn golden_schemes() -> [Scheme; 7] {
    [
        Scheme::GPipe,
        Scheme::Dapple,
        Scheme::Interleaved { chunks: 2 },
        Scheme::Chimera,
        Scheme::Hanayo { waves: 1 },
        Scheme::Hanayo { waves: 2 },
        Scheme::Hanayo { waves: 4 },
    ]
}

fn check_scheme(scheme: Scheme) {
    let cfg = PipelineConfig::new(8, 8, scheme).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    let cost = CostTable::build(&ModelConfig::bert64(), cfg.stages(), 2);
    for cluster in [fc_full_nvlink(8), lonestar6(8)] {
        for opts in [SimOptions::default(), SimOptions { prefetch: false, ..Default::default() }] {
            let fast = simulate(&schedule, &cost, &cluster, opts);
            let seed = simulate_reference(&schedule, &cost, &cluster, opts);
            assert_eq!(
                fast.iteration_time, seed.iteration_time,
                "{scheme} on {}: makespan diverged (prefetch={})",
                cluster.name, opts.prefetch
            );
            assert_eq!(
                fast, seed,
                "{scheme} on {}: full report diverged (prefetch={})",
                cluster.name, opts.prefetch
            );
        }
    }
}

#[test]
fn gpipe_fast_path_matches_seed_engine() {
    check_scheme(Scheme::GPipe);
}

#[test]
fn dapple_fast_path_matches_seed_engine() {
    check_scheme(Scheme::Dapple);
}

#[test]
fn interleaved_fast_path_matches_seed_engine() {
    check_scheme(Scheme::Interleaved { chunks: 2 });
}

#[test]
fn chimera_fast_path_matches_seed_engine() {
    check_scheme(Scheme::Chimera);
}

#[test]
fn hanayo_one_wave_fast_path_matches_seed_engine() {
    check_scheme(Scheme::Hanayo { waves: 1 });
}

#[test]
fn hanayo_two_wave_fast_path_matches_seed_engine() {
    check_scheme(Scheme::Hanayo { waves: 2 });
}

#[test]
fn hanayo_four_wave_fast_path_matches_seed_engine() {
    check_scheme(Scheme::Hanayo { waves: 4 });
}

#[test]
fn all_golden_schemes_are_covered() {
    // Keep this list in lock-step with tests/golden/.
    assert_eq!(golden_schemes().len(), 7);
}
