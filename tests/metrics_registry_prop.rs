//! Property: the shard-per-thread metrics registry is linearizable for
//! the aggregates it reports. However an arbitrary batch of counter
//! increments and histogram observations is split across concurrently
//! running writer threads, the merged snapshot equals a serial replay of
//! the same batch: counter totals are exact sums, histogram bucket
//! counts and value sums are exact, and no series appears or vanishes.
//! (Gauges are last-write-wins by global sequence and so are *not*
//! interleaving-independent; they are exercised by the registry's unit
//! tests instead.)
//!
//! This file holds exactly one proptest on purpose: the registry is
//! process-global, and a second test mutating it concurrently would
//! corrupt the counts under comparison.

use proptest::prelude::*;
use std::thread;

/// One generated write: which series it lands in and what it carries.
#[derive(Debug, Clone)]
enum Op {
    /// (`series index`, `delta`)
    Count(usize, u64),
    /// (`series index`, `value`)
    Observe(usize, u64),
}

const NAMES: [&str; 3] = ["prop_counter_a", "prop_counter_b", "prop_hist"];
const LABELS: [&[(&str, &str)]; 2] = [&[], &[("shard", "x")]];
const BOUNDS: &[u64] = &[10, 100, 1_000];

fn apply(op: &Op) {
    match *op {
        Op::Count(i, delta) => {
            hanayo::metrics::counter_add(NAMES[i % 2], LABELS[i / 2 % 2], delta);
        }
        Op::Observe(i, value) => {
            hanayo::metrics::observe(NAMES[2], LABELS[i % 2], BOUNDS, value);
        }
    }
}

fn op_strategy() -> BoxedStrategy<Op> {
    prop_oneof![
        ((0usize..4), (0u64..1_000)).prop_map(|(i, d)| Op::Count(i, d)),
        ((0usize..2), (0u64..2_000)).prop_map(|(i, v)| Op::Observe(i, v)),
    ]
    .boxed()
}

/// Render the registry's current contents in a canonical, comparable
/// form. The Prometheus text exposition already sorts series and buckets
/// deterministically, so it doubles as the equality witness.
fn render() -> String {
    hanayo::metrics::expo::prometheus(&hanayo::metrics::snapshot())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // No explicit `#[test]` here: the shim's `proptest!` adds one, and a
    // doubled attribute registers the test twice — two copies would then
    // race on the process-global registry.
    fn concurrent_writers_equal_serial_replay(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        writers in 2usize..=6,
    ) {
        // Serial replay: one thread applies the whole batch in order.
        hanayo::metrics::reset();
        hanayo::metrics::set_enabled(true);
        for op in &ops {
            apply(op);
        }
        let serial = render();

        // Concurrent run: the same batch dealt round-robin to `writers`
        // threads, each hammering its own shard with no coordination.
        hanayo::metrics::reset();
        let chunks: Vec<Vec<Op>> = (0..writers)
            .map(|w| ops.iter().skip(w).step_by(writers).cloned().collect())
            .collect();
        thread::scope(|s| {
            for chunk in &chunks {
                s.spawn(move || {
                    for op in chunk {
                        apply(op);
                    }
                });
            }
        });
        let concurrent = render();

        hanayo::metrics::set_enabled(false);
        hanayo::metrics::reset();
        prop_assert_eq!(serial, concurrent);
    }
}
