//! Golden goodput tables: the failure/recovery cost model's verdict for
//! every benchmark scheme at `(P = 8, B = 8)` on TACC with a 1-day
//! per-device MTBF, at two checkpoint intervals, is frozen under
//! `tests/golden/ckpt_goodput_*` — so recovery-model drift (checkpoint
//! stall, restart cost, fleet MTBF, efficiency, goodput, the Young–Daly
//! optimum) fails loudly instead of silently re-ranking plans.
//!
//! To regenerate after an intentional model change:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test --test golden_goodput
//! ```

use hanayo::ckpt::recovery::{young_daly_interval_s, RecoveryOptions};
use hanayo::cluster::topology::lonestar6;
use hanayo::model::{ModelConfig, Recompute};
use hanayo::sim::plan::{evaluate_plan, Method, ParallelPlan};
use hanayo::sim::tuner::plan_recovery_eval;
use hanayo::sim::SimOptions;
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

const INTERVALS: [u32; 2] = [4, 16];
const DEVICE_MTBF_S: f64 = 86_400.0; // one day per device — failures bite
const RESTART_LATENCY_S: f64 = 30.0;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn render(name: &str, method: Method) -> String {
    let model = ModelConfig::bert64();
    let mut cluster = lonestar6(8);
    cluster.device_mtbf_s = DEVICE_MTBF_S;
    let plan = ParallelPlan {
        method,
        dp: 1,
        pp: 8,
        micro_batches: 8,
        micro_batch_size: 1,
        recompute: Recompute::None,
    };
    let result = evaluate_plan(&plan, &model, &cluster, SimOptions::default()).unwrap();
    let state_bytes = result.group_report.weight_mem.iter().copied().max().unwrap_or(0);
    let opts = RecoveryOptions { restart_latency_s: RESTART_LATENCY_S, device_mtbf_s: None };

    let mut out = String::new();
    writeln!(out, "goodput table: {name} (P=8, B=8, TACC, mtbf/device={DEVICE_MTBF_S}s)").unwrap();
    writeln!(out, "iteration time s:     {:.6}", result.iteration_time).unwrap();
    writeln!(out, "throughput seq/s:     {:.6}", result.throughput).unwrap();
    writeln!(out, "ckpt state bytes:     {state_bytes}").unwrap();
    for k in INTERVALS {
        let e = plan_recovery_eval(&result, &cluster, k, &opts);
        writeln!(
            out,
            "interval {k:>3}: write {:.6} s, restart {:.6} s, mtbf {:.1} s, \
             efficiency {:.6}, goodput {:.6} seq/s",
            e.checkpoint_write_s, e.restart_s, e.cluster_mtbf_s, e.efficiency, e.goodput_seq_per_s
        )
        .unwrap();
        writeln!(
            out,
            "young-daly optimum:   {:.6} s",
            young_daly_interval_s(e.checkpoint_write_s, e.cluster_mtbf_s, e.restart_s)
        )
        .unwrap();
    }
    out
}

fn check_snapshot(name: &str, method: Method) {
    let rendered = render(name, method);
    let path = golden_dir().join(format!("ckpt_goodput_{name}.txt"));

    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        fs::create_dir_all(golden_dir()).unwrap();
        fs::write(&path, &rendered).unwrap();
        return;
    }

    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden goodput snapshot {path:?} ({e}); \
             regenerate with GOLDEN_UPDATE=1 cargo test --test golden_goodput"
        )
    });
    assert_eq!(
        rendered, golden,
        "{name}: goodput table drifted from {path:?}; if the change is intentional, \
         regenerate with GOLDEN_UPDATE=1 cargo test --test golden_goodput"
    );
}

#[test]
fn golden_goodput_gpipe() {
    check_snapshot("gpipe_p8_m8", Method::GPipe);
}

#[test]
fn golden_goodput_dapple() {
    check_snapshot("dapple_p8_m8", Method::Dapple);
}

#[test]
fn golden_goodput_chimera() {
    check_snapshot("chimera_p8_m8", Method::ChimeraNative);
}

#[test]
fn golden_goodput_hanayo_w1() {
    check_snapshot("hanayo_w1_p8_m8", Method::Hanayo { waves: 1 });
}

#[test]
fn golden_goodput_hanayo_w2() {
    check_snapshot("hanayo_w2_p8_m8", Method::Hanayo { waves: 2 });
}

#[test]
fn golden_goodput_hanayo_w4() {
    check_snapshot("hanayo_w4_p8_m8", Method::Hanayo { waves: 4 });
}
