//! Cross-engine smoke tests: one per scheme, closing the
//! `schedule → sim` loop against the abstract replay.
//!
//! Setup: an idealised cluster (every link `Local`: zero latency, infinite
//! bandwidth) and a synthetic cost table pinned to exactly one abstract
//! time unit per forward and two per backward (`T_B = 2 T_F`, `T_C = 0` —
//! the paper's Fig. 2 cost convention). Under those costs the
//! discrete-event simulator and `replay_timeline` model the same machine,
//! so their makespans must agree *exactly*: every simulator event lands on
//! a whole number of units and `iteration_time` equals the abstract
//! makespan. Any scheduler or engine change that skews dependency handling
//! between the two engines breaks these tests.

use hanayo::cluster::topology::ClusterSpec;
use hanayo::cluster::{GpuModel, Link, LinkClass};
use hanayo::core::config::{PipelineConfig, Scheme};
use hanayo::core::gantt::replay_timeline;
use hanayo::core::schedule::{build_compute_schedule, build_schedule};
use hanayo::core::validate::validate;
use hanayo::model::CostTable;
use hanayo::sim::{simulate, SimOptions};

/// A `p`-device cluster where communication is free and every device
/// computes at the same speed.
fn ideal_cluster(p: usize) -> ClusterSpec {
    ClusterSpec {
        name: "ideal".to_string(),
        gpus: vec![GpuModel::A100_80G; p],
        node: vec![0; p],
        links: vec![vec![Link::of(LinkClass::Local); p]; p],
        mfu: 0.5,
        device_mtbf_s: f64::INFINITY,
    }
}

/// A cost table where one forward costs exactly one simulated second and
/// one backward exactly two, with zero-byte messages.
fn unit_costs(cluster: &ClusterSpec, stages: usize) -> CostTable {
    let flops_per_unit = cluster.effective_flops(0);
    CostTable {
        layers_per_stage: vec![1.0; stages],
        fwd_flops: vec![flops_per_unit; stages],
        bwd_flops: vec![2.0 * flops_per_unit; stages],
        stash_bytes: vec![1; stages],
        weight_bytes: vec![1; stages],
        grad_bytes: vec![1; stages],
        msg_bytes: 0,
    }
}

/// Validate the schedule, then check the simulated iteration time equals
/// the abstract replay's makespan under identical `(1, 2, 0)` unit costs.
fn check_scheme(scheme: Scheme) {
    let (p, b) = (8, 8);
    let cfg = PipelineConfig::new(p, b, scheme).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    validate(&schedule).unwrap_or_else(|e| panic!("{scheme}: validate failed: {e}"));

    let cs = build_compute_schedule(&cfg).unwrap();
    let abstract_makespan = replay_timeline(&cs, 1, 2, 0).makespan;

    let cluster = ideal_cluster(p as usize);
    let cost = unit_costs(&cluster, schedule.stage_map.stages as usize);
    let report = simulate(&schedule, &cost, &cluster, SimOptions::default());

    assert_eq!(
        report.iteration_time, abstract_makespan as f64,
        "{scheme}: sim makespan {} != abstract replay makespan {}",
        report.iteration_time, abstract_makespan
    );
}

#[test]
fn gpipe_sim_matches_replay() {
    check_scheme(Scheme::GPipe);
}

#[test]
fn dapple_sim_matches_replay() {
    check_scheme(Scheme::Dapple);
}

#[test]
fn interleaved_sim_matches_replay() {
    check_scheme(Scheme::Interleaved { chunks: 2 });
}

#[test]
fn chimera_sim_matches_replay() {
    check_scheme(Scheme::Chimera);
}

#[test]
fn hanayo_one_wave_sim_matches_replay() {
    check_scheme(Scheme::Hanayo { waves: 1 });
}

#[test]
fn hanayo_two_wave_sim_matches_replay() {
    check_scheme(Scheme::Hanayo { waves: 2 });
}

#[test]
fn hanayo_four_wave_sim_matches_replay() {
    check_scheme(Scheme::Hanayo { waves: 4 });
}
