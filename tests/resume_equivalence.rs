//! The resume-equivalence contract, pinned on every golden scheme at
//! `(P = 8, M = 8)`: kill a device mid-run with the failure injector,
//! restore from the last durable checkpoint, and the finished run's final
//! weights, losses and per-device peak stash bytes are **bitwise equal**
//! to a run that never failed.
//!
//! Chimera-native replicates stages, which the threaded runtime
//! deliberately rejects — so its row runs the paper's own fairness
//! transformation (two data-parallel 1-wave pipelines on `P/2` devices
//! each, Fig. 5) through the data-parallel resume path, with the kill
//! landing on a global device rank inside the *second* replica.

use hanayo::ckpt::{Checkpoint, CheckpointPolicy, FailurePlan};
use hanayo::core::config::{PipelineConfig, Scheme};
use hanayo::core::schedule::build_schedule;
use hanayo::model::builders::MicroModel;
use hanayo::runtime::trainer::{synthetic_data, train, train_data_parallel, TrainerConfig};
use hanayo::runtime::{
    resume, resume_data_parallel, try_train_data_parallel_resumable, try_train_resumable, LossKind,
    TrainOutput, WorkerError,
};
use hanayo::tensor::Stage;

const P: u32 = 8;
const B: u32 = 8;
const ITERATIONS: usize = 2;
const KILL_AT: u32 = 1;

/// The 7 golden schemes, with whether the threaded runtime can train them
/// natively (Chimera-native replicates weights, which the runtime
/// rejects; it runs via the wave transformation instead).
fn golden_schemes() -> Vec<(&'static str, Scheme, bool)> {
    vec![
        ("gpipe", Scheme::GPipe, true),
        ("dapple", Scheme::Dapple, true),
        ("interleaved2", Scheme::Interleaved { chunks: 2 }, true),
        ("chimera", Scheme::Chimera, false),
        ("hanayo_w1", Scheme::Hanayo { waves: 1 }, true),
        ("hanayo_w2", Scheme::Hanayo { waves: 2 }, true),
        ("hanayo_w4", Scheme::Hanayo { waves: 4 }, true),
    ]
}

fn assert_bitwise_equal(name: &str, a: &TrainOutput, b: &TrainOutput) {
    let bits = |o: &TrainOutput| -> Vec<u32> {
        o.stages.iter().flat_map(Stage::flat_params).map(f32::to_bits).collect()
    };
    assert_eq!(bits(a), bits(b), "{name}: final weights diverged");
    assert_eq!(
        a.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        b.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        "{name}: losses diverged"
    );
    assert_eq!(a.peak_stash_bytes, b.peak_stash_bytes, "{name}: peak stash bytes diverged");
}

/// Native path: kill device `P/2` at iteration 1 of 2 and resume from the
/// durable checkpoint (policy: every iteration). The checkpoint takes a
/// round trip through its file format on the way — on-disk exactness is
/// part of the pinned claim.
fn check_native(name: &str, scheme: Scheme) {
    let cfg = PipelineConfig::new(P, B, scheme).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    let s = schedule.stage_map.stages;
    let model = MicroModel { width: 8, total_blocks: s as usize, seed: 77 };
    let data = synthetic_data(13, ITERATIONS, B as usize, 2, 8);
    let base = TrainerConfig::new(schedule, model.build_stages(s), 0.05, LossKind::Mse);

    let uninterrupted = train(&base, &data);

    let armed = TrainerConfig {
        checkpoint: CheckpointPolicy::every(1),
        failure: FailurePlan::KillDevice { device: P / 2, iteration: KILL_AT },
        ..base.clone()
    };
    let failed = try_train_resumable(&armed, &data).unwrap_err();
    assert!(
        matches!(failed.error.primary, WorkerError::Injected { iteration: KILL_AT, .. }),
        "{name}: expected the injected kill, got {}",
        failed.error.primary
    );
    let ckpt = failed.checkpoint.expect("durable checkpoint");
    assert_eq!(ckpt.iteration, KILL_AT, "{name}: checkpoint at the last completed boundary");

    let restored = Checkpoint::from_json(&ckpt.to_json().unwrap()).expect("valid envelope");
    let resumed =
        resume(&TrainerConfig { failure: FailurePlan::None, ..armed }, &restored, &data).unwrap();
    assert_bitwise_equal(name, &uninterrupted, &resumed);
}

/// Chimera via the wave transformation: 2 replicas × (1-wave, P/2, B/2),
/// killed on global rank `P/2 + 1` (replica 1, local device 1).
fn check_chimera_wave() {
    let name = "chimera (wave transformation)";
    let half = P / 2;
    let cfg = PipelineConfig::new(half, B / 2, Scheme::Hanayo { waves: 1 }).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    let s = schedule.stage_map.stages;
    let model = MicroModel { width: 8, total_blocks: s as usize, seed: 78 };
    let shards = vec![
        synthetic_data(21, ITERATIONS, (B / 2) as usize, 2, 8),
        synthetic_data(22, ITERATIONS, (B / 2) as usize, 2, 8),
    ];
    let base = TrainerConfig::new(schedule, model.build_stages(s), 0.05, LossKind::Mse);

    let uninterrupted = train_data_parallel(&base, &shards);

    let armed = TrainerConfig {
        checkpoint: CheckpointPolicy::every(1),
        failure: FailurePlan::KillDevice { device: half + 1, iteration: KILL_AT },
        ..base.clone()
    };
    let failed = try_train_data_parallel_resumable(&armed, &shards).unwrap_err();
    assert_eq!(failed.error.replica, Some(1), "{name}: the kill lands in replica 1");
    let ckpt = failed.checkpoint.expect("durable checkpoint");
    assert_eq!(ckpt.world, 2);
    assert_eq!(ckpt.peak_stash_bytes.len(), P as usize, "peaks cover all global devices");

    let restored = Checkpoint::from_json(&ckpt.to_json().unwrap()).expect("valid envelope");
    let resumed = resume_data_parallel(
        &TrainerConfig { failure: FailurePlan::None, ..armed },
        &restored,
        &shards,
    )
    .unwrap();
    assert_bitwise_equal(name, &uninterrupted, &resumed);
}

#[test]
fn kill_and_resume_is_bitwise_equal_on_every_golden_scheme() {
    for (name, scheme, runnable) in golden_schemes() {
        if runnable {
            check_native(name, scheme);
        } else {
            check_chimera_wave();
        }
    }
}
