//! The memory-truth contract: the four memory models agree *exactly*.
//!
//! For every golden scheme at `(P=8, M=8)` and both recompute modes, four
//! independent accountings of activation memory are pinned against each
//! other:
//!
//! 1. **Runtime (measured)** — the threaded workers' instrumented
//!    live-bytes counter: real tensors, real stashes, per-device peak.
//! 2. **Simulator (modelled)** — `simulate` driven by a cost table whose
//!    stash bytes are *probed from the same micro-model stages*
//!    (`micro_cost_table`); its `peak_mem − weight_mem` must equal the
//!    runtime's measurement byte for byte.
//! 3. **Static analysis (proved)** — `analyze::static_stash_peak`, the
//!    activation-liveness replay over the schedule that never executes
//!    anything; exactly equal to 2 in integer bytes (the claim that lets
//!    the tuner reject OOM plans without simulating).
//! 4. **Unit replay (abstract)** — `core::memory::unit_profile_with` in
//!    Fig. 3 units, converted to bytes through the size of one activation
//!    unit.
//!
//! Agreement is exact (integer bytes) between 1, 2 and 3, and within
//! float rounding for 4. Chimera-native replicates stages, which the
//! runtime deliberately rejects, so its row checks 2 vs 3 vs 4 only.

use hanayo::analyze::static_stash_peak;
use hanayo::cluster::topology::fc_full_nvlink;
use hanayo::core::config::{PipelineConfig, Scheme};
use hanayo::core::memory::unit_profile_with;
use hanayo::core::schedule::{build_compute_schedule, build_schedule};
use hanayo::model::builders::{micro_cost_table, MicroModel};
use hanayo::model::Recompute;
use hanayo::runtime::trainer::{synthetic_data, train, TrainerConfig};
use hanayo::runtime::LossKind;
use hanayo::sim::{simulate, SimOptions};

const P: u32 = 8;
const B: u32 = 8;
const ROWS: usize = 2;
const WIDTH: usize = 8;
/// Micro-model blocks per pipeline stage — more than one, so `Full` has
/// internal activations to discard on every stage.
const BLOCKS_PER_STAGE: usize = 2;

/// The 7 golden schemes, with whether the threaded runtime can train them
/// (Chimera-native replicates weights, which the runtime rejects).
fn golden_schemes() -> Vec<(&'static str, Scheme, bool)> {
    vec![
        ("gpipe", Scheme::GPipe, true),
        ("dapple", Scheme::Dapple, true),
        ("interleaved2", Scheme::Interleaved { chunks: 2 }, true),
        ("chimera", Scheme::Chimera, false),
        ("hanayo_w1", Scheme::Hanayo { waves: 1 }, true),
        ("hanayo_w2", Scheme::Hanayo { waves: 2 }, true),
        ("hanayo_w4", Scheme::Hanayo { waves: 4 }, true),
    ]
}

struct Truth {
    /// Simulator per-device peak stash bytes (`peak_mem − weight_mem`).
    sim_stash: Vec<u64>,
    /// Static-analyzer per-device peak stash bytes — proven, not run.
    static_stash: Vec<u64>,
    /// Runtime measured per-device peak stash bytes (`None` for schemes
    /// the runtime cannot train).
    runtime_stash: Option<Vec<usize>>,
    /// Unit-replay prediction converted to bytes.
    replay_stash: Vec<f64>,
}

fn measure(scheme: Scheme, runnable: bool, mode: Recompute) -> Truth {
    let cfg = PipelineConfig::new(P, B, scheme).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    let cs = build_compute_schedule(&cfg).unwrap();
    let s = cfg.stages();
    let model = MicroModel { width: WIDTH, total_blocks: s as usize * BLOCKS_PER_STAGE, seed: 77 };
    let stages = model.build_stages(s);

    // Simulator: cost table probed from the very stages the runtime runs.
    let cost = micro_cost_table(&stages, ROWS, WIDTH, mode);
    let report = simulate(&schedule, &cost, &fc_full_nvlink(P as usize), SimOptions::default());
    let sim_stash: Vec<u64> =
        report.peak_mem.iter().zip(&report.weight_mem).map(|(p, w)| p - w).collect();

    // Static analysis: the same number, proved from the schedule alone.
    let static_stash = static_stash_peak(&schedule, &cost);

    // Runtime: train one iteration and read the live-bytes peaks.
    let runtime_stash = runnable.then(|| {
        let trainer = TrainerConfig {
            recompute: mode,
            ..TrainerConfig::new(schedule.clone(), stages.clone(), 0.05, LossKind::Mse)
        };
        let data = synthetic_data(13, 1, B as usize, ROWS, WIDTH);
        train(&trainer, &data).peak_stash_bytes
    });

    // Unit replay: one activation unit = the stash of one micro-batch
    // across model/P worth of layers. Stages are uniform here, so the
    // unit is `S/P` stage stashes.
    let full_cost = micro_cost_table(&stages, ROWS, WIDTH, Recompute::None);
    let unit_bytes = full_cost.stash_bytes.iter().sum::<u64>() as f64 / P as f64;
    let stash_units = match mode {
        Recompute::None => P as f64 / s as f64,
        Recompute::Full => (ROWS * WIDTH * 4) as f64 / unit_bytes,
    };
    let prof = unit_profile_with(&cs, stash_units);
    let replay_stash: Vec<f64> = prof.ma_peak_units.iter().map(|u| u * unit_bytes).collect();

    Truth { sim_stash, static_stash, runtime_stash, replay_stash }
}

#[test]
fn runtime_simulator_and_unit_replay_agree_on_every_golden_scheme() {
    for (name, scheme, runnable) in golden_schemes() {
        for mode in Recompute::ALL {
            let t = measure(scheme, runnable, mode);
            // Proved == modelled, exactly, device by device: the static
            // replay is the simulator's accounting, not an upper bound.
            assert_eq!(
                t.static_stash, t.sim_stash,
                "{name}/{mode}: static analyzer diverges from the simulator"
            );
            if let Some(measured) = &t.runtime_stash {
                // Measured == modelled, exactly, device by device.
                for (d, (&m, &s)) in measured.iter().zip(&t.sim_stash).enumerate() {
                    assert_eq!(
                        m as u64, s,
                        "{name}/{mode} device {d}: runtime measured {m} B, sim modelled {s} B"
                    );
                }
            }
            // Modelled == abstract replay, within float rounding of the
            // unit conversion.
            for (d, (&s, &r)) in t.sim_stash.iter().zip(&t.replay_stash).enumerate() {
                let err = (s as f64 - r).abs();
                assert!(
                    err < 1e-6 * (1.0 + r.abs()),
                    "{name}/{mode} device {d}: sim {s} B vs unit replay {r} B"
                );
            }
        }
    }
}

#[test]
fn full_recompute_strictly_shrinks_every_device_peak() {
    for (name, scheme, runnable) in golden_schemes() {
        let plain = measure(scheme, runnable, Recompute::None);
        let ckpt = measure(scheme, runnable, Recompute::Full);
        for (d, (&c, &p)) in ckpt.sim_stash.iter().zip(&plain.sim_stash).enumerate() {
            assert!(c < p, "{name} device {d}: checkpointed {c} !< plain {p}");
        }
        if let (Some(c), Some(p)) = (&ckpt.runtime_stash, &plain.runtime_stash) {
            for d in 0..c.len() {
                assert!(c[d] < p[d], "{name} device {d}: measured {} !< {}", c[d], p[d]);
            }
        }
    }
}

#[test]
fn training_bits_are_mode_independent_on_every_runnable_golden_scheme() {
    // The acceptance bar: Recompute::Full is bit-identical in losses and
    // weights to Recompute::None on all runnable golden schemes.
    for (name, scheme, runnable) in golden_schemes() {
        if !runnable {
            continue;
        }
        let cfg = PipelineConfig::new(P, B, scheme).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let s = cfg.stages();
        let model =
            MicroModel { width: WIDTH, total_blocks: s as usize * BLOCKS_PER_STAGE, seed: 41 };
        let data = synthetic_data(29, 2, B as usize, ROWS, WIDTH);
        let run = |mode| {
            train(
                &TrainerConfig {
                    recompute: mode,
                    ..TrainerConfig::new(
                        schedule.clone(),
                        model.build_stages(s),
                        0.05,
                        LossKind::Mse,
                    )
                },
                &data,
            )
        };
        let plain = run(Recompute::None);
        let ckpt = run(Recompute::Full);
        assert_eq!(plain.losses, ckpt.losses, "{name}: losses diverged");
        assert_eq!(plain.stages, ckpt.stages, "{name}: weights diverged");
    }
}
