//! Golden memory-profile snapshots: the per-device memory accounting of
//! every scheduler at `(P=8, M=8)` — Fig. 3 units from the abstract
//! replay plus BERT-64L bytes from the simulator — is frozen under
//! `tests/golden/` for both recompute modes, so memory-model drift fails
//! loudly instead of silently re-ranking plans.
//!
//! To regenerate after an intentional memory-model change:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test --test golden_memory
//! ```

use hanayo::cluster::topology::fc_full_nvlink;
use hanayo::core::config::{PipelineConfig, Scheme};
use hanayo::core::memory::unit_profile_with;
use hanayo::core::schedule::{build_compute_schedule, build_schedule};
use hanayo::model::{CostTable, ModelConfig, Recompute};
use hanayo::repro::memfig::stash_units;
use hanayo::sim::{simulate, SimOptions};
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn render(name: &str, scheme: Scheme, mode: Recompute) -> String {
    let model = ModelConfig::bert64();
    let cfg = PipelineConfig::new(8, 8, scheme).unwrap();
    let cs = build_compute_schedule(&cfg).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    let prof = unit_profile_with(&cs, stash_units(&model, 8, cfg.stages(), mode));
    let cost = CostTable::build_with(&model, cfg.stages(), 1, mode);
    let report = simulate(&schedule, &cost, &fc_full_nvlink(8), SimOptions::default());

    let fmt_units = |v: &[f64]| v.iter().map(|x| format!("{x:.4}")).collect::<Vec<_>>().join(", ");
    let gb: Vec<String> =
        report.peak_mem.iter().map(|&b| format!("{:.4}", b as f64 / 1e9)).collect();
    let wgb: Vec<String> =
        report.weight_mem.iter().map(|&b| format!("{:.4}", b as f64 / 1e9)).collect();

    let mut out = String::new();
    writeln!(out, "memory profile: {name} (P=8, B=8, recompute={mode})").unwrap();
    writeln!(out, "Mw units/device:      [{}]", fmt_units(&prof.mw_units)).unwrap();
    writeln!(out, "Ma peak units/device: [{}]", fmt_units(&prof.ma_peak_units)).unwrap();
    writeln!(out, "highest peak units:   {:.4}", prof.highest_peak().unwrap()).unwrap();
    writeln!(out, "variance units^2:     {:.4}", prof.variance_total).unwrap();
    writeln!(out, "sim peak GB/device (Bert-64L): [{}]", gb.join(", ")).unwrap();
    writeln!(out, "sim weight GB/device:          [{}]", wgb.join(", ")).unwrap();
    writeln!(out, "highest peak GB:      {:.4}", report.highest_peak() as f64 / 1e9).unwrap();
    writeln!(out, "variance GB^2:        {:.4}", report.peak_variance_gb2()).unwrap();
    out
}

fn check_snapshot(name: &str, scheme: Scheme) {
    for mode in Recompute::ALL {
        let rendered = render(name, scheme, mode);
        let path = golden_dir().join(format!("mem_{name}_{}.txt", mode.label()));

        if std::env::var_os("GOLDEN_UPDATE").is_some() {
            fs::create_dir_all(golden_dir()).unwrap();
            fs::write(&path, &rendered).unwrap();
            continue;
        }

        let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden memory snapshot {path:?} ({e}); \
                 regenerate with GOLDEN_UPDATE=1 cargo test --test golden_memory"
            )
        });
        assert_eq!(
            rendered, golden,
            "{name}/{mode}: memory profile drifted from {path:?}; if the change is \
             intentional, regenerate with GOLDEN_UPDATE=1 cargo test --test golden_memory"
        );
    }
}

#[test]
fn golden_memory_gpipe() {
    check_snapshot("gpipe_p8_m8", Scheme::GPipe);
}

#[test]
fn golden_memory_dapple() {
    check_snapshot("dapple_p8_m8", Scheme::Dapple);
}

#[test]
fn golden_memory_interleaved() {
    check_snapshot("interleaved2_p8_m8", Scheme::Interleaved { chunks: 2 });
}

#[test]
fn golden_memory_chimera() {
    check_snapshot("chimera_p8_m8", Scheme::Chimera);
}

#[test]
fn golden_memory_hanayo_w1() {
    check_snapshot("hanayo_w1_p8_m8", Scheme::Hanayo { waves: 1 });
}

#[test]
fn golden_memory_hanayo_w2() {
    check_snapshot("hanayo_w2_p8_m8", Scheme::Hanayo { waves: 2 });
}

#[test]
fn golden_memory_hanayo_w4() {
    check_snapshot("hanayo_w4_p8_m8", Scheme::Hanayo { waves: 4 });
}
