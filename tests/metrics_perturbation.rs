//! The zero-perturbation contract, held end to end: turning on the
//! metrics registry *and* the structured-logging facade (at its most
//! verbose, `trace`) must not change a single bit of any result — the
//! per-iteration losses, the measured stash peaks, the checkpoint
//! byte-stream, or the tuner's full ranked/rejected tables. The
//! instrumented paths only ever *read* the values the computation
//! already produced; this test is the proof the claim rests on.

use hanayo::cluster::topology::fc_full_nvlink;
use hanayo::core::config::{PipelineConfig, Scheme};
use hanayo::core::schedule::build_schedule;
use hanayo::metrics;
use hanayo::model::builders::MicroModel;
use hanayo::model::ModelConfig;
use hanayo::runtime::trainer::{synthetic_data, train, TrainerConfig};
use hanayo::runtime::{checkpoint_of, LossKind};
use hanayo::sim::{tune, tune_serial, TuneOptions};

/// Everything a training run decides, flattened to comparable bytes:
/// bit-patterns of the losses, both per-device peak vectors, and the
/// checkpoint JSON (which hashes every weight into its CRC).
fn train_fingerprint() -> (Vec<u32>, Vec<usize>, Vec<usize>, String) {
    let cfg = PipelineConfig::new(8, 8, Scheme::Hanayo { waves: 2 }).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    let stages_n = schedule.stage_map.stages;
    let stages =
        MicroModel { width: 8, total_blocks: stages_n as usize, seed: 11 }.build_stages(stages_n);
    let data = synthetic_data(5, 2, 8, 2, 8);
    let trainer = TrainerConfig::new(schedule, stages, 0.05, LossKind::Mse);
    let out = train(&trainer, &data);
    let ckpt = checkpoint_of(&trainer, &out, data.len() as u32, 1);
    (
        out.losses.iter().map(|l| l.to_bits()).collect(),
        out.peak_stash_bytes.clone(),
        out.peak_mailbox_parked.clone(),
        ckpt.to_json().unwrap(),
    )
}

/// One test function on purpose: the registry and the log facade are
/// process-global, so a concurrently running test would race the
/// enable/disable toggles below.
#[test]
fn metrics_and_logging_do_not_perturb_results() {
    metrics::reset();
    metrics::set_enabled(false);

    let model = ModelConfig::bert64();
    let cluster = fc_full_nvlink(8);
    let opts = TuneOptions { waves: vec![1, 2], min_pp: 4, ..Default::default() };

    // Baseline: everything off.
    let quiet = train_fingerprint();
    let quiet_tuning = serde_json::to_string(&tune_serial(&model, &cluster, 8, 1, &opts)).unwrap();

    // Everything on: the registry plus the log facade at trace level
    // (capture sink, so the test output stays clean).
    metrics::log::set_config("trace", metrics::log::Format::Json, metrics::log::Sink::Capture);
    metrics::set_enabled(true);
    let loud = train_fingerprint();
    let loud_serial = serde_json::to_string(&tune_serial(&model, &cluster, 8, 1, &opts)).unwrap();
    let loud_parallel = serde_json::to_string(&tune(&model, &cluster, 8, 1, &opts)).unwrap();
    metrics::set_enabled(false);
    metrics::log::set_config("", metrics::log::Format::Logfmt, metrics::log::Sink::Stderr);
    let _ = metrics::log::take_capture();
    metrics::reset();

    assert_eq!(quiet.0, loud.0, "losses diverged with metrics+logging enabled");
    assert_eq!(quiet.1, loud.1, "stash peaks diverged with metrics+logging enabled");
    // Parked peaks are scheduling-dependent in *value* but must agree in
    // shape — instrumentation can never change how many devices report.
    assert_eq!(quiet.2.len(), loud.2.len(), "parked-peak vector changed shape");
    assert_eq!(quiet.3, loud.3, "checkpoint bytes diverged with metrics+logging enabled");
    assert_eq!(quiet_tuning, loud_serial, "serial sweep diverged with metrics+logging enabled");
    assert_eq!(loud_serial, loud_parallel, "tune != tune_serial with metrics enabled");
}
