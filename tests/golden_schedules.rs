//! Golden-schedule snapshots: the paper-style Gantt rendering of every
//! scheduler at `(P=8, M=8)` is frozen under `tests/golden/`. Scheduler
//! refactors must either leave these byte-identical or consciously update
//! the snapshots.
//!
//! To regenerate after an intentional scheduler change:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test --test golden_schedules
//! ```

use hanayo::core::config::{PipelineConfig, Scheme};
use hanayo::core::gantt::render_paper_style;
use hanayo::core::schedule::build_compute_schedule;
use std::fs;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn check_snapshot(name: &str, scheme: Scheme) {
    let cfg = PipelineConfig::new(8, 8, scheme).unwrap();
    let cs = build_compute_schedule(&cfg).unwrap();
    let rendered = render_paper_style(&cs);
    let path = golden_dir().join(format!("{name}.txt"));

    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        fs::create_dir_all(golden_dir()).unwrap();
        fs::write(&path, &rendered).unwrap();
        return;
    }

    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {path:?} ({e}); \
             regenerate with GOLDEN_UPDATE=1 cargo test --test golden_schedules"
        )
    });
    assert_eq!(
        rendered, golden,
        "{name}: schedule rendering drifted from {path:?}; if the change is \
         intentional, regenerate with GOLDEN_UPDATE=1 cargo test --test golden_schedules"
    );
}

#[test]
fn golden_gpipe() {
    check_snapshot("gpipe_p8_m8", Scheme::GPipe);
}

#[test]
fn golden_dapple() {
    check_snapshot("dapple_p8_m8", Scheme::Dapple);
}

#[test]
fn golden_interleaved() {
    check_snapshot("interleaved2_p8_m8", Scheme::Interleaved { chunks: 2 });
}

#[test]
fn golden_chimera() {
    check_snapshot("chimera_p8_m8", Scheme::Chimera);
}

#[test]
fn golden_hanayo_w1() {
    check_snapshot("hanayo_w1_p8_m8", Scheme::Hanayo { waves: 1 });
}

#[test]
fn golden_hanayo_w2() {
    check_snapshot("hanayo_w2_p8_m8", Scheme::Hanayo { waves: 2 });
}

#[test]
fn golden_hanayo_w4() {
    check_snapshot("hanayo_w4_p8_m8", Scheme::Hanayo { waves: 4 });
}
