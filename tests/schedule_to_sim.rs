//! Cross-crate integration: every generated schedule must validate and
//! execute on every cluster model with sane invariants.

use hanayo::cluster::topology::paper_clusters;
use hanayo::core::config::{PipelineConfig, Scheme};
use hanayo::core::schedule::build_schedule;
use hanayo::core::validate::validate;
use hanayo::model::{CostTable, ModelConfig};
use hanayo::sim::{simulate, SimOptions};

fn schemes() -> Vec<Scheme> {
    vec![
        Scheme::GPipe,
        Scheme::Dapple,
        Scheme::Interleaved { chunks: 2 },
        Scheme::Chimera,
        Scheme::Hanayo { waves: 1 },
        Scheme::Hanayo { waves: 2 },
        Scheme::Hanayo { waves: 4 },
    ]
}

#[test]
fn every_scheme_runs_on_every_cluster() {
    let model = ModelConfig::bert64();
    for cluster in paper_clusters(8) {
        for scheme in schemes() {
            let cfg = PipelineConfig::new(8, 8, scheme).unwrap();
            let schedule = build_schedule(&cfg).unwrap();
            validate(&schedule).unwrap_or_else(|e| panic!("{scheme}: {e}"));
            let cost = CostTable::build(&model, cfg.stages(), 1);
            let r = simulate(&schedule, &cost, &cluster, SimOptions::default());
            assert!(r.iteration_time > 0.0, "{} {scheme}", cluster.name);
            assert!(
                (0.0..1.0).contains(&r.bubble_ratio),
                "{} {scheme}: bubble {}",
                cluster.name,
                r.bubble_ratio
            );
            // Compute is conserved: total busy equals total FLOPs / speed.
            let expect: f64 = 8.0 * cost.total_fwd_flops() * 3.0 / cluster.effective_flops(0);
            let busy: f64 = r.device_busy.iter().sum();
            assert!(
                (busy - expect).abs() / expect < 1e-6,
                "{} {scheme}: busy {busy} vs {expect}",
                cluster.name
            );
        }
    }
}

#[test]
fn sim_and_abstract_replay_agree_on_bubble_ordering() {
    // The simulator (with real costs and comm) and the abstract replay
    // (unit costs, no comm) must rank the schemes identically on a
    // fast-interconnect cluster.
    use hanayo::core::gantt::replay_timeline;
    use hanayo::core::schedule::build_compute_schedule;
    let cluster = &paper_clusters(8)[1]; // FC
    let model = ModelConfig::bert64();
    let mut sim_order = Vec::new();
    let mut replay_order = Vec::new();
    for scheme in [Scheme::Dapple, Scheme::Hanayo { waves: 2 }, Scheme::Hanayo { waves: 4 }] {
        let cfg = PipelineConfig::new(8, 8, scheme).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let cost = CostTable::build(&model, cfg.stages(), 1);
        let r = simulate(&schedule, &cost, cluster, SimOptions::default());
        sim_order.push(r.bubble_ratio);
        let cs = build_compute_schedule(&cfg).unwrap();
        replay_order.push(replay_timeline(&cs, 1, 2, 0).bubble_ratio());
    }
    for i in 1..sim_order.len() {
        assert_eq!(
            sim_order[i] < sim_order[i - 1],
            replay_order[i] < replay_order[i - 1],
            "ordering disagreement at {i}: sim {sim_order:?} replay {replay_order:?}"
        );
    }
}

#[test]
fn simulated_bubble_close_to_eq1_on_ideal_fabric() {
    // With communication nearly free (NVSwitch), the simulated Hanayo
    // bubble should track Eq. 1 within a modest tolerance.
    use hanayo::core::analysis::bubble::hanayo_eq1;
    use hanayo::core::analysis::CostTerms;
    let cluster = &paper_clusters(8)[1]; // FC
    let model = ModelConfig::bert64();
    for w in [2u32, 4] {
        let cfg = PipelineConfig::new(8, 8, Scheme::Hanayo { waves: w }).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let cost = CostTable::build(&model, cfg.stages(), 1);
        let r = simulate(&schedule, &cost, cluster, SimOptions::default());
        let theory = hanayo_eq1(8, w, &CostTerms::paper_default());
        assert!(
            (r.bubble_ratio - theory).abs() < 0.06,
            "W={w}: sim {} vs Eq.1 {theory}",
            r.bubble_ratio
        );
    }
}

#[test]
fn deeper_models_take_proportionally_longer() {
    let cluster = &paper_clusters(8)[1];
    let cfg = PipelineConfig::new(8, 8, Scheme::Hanayo { waves: 2 }).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    let bert = CostTable::build(&ModelConfig::bert64(), cfg.stages(), 1);
    let gpt = CostTable::build(&ModelConfig::gpt128(), cfg.stages(), 1);
    let rb = simulate(&schedule, &bert, cluster, SimOptions::default());
    let rg = simulate(&schedule, &gpt, cluster, SimOptions::default());
    // BERT-64L has ~3.1x the total FLOPs of GPT-128L at equal seq length.
    let flop_ratio = bert.total_fwd_flops() / gpt.total_fwd_flops();
    let time_ratio = rb.iteration_time / rg.iteration_time;
    assert!(
        (time_ratio / flop_ratio - 1.0).abs() < 0.25,
        "time ratio {time_ratio} vs flop ratio {flop_ratio}"
    );
}

#[test]
fn per_device_memory_is_weights_plus_stash() {
    let cluster = &paper_clusters(8)[2]; // TACC
    let model = ModelConfig::bert64();
    let cfg = PipelineConfig::new(8, 16, Scheme::Hanayo { waves: 2 }).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    let cost = CostTable::build(&model, cfg.stages(), 2);
    let r = simulate(&schedule, &cost, cluster, SimOptions::default());
    for d in 0..8 {
        assert!(r.peak_mem[d] >= r.weight_mem[d]);
        // Stash cannot exceed B micro-batches of this device's layers.
        let max_stash: u64 = 16
            * schedule
                .stage_map
                .modules_on(hanayo::core::ids::DeviceId(d as u32))
                .iter()
                .map(|&(_, s)| cost.stash_bytes[s.idx()])
                .sum::<u64>();
        assert!(r.peak_mem[d] - r.weight_mem[d] <= max_stash);
    }
}
