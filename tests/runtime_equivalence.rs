//! The correctness contract: every synchronous schedule, executed by the
//! threaded runtime, reproduces sequential training bit for bit — across
//! schemes, shapes, losses and data-parallel replication.

use hanayo::core::config::{PipelineConfig, Scheme};
use hanayo::core::schedule::build_schedule;
use hanayo::model::builders::MicroModel;
use hanayo::runtime::trainer::{
    sequential_reference, synthetic_data, train, train_data_parallel, TrainerConfig,
};
use hanayo::runtime::{LossKind, Recompute};
use hanayo::tensor::Tensor;

fn run_case(p: u32, b: u32, scheme: Scheme, iterations: usize) {
    let cfg = PipelineConfig::new(p, b, scheme).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    let s = schedule.stage_map.stages;
    let model = MicroModel { width: 10, total_blocks: s as usize, seed: 99 };
    let data = synthetic_data(5, iterations, b as usize, 3, 10);
    // Both stash policies must reproduce the same sequential bits: full
    // recomputation replays each stage forward inside the backward.
    for recompute in Recompute::ALL {
        let trainer = TrainerConfig {
            recompute,
            ..TrainerConfig::new(schedule.clone(), model.build_stages(s), 0.03, LossKind::Mse)
        };
        let out = train(&trainer, &data);
        let seq = sequential_reference(&trainer.stages, &data, trainer.lr, &trainer.loss);
        assert_eq!(out.stages, seq.stages, "{scheme} P={p} B={b} {recompute}: weights diverged");
        assert_eq!(out.losses, seq.losses, "{scheme} P={p} B={b} {recompute}: losses diverged");
    }
}

#[test]
fn gpipe_matches_sequential() {
    run_case(3, 5, Scheme::GPipe, 2);
}

#[test]
fn dapple_matches_sequential() {
    run_case(4, 6, Scheme::Dapple, 2);
}

#[test]
fn interleaved_matches_sequential() {
    run_case(2, 4, Scheme::Interleaved { chunks: 2 }, 2);
}

#[test]
fn hanayo_one_wave_matches_sequential() {
    run_case(3, 3, Scheme::Hanayo { waves: 1 }, 2);
}

#[test]
fn hanayo_two_waves_matches_sequential() {
    run_case(2, 6, Scheme::Hanayo { waves: 2 }, 2);
}

#[test]
fn hanayo_b_less_than_p() {
    run_case(4, 2, Scheme::Hanayo { waves: 1 }, 1);
}

#[test]
fn cross_entropy_loss_matches_sequential() {
    let cfg = PipelineConfig::new(2, 3, Scheme::Hanayo { waves: 1 }).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    let s = schedule.stage_map.stages;
    let model = MicroModel { width: 6, total_blocks: s as usize, seed: 3 };
    let labels = vec![vec![0usize, 2, 4], vec![1, 1, 3], vec![5, 0, 2]];
    let trainer = TrainerConfig {
        recompute: Recompute::Full,
        ..TrainerConfig::new(
            schedule,
            model.build_stages(s),
            0.05,
            LossKind::CrossEntropy { labels },
        )
    };
    let mut data = synthetic_data(8, 1, 3, 3, 6);
    // Targets are unused by cross-entropy but must exist shape-wise.
    for d in &mut data {
        d.targets = vec![Tensor::zeros(3, 6); 3];
    }
    let out = train(&trainer, &data);
    let seq = sequential_reference(&trainer.stages, &data, trainer.lr, &trainer.loss);
    assert_eq!(out.stages, seq.stages);
}

#[test]
fn all_schemes_agree_with_each_other_on_one_model() {
    // One 12-block model partitioned per scheme: the trained weights must
    // be identical across every synchronous schedule.
    let b = 4;
    let data = synthetic_data(17, 2, b as usize, 2, 8);
    let mut reference: Option<Vec<f32>> = None;
    for scheme in
        [Scheme::GPipe, Scheme::Dapple, Scheme::Hanayo { waves: 1 }, Scheme::Hanayo { waves: 3 }]
    {
        let cfg = PipelineConfig::new(2, b, scheme).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let s = schedule.stage_map.stages;
        let model = MicroModel { width: 8, total_blocks: 12, seed: 1 };
        let trainer = TrainerConfig::new(schedule, model.build_stages(s), 0.02, LossKind::Mse);
        let out = train(&trainer, &data);
        let params: Vec<f32> = out.stages.iter().flat_map(|st| st.flat_params()).collect();
        match &reference {
            None => reference = Some(params),
            Some(r) => assert_eq!(r, &params, "{scheme} disagrees"),
        }
    }
}

#[test]
fn data_parallel_hanayo_trains_and_replicates() {
    let cfg = PipelineConfig::new(2, 2, Scheme::Hanayo { waves: 2 }).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    let s = schedule.stage_map.stages;
    let model = MicroModel { width: 8, total_blocks: s as usize, seed: 21 };
    let trainer = TrainerConfig::new(schedule, model.build_stages(s), 0.05, LossKind::Mse);
    let shards = vec![synthetic_data(31, 2, 2, 2, 8), synthetic_data(32, 2, 2, 2, 8)];
    let a = train_data_parallel(&trainer, &shards);
    let b2 = train_data_parallel(&trainer, &shards);
    assert_eq!(a.stages, b2.stages, "DP training must be deterministic");
}

#[test]
fn pipeline_stash_respects_schedule_shape() {
    // GPipe stashes more than DAPPLE on the head device for B > P.
    let b = 6;
    let make = |scheme, recompute| {
        let cfg = PipelineConfig::new(2, b, scheme).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let s = schedule.stage_map.stages;
        let model = MicroModel { width: 8, total_blocks: 8, seed: 9 };
        let trainer = TrainerConfig {
            recompute,
            ..TrainerConfig::new(schedule, model.build_stages(s), 0.05, LossKind::Mse)
        };
        let data = synthetic_data(4, 1, b as usize, 2, 8);
        train(&trainer, &data)
    };
    let g = make(Scheme::GPipe, Recompute::None);
    let d = make(Scheme::Dapple, Recompute::None);
    assert!(
        g.peak_stash_bytes[0] > d.peak_stash_bytes[0],
        "GPipe head stash {} vs DAPPLE {}",
        g.peak_stash_bytes[0],
        d.peak_stash_bytes[0]
    );
    // Checkpointing shrinks even GPipe's stash-everything peak below the
    // plain DAPPLE budget: only boundary tensors stay resident.
    let g_ckpt = make(Scheme::GPipe, Recompute::Full);
    assert!(
        g_ckpt.peak_stash_bytes[0] < d.peak_stash_bytes[0],
        "checkpointed GPipe head stash {} vs plain DAPPLE {}",
        g_ckpt.peak_stash_bytes[0],
        d.peak_stash_bytes[0]
    );
}
