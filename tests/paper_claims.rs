//! The paper's headline quantitative claims, asserted end-to-end against
//! the reproduction (the per-figure details live in `hanayo-repro`'s unit
//! tests; these are the top-line numbers a reader would quote).

use hanayo::core::analysis::bubble;
use hanayo::core::analysis::CostTerms;
use hanayo::repro::{fig11, fig12, fig9};

#[test]
fn abstract_bubble_ratio_drops_sharply_with_waves() {
    // §3.4: "(2P-2)/(3PW+P-1) decreases with an increasing number of waves".
    let c = CostTerms::paper_default();
    let h2 = bubble::hanayo_eq1(32, 2, &c);
    let h8 = bubble::hanayo_eq1(32, 8, &c);
    assert!(h8 < h2 / 2.0, "H-8 {h8} vs H-2 {h2}");
}

#[test]
fn headline_up_to_30_percent_over_chimera() {
    // Abstract: "up to a 30.4% increase in throughput compared to the
    // state-of-the-art approach". Require the best observed improvement
    // across the eight Fig. 9 settings to reach at least 20%.
    let best = fig9::hanayo_over_chimera().into_iter().map(|(_, pct)| pct).fold(f64::MIN, f64::max);
    assert!(best >= 20.0, "best improvement over Chimera only {best:.1}%");
}

#[test]
fn weak_scaling_efficiency_near_perfect() {
    // §5.4: parallel efficiency "100.1% and 99.8%".
    let bars = fig11::data();
    for (p, eff) in fig11::hanayo_efficiency(&bars) {
        assert!(eff > 0.90, "P={p}: efficiency {:.1}%", 100.0 * eff);
    }
}

#[test]
fn strong_scaling_monotone_and_oom_pattern() {
    // §5.5: Hanayo handles the fixed batch at every scale; GPipe cannot at
    // 8 GPUs; speedups grow with devices.
    let bars = fig12::data();
    let gpipe8 = bars.iter().find(|b| b.devices == 8 && b.method.starts_with("GPipe")).unwrap();
    assert!(gpipe8.throughput.is_none());
    let speedups = fig12::hanayo_speedups(&bars);
    assert!(speedups[0].1 > 100.0 && speedups[1].1 > speedups[0].1);
}
