//! The paper's headline quantitative claims, asserted end-to-end against
//! the reproduction (the per-figure details live in `hanayo-repro`'s unit
//! tests; these are the top-line numbers a reader would quote).

use hanayo::cluster::{ClusterSpec, GpuModel, Link, LinkClass};
use hanayo::core::analysis::bubble;
use hanayo::core::analysis::CostTerms;
use hanayo::core::config::{PipelineConfig, Scheme};
use hanayo::core::schedule::build_schedule;
use hanayo::model::CostTable;
use hanayo::repro::{fig11, fig12, fig9};
use hanayo::sim::{simulate_traced, SimOptions};
use hanayo::trace::Trace;

#[test]
fn abstract_bubble_ratio_drops_sharply_with_waves() {
    // §3.4: "(2P-2)/(3PW+P-1) decreases with an increasing number of waves".
    let c = CostTerms::paper_default();
    let h2 = bubble::hanayo_eq1(32, 2, &c);
    let h8 = bubble::hanayo_eq1(32, 8, &c);
    assert!(h8 < h2 / 2.0, "H-8 {h8} vs H-2 {h2}");
}

/// An idealised cluster for closed-form cross-checks: every link is
/// loopback-class (infinite bandwidth, zero latency), so `T_C = 0` exactly
/// as the formulas assume.
fn ideal_cluster(p: usize) -> ClusterSpec {
    ClusterSpec {
        name: "ideal".into(),
        gpus: vec![GpuModel::A100_80G; p],
        node: vec![0; p],
        links: (0..p).map(|_| (0..p).map(|_| Link::of(LinkClass::Local)).collect()).collect(),
        mfu: 0.5,
        device_mtbf_s: f64::INFINITY,
    }
}

/// A uniform cost table with per-stage forward time exactly 1 simulated
/// second and `T_B = 2 T_F` (the paper's drawing convention).
fn uniform_cost(s: u32, eff: f64) -> CostTable {
    let s = s as usize;
    CostTable {
        layers_per_stage: vec![1.0; s],
        fwd_flops: vec![eff; s],
        bwd_flops: vec![2.0 * eff; s],
        stash_bytes: vec![1; s],
        weight_bytes: vec![1; s],
        grad_bytes: vec![1; s],
        msg_bytes: 1,
    }
}

fn traced_bubble(p: u32, b: u32, scheme: Scheme) -> f64 {
    let cfg = PipelineConfig::new(p, b, scheme).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    let cluster = ideal_cluster(p as usize);
    let cost = uniform_cost(cfg.stages(), cluster.effective_flops(0));
    let (report, trace) = simulate_traced(
        &schedule,
        &cost,
        &cluster,
        SimOptions { trace: true, ..Default::default() },
    );
    let trace: Trace = trace.expect("trace requested");
    // The trace and the report measure the same run.
    assert_eq!(trace.makespan(), report.iteration_time);
    trace.bubble_ratio()
}

#[test]
fn trace_measured_bubble_equals_closed_forms_for_gpipe_and_1f1b() {
    // Under uniform costs and free links the *measured* bubble ratio of
    // the executed schedule is the textbook (P-1)/(B+P-1) — for GPipe and
    // DAPPLE the formula is exact, and the trace reproduces it to float
    // rounding.
    let c = CostTerms::paper_default();
    for (p, b) in [(4u32, 4u32), (8, 8), (8, 16), (4, 8)] {
        for scheme in [Scheme::GPipe, Scheme::Dapple] {
            let measured = traced_bubble(p, b, scheme);
            let closed = bubble::gpipe(p, b, &c);
            assert!(
                (measured - closed).abs() < 1e-12,
                "{scheme} P={p} B={b}: measured {measured} vs closed form {closed}"
            );
        }
    }
}

#[test]
fn trace_measured_hanayo_bubble_converges_to_eq1_from_below() {
    // Eq. 1 (§3.4) is the paper's closed-form estimate at B = P. The
    // executed wave schedule is never *worse* than the estimate, and the
    // gap closes as waves grow (the regime the derivation assumes):
    // measured ≤ Eq. 1, within 2% absolute by W = 2 and 0.1% by W = 4.
    let c = CostTerms::paper_default();
    let gap = |w: u32| {
        let measured = traced_bubble(8, 8, Scheme::Hanayo { waves: w });
        let eq1 = bubble::hanayo_eq1(8, w, &c);
        assert!(measured <= eq1 + 1e-9, "W={w}: measured {measured} beats Eq.1 {eq1}");
        eq1 - measured
    };
    let (g1, g2, g4) = (gap(1), gap(2), gap(4));
    assert!(g2 < g1 && g4 < g2, "gaps must shrink with waves: {g1} {g2} {g4}");
    assert!(g2 < 0.02, "W=2 gap {g2}");
    assert!(g4 < 0.001, "W=4 gap {g4}");
}

#[test]
fn headline_up_to_30_percent_over_chimera() {
    // Abstract: "up to a 30.4% increase in throughput compared to the
    // state-of-the-art approach". Require the best observed improvement
    // across the eight Fig. 9 settings to reach at least 20%.
    let best = fig9::hanayo_over_chimera().into_iter().map(|(_, pct)| pct).fold(f64::MIN, f64::max);
    assert!(best >= 20.0, "best improvement over Chimera only {best:.1}%");
}

#[test]
fn weak_scaling_efficiency_near_perfect() {
    // §5.4: parallel efficiency "100.1% and 99.8%".
    let bars = fig11::data();
    for (p, eff) in fig11::hanayo_efficiency(&bars) {
        assert!(eff > 0.90, "P={p}: efficiency {:.1}%", 100.0 * eff);
    }
}

#[test]
fn strong_scaling_monotone_and_oom_pattern() {
    // §5.5: Hanayo handles the fixed batch at every scale; GPipe cannot at
    // 8 GPUs; speedups grow with devices.
    let bars = fig12::data();
    let gpipe8 = bars.iter().find(|b| b.devices == 8 && b.method.starts_with("GPipe")).unwrap();
    assert!(gpipe8.throughput.is_none());
    let speedups = fig12::hanayo_speedups(&bars);
    assert!(speedups[0].1 > 100.0 && speedups[1].1 > speedups[0].1);
}
