//! Golden static-analysis snapshots: the analyzer's verdicts, DAG shape,
//! exact memory bound and critical-path lower bound for every golden
//! scheme at `(P=8, M=8)` are frozen under `tests/golden/`, so a change
//! to the happens-before construction, the liveness replay or the edge
//! weights fails loudly instead of silently re-deciding feasibility.
//!
//! Every snapshot is additionally cross-checked against a live simulation
//! before it is compared or written: the static peak must equal the
//! simulated peak exactly and the critical path must lower-bound the
//! simulated iteration time — a golden file can never freeze a claim the
//! simulator refutes.
//!
//! To regenerate after an intentional analyzer change:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test --test golden_analyze
//! ```

use hanayo::analyze::analyze;
use hanayo::cluster::topology::fc_full_nvlink;
use hanayo::core::config::{PipelineConfig, Scheme};
use hanayo::core::schedule::build_schedule;
use hanayo::model::{CostTable, ModelConfig};
use hanayo::sim::{simulate, SimOptions};
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn golden_schemes() -> Vec<(&'static str, Scheme)> {
    vec![
        ("gpipe", Scheme::GPipe),
        ("dapple", Scheme::Dapple),
        ("interleaved2", Scheme::Interleaved { chunks: 2 }),
        ("chimera", Scheme::Chimera),
        ("hanayo_w1", Scheme::Hanayo { waves: 1 }),
        ("hanayo_w2", Scheme::Hanayo { waves: 2 }),
        ("hanayo_w4", Scheme::Hanayo { waves: 4 }),
    ]
}

fn render(name: &str, scheme: Scheme) -> String {
    let cfg = PipelineConfig::new(8, 8, scheme).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    let cost = CostTable::build(&ModelConfig::bert64(), cfg.stages(), 1);
    let cluster = fc_full_nvlink(8);
    let report = analyze(&schedule, &cost, &cluster)
        .unwrap_or_else(|e| panic!("{name}: analyzer rejected a golden scheme: {e}"));

    // Never freeze a claim the simulator refutes: the cross-checks run on
    // both the update and the verify path.
    let sim = simulate(&schedule, &cost, &cluster, SimOptions::default());
    assert_eq!(report.peak_mem, sim.peak_mem, "{name}: static peak != simulated peak");
    assert!(
        report.critical_path_s <= sim.iteration_time * (1.0 + 1e-9),
        "{name}: critical path {} above simulated {}",
        report.critical_path_s,
        sim.iteration_time
    );

    let gb = |v: &[u64]| {
        v.iter().map(|&b| format!("{:.4}", b as f64 / 1e9)).collect::<Vec<_>>().join(", ")
    };
    let mut out = String::new();
    writeln!(out, "static analysis: {name} (P=8, B=8, Bert-64L, fc)").unwrap();
    writeln!(
        out,
        "verdicts: deadlock_free={} comm_well_formed={} fifo_consistent={}",
        report.deadlock_free, report.comm_well_formed, report.fifo_consistent
    )
    .unwrap();
    writeln!(
        out,
        "dag: nodes={} edges={} messages={} batched_comms={}",
        report.dag.nodes, report.dag.edges, report.dag.messages, report.dag.batched_comms
    )
    .unwrap();
    writeln!(out, "static peak GB/device:  [{}]", gb(&report.peak_mem)).unwrap();
    writeln!(out, "static stash GB/device: [{}]", gb(&report.stash_peak)).unwrap();
    writeln!(out, "critical path bound: {:.6} ms", report.critical_path_s * 1e3).unwrap();
    writeln!(out, "simulated makespan:  {:.6} ms", sim.iteration_time * 1e3).unwrap();
    writeln!(
        out,
        "bound tightness:     {:.2}%",
        100.0 * report.critical_path_s / sim.iteration_time
    )
    .unwrap();
    out
}

#[test]
fn golden_static_analysis_snapshots() {
    for (name, scheme) in golden_schemes() {
        let rendered = render(name, scheme);
        let path = golden_dir().join(format!("analyze_{name}_p8_m8.txt"));

        if std::env::var_os("GOLDEN_UPDATE").is_some() {
            fs::create_dir_all(golden_dir()).unwrap();
            fs::write(&path, &rendered).unwrap();
            continue;
        }

        let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden analysis snapshot {path:?} ({e}); \
                 regenerate with GOLDEN_UPDATE=1 cargo test --test golden_analyze"
            )
        });
        assert_eq!(
            rendered, golden,
            "{name}: static analysis drifted from {path:?}; if the change is \
             intentional, regenerate with GOLDEN_UPDATE=1 cargo test --test golden_analyze"
        );
    }
}
