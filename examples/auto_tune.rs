//! The unified framework's auto-tuner: hand it a model, a cluster and a
//! batch, and it searches the whole strategy space (method × waves × P×D
//! factorisations), discards what doesn't fit memory, and ranks the rest —
//! the paper's "performance model with adaptability to choose from various
//! pipeline parallelism strategies" in action. Also shows the activation
//! recomputation extension.
//!
//! ```text
//! cargo run --release --example auto_tune
//! ```

use hanayo::cluster::topology::{lonestar6, tencent_v100};
use hanayo::core::config::{PipelineConfig, Scheme};
use hanayo::core::schedule::build_schedule;
use hanayo::model::{CostTable, ModelConfig, Recompute};
use hanayo::sim::tuner::{tune, TuneOptions};
use hanayo::sim::{simulate, SimOptions};

fn main() {
    let model = ModelConfig::bert64().with_train_bytes_per_param(8);

    for cluster in [lonestar6(8), tencent_v100(8)] {
        println!("=== Tuning BERT-64L on {} (8 GPUs, 16 micro-batches) ===\n", cluster.name);
        let tuning =
            tune(&model, &cluster, 16, 1, &TuneOptions { min_pp: 4, ..Default::default() });
        println!("{:<22} {:>10} {:>9} {:>10}", "plan", "seq/s", "bubble", "peak (GB)");
        for c in tuning.ranked.iter().take(6) {
            println!(
                "{:<22} {:>10.2} {:>8.1}% {:>10.1}",
                format!("{} (P={},D={})", c.plan.method, c.plan.pp, c.plan.dp),
                c.result.throughput,
                100.0 * c.result.bubble_ratio,
                c.result.peak_mem.iter().max().copied().unwrap_or(0) as f64 / 1e9,
            );
        }
        let oom = tuning.rejected.iter().filter(|r| r.is_oom()).count();
        println!(
            "  ... {} candidates rejected ({} OOM, {} invalid shape)\n",
            tuning.rejected.len(),
            oom,
            tuning.rejected.len() - oom
        );
        let best = tuning.best().expect("something fits");
        println!(
            "winner: {} at (P={}, D={}) -> {:.2} seq/s\n",
            best.plan.method, best.plan.pp, best.plan.dp, best.result.throughput
        );
    }
    println!("(For the full ranked table as JSON — including simulator-option");
    println!(" ablations per candidate — run the sweep binary:");
    println!("   cargo run --release -p hanayo-repro --bin sweep -- --cluster tacc)\n");

    println!("=== Activation recomputation ablation (Hanayo W=2, P=8, B=16, TACC) ===\n");
    let cfg = PipelineConfig::new(8, 16, Scheme::Hanayo { waves: 2 }).expect("valid");
    let schedule = build_schedule(&cfg).expect("schedulable");
    let cluster = lonestar6(8);
    for (name, mode) in
        [("stash everything", Recompute::None), ("full checkpointing", Recompute::Full)]
    {
        let cost = CostTable::build_with(&ModelConfig::bert64(), cfg.stages(), 2, mode);
        let r = simulate(&schedule, &cost, &cluster, SimOptions::default());
        println!(
            "  {name:<18}: iteration {:>6.1} ms, peak {:>5.1} GB",
            r.iteration_time * 1e3,
            r.highest_peak() as f64 / 1e9
        );
    }
    println!("\nCheckpointing cuts the activation peak at ~1/3 more backward time —");
    println!("orthogonal to the schedule, exactly as the paper's related-work section says.");
}
