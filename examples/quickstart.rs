//! Quickstart: generate a Hanayo schedule, draw it, measure its bubbles,
//! and compare it against the baselines on a simulated cluster.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hanayo::cluster::topology::fc_full_nvlink;
use hanayo::core::analysis::bubble;
use hanayo::core::analysis::CostTerms;
use hanayo::core::config::{PipelineConfig, Scheme};
use hanayo::core::gantt::render_paper_style;
use hanayo::core::schedule::{build_compute_schedule, build_schedule};
use hanayo::core::validate::validate;
use hanayo::model::{CostTable, ModelConfig};
use hanayo::sim::{simulate, SimOptions};

fn main() {
    let p = 4;
    let b = 4;

    println!("=== 1. The wave schedule itself ===\n");
    for (name, scheme) in [
        ("DAPPLE (1F1B)", Scheme::Dapple),
        ("Hanayo, 1 wave", Scheme::Hanayo { waves: 1 }),
        ("Hanayo, 2 waves", Scheme::Hanayo { waves: 2 }),
    ] {
        let cfg = PipelineConfig::new(p, b, scheme).expect("valid config");
        let cs = build_compute_schedule(&cfg).expect("schedulable");
        println!("{name} (P={p}, B={b}):\n{}", render_paper_style(&cs));
    }

    println!("=== 2. Theory: Eq. 1 bubble ratios at P=8 ===\n");
    let c = CostTerms::paper_default();
    println!("  DAPPLE      : {:.1}%", 100.0 * bubble::dapple(8, 8, &c));
    println!("  Chimera     : {:.1}%", 100.0 * bubble::chimera(8, 8, &c));
    for w in [1u32, 2, 4] {
        println!("  Hanayo W={w}  : {:.1}%", 100.0 * bubble::hanayo_eq1(8, w, &c));
    }

    println!("\n=== 3. Simulated execution on an NVSwitch A100 box ===\n");
    let cluster = fc_full_nvlink(8);
    let model = ModelConfig::bert64();
    for (name, scheme) in [
        ("GPipe", Scheme::GPipe),
        ("DAPPLE", Scheme::Dapple),
        ("Hanayo W=2", Scheme::Hanayo { waves: 2 }),
        ("Hanayo W=4", Scheme::Hanayo { waves: 4 }),
    ] {
        let cfg = PipelineConfig::new(8, 8, scheme).expect("valid config");
        let schedule = build_schedule(&cfg).expect("schedulable");
        validate(&schedule).expect("well-formed");
        let cost = CostTable::build(&model, cfg.stages(), 1);
        let report = simulate(&schedule, &cost, &cluster, SimOptions::default());
        println!(
            "  {name:<11}: iteration {:>6.1} ms, bubble {:>4.1}%, peak mem {:>5.1} GB",
            report.iteration_time * 1e3,
            100.0 * report.bubble_ratio,
            report.highest_peak() as f64 / 1e9
        );
    }
    println!("\nMore waves, fewer bubbles, same memory — the paper's headline.");
}
