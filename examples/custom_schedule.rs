//! Designing your own pipeline scheme through the framework's user
//! interface (§4.1: "we also offer interfaces for users to modify existing
//! schemes or develop their own").
//!
//! We build a "double-fold" variant by hand — a wave that lingers on the
//! middle devices — generate its schedule with the same list scheduler
//! Hanayo uses, validate it, execute it in the simulator, and train with
//! it bit-exactly on the threaded runtime.
//!
//! ```text
//! cargo run --example custom_schedule
//! ```

use hanayo::cluster::topology::fc_full_nvlink;
use hanayo::core::config::{PipelineConfig, Scheme};
use hanayo::core::gantt::render_paper_style;
use hanayo::core::ids::{DeviceId, ReplicaId};
use hanayo::core::schedule::build_compute_schedule;
use hanayo::core::schedule::custom::build_custom_schedule;
use hanayo::core::schedule::listsched::{ListParams, RetireRule};
use hanayo::core::stage_map::{PathGroup, StageMap};
use hanayo::core::validate::validate;
use hanayo::model::builders::MicroModel;
use hanayo::model::{CostTable, ModelConfig};
use hanayo::runtime::trainer::{sequential_reference, synthetic_data, train, TrainerConfig};
use hanayo::runtime::LossKind;
use hanayo::sim::{simulate, SimOptions};

fn main() {
    let (p, b) = (4u32, 4u32);

    // A custom path: down the devices, bounce in the middle, then home.
    // Stages:      0  1  2  3  4  5  6  7
    let ranks = [0u32, 1, 2, 3, 2, 1, 2, 1];
    let map = StageMap {
        devices: p,
        stages: ranks.len() as u32,
        groups: vec![PathGroup {
            path: ranks.iter().copied().map(DeviceId).collect(),
            replica: ReplicaId(0),
        }],
        mb_group: vec![0; b as usize],
    };

    let cfg = PipelineConfig::new(p, b, Scheme::GPipe).expect("P and B carrier");
    let params =
        ListParams { cap: Some(p), retire: RetireRule::ForwardComplete, ..Default::default() };
    let schedule = build_custom_schedule(&cfg, map, params).expect("custom scheme generates");
    validate(&schedule).expect("and validates like any built-in scheme");

    println!("A user-defined 'double-fold' pipeline on 4 devices:\n");
    let hanayo_cfg = PipelineConfig::new(p, b, Scheme::Hanayo { waves: 1 }).unwrap();
    let hanayo_cs = build_compute_schedule(&hanayo_cfg).unwrap();
    println!("Hanayo W=1 for reference:\n{}", render_paper_style(&hanayo_cs));

    // Simulate it against the BERT cost model.
    let cost = CostTable::build(&ModelConfig::bert64(), schedule.stage_map.stages, 1);
    let r = simulate(&schedule, &cost, &fc_full_nvlink(p as usize), SimOptions::default());
    println!(
        "custom scheme simulated: iteration {:.1} ms, bubble {:.1}%",
        r.iteration_time * 1e3,
        100.0 * r.bubble_ratio
    );

    // And train with it — correctness comes for free from the runtime.
    let s = schedule.stage_map.stages;
    let model = MicroModel { width: 8, total_blocks: s as usize, seed: 13 };
    let trainer = TrainerConfig::new(schedule, model.build_stages(s), 0.05, LossKind::Mse);
    let data = synthetic_data(2, 3, b as usize, 2, 8);
    let out = train(&trainer, &data);
    let seq = sequential_reference(&trainer.stages, &data, trainer.lr, &trainer.loss);
    assert_eq!(out.stages, seq.stages);
    println!(
        "custom scheme trained: losses {:?} — bit-identical to sequential.",
        out.losses.iter().map(|l| (l * 1e4).round() / 1e4).collect::<Vec<_>>()
    );
}
