//! The paper's adaptability experiment (§5.2) as an interactive sweep:
//! every method on all four clusters, reporting throughput, bubble ratio,
//! memory and the best Hanayo wave count per environment.
//!
//! ```text
//! cargo run --release --example adaptability_sweep
//! ```

use hanayo::cluster::topology::paper_clusters;
use hanayo::model::{ModelConfig, Recompute};
use hanayo::sim::{evaluate_plan, Method, ParallelPlan, SimOptions};

fn main() {
    let model = ModelConfig::bert64().with_train_bytes_per_param(8);
    let methods = [
        Method::GPipe,
        Method::Dapple,
        Method::ChimeraWave,
        Method::Hanayo { waves: 2 },
        Method::Hanayo { waves: 4 },
        Method::Hanayo { waves: 8 },
    ];

    println!("BERT-style model, 8 GPUs per cluster, B = 8 micro-batches (D=1, P=8)\n");
    println!("{:<6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}", "", "G", "D", "C", "H-2", "H-4", "H-8");
    for cluster in paper_clusters(8) {
        print!("{:<6}", cluster.name);
        for method in methods {
            let plan = ParallelPlan {
                method,
                dp: 1,
                pp: 8,
                micro_batches: 8,
                micro_batch_size: 1,
                recompute: Recompute::None,
            };
            match evaluate_plan(&plan, &model, &cluster, SimOptions::default()) {
                Ok(r) if !r.is_oom() => print!(" {:>8.2}", r.throughput),
                Ok(_) => print!(" {:>8}", "OOM"),
                Err(_) => print!(" {:>8}", "n/a"),
            }
        }
        println!();
    }

    println!("\nBest wave count per cluster (the §5.2 observation — slower");
    println!("interconnects prefer fewer waves):\n");
    for cluster in paper_clusters(8) {
        let best = [1u32, 2, 4, 8]
            .into_iter()
            .filter_map(|w| {
                let plan = ParallelPlan {
                    method: Method::Hanayo { waves: w },
                    dp: 1,
                    pp: 8,
                    micro_batches: 8,
                    micro_batch_size: 1,
                    recompute: Recompute::None,
                };
                evaluate_plan(&plan, &model, &cluster, SimOptions::default())
                    .ok()
                    .filter(|r| !r.is_oom())
                    .map(|r| (w, r.throughput))
            })
            .max_by(|a, b| a.1.total_cmp(&b.1));
        if let Some((w, t)) = best {
            println!("  {:<6}: W = {w} at {t:.2} sequences/s", cluster.name);
        }
    }

    // The §4.2 ablation as a simulator-option sweep: the same H-2 plan
    // under prefetch on/off and deeper receive lookaheads. Slow fabrics
    // reward early receive posting; NVSwitch barely notices.
    println!("\nPrefetch/lookahead ablation (Hanayo W=2, P=8, B=8, seq/s):\n");
    println!("{:<6} {:>10} {:>10} {:>12}", "", "prefetch", "no-pref", "lookahead=4");
    let plan = ParallelPlan {
        method: Method::Hanayo { waves: 2 },
        dp: 1,
        pp: 8,
        micro_batches: 8,
        micro_batch_size: 1,
        recompute: Recompute::None,
    };
    for cluster in paper_clusters(8) {
        let thr = |opts: SimOptions| {
            evaluate_plan(&plan, &model, &cluster, opts)
                .ok()
                .filter(|r| !r.is_oom())
                .map(|r| format!("{:.2}", r.throughput))
                .unwrap_or_else(|| "n/a".to_string())
        };
        println!(
            "{:<6} {:>10} {:>10} {:>12}",
            cluster.name,
            thr(SimOptions::default()),
            thr(SimOptions { prefetch: false, ..Default::default() }),
            thr(SimOptions { recv_lookahead: 4, ..Default::default() }),
        );
    }
}
