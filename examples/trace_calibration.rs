//! The measurement loop, end to end: trace a real threaded training run,
//! calibrate a cost table from the measured spans, and let the simulator
//! predict the run it was calibrated on — the §4 profiler workflow on the
//! CPU micro-model.
//!
//! ```text
//! cargo run --release --example trace_calibration
//! ```

use hanayo::cluster::topology::fc_full_nvlink;
use hanayo::core::config::{PipelineConfig, Scheme};
use hanayo::core::schedule::build_schedule;
use hanayo::model::builders::{micro_cost_table, MicroModel};
use hanayo::model::Recompute;
use hanayo::runtime::trainer::{synthetic_data, train, TrainerConfig};
use hanayo::runtime::LossKind;
use hanayo::sim::{simulate, SimOptions};
use hanayo::trace::{analyze, calibrate, gantt};

fn main() {
    let (p, b) = (4u32, 8u32);
    let scheme = Scheme::Hanayo { waves: 1 };
    let cfg = PipelineConfig::new(p, b, scheme).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    let s = cfg.stages();

    // 1. Measure: run one real training iteration with tracing on.
    let model = MicroModel { width: 96, total_blocks: s as usize * 2, seed: 23 };
    let stages = model.build_stages(s);
    let trainer = TrainerConfig {
        trace: true,
        ..TrainerConfig::new(schedule.clone(), stages.clone(), 0.05, LossKind::Mse)
    };
    let data = synthetic_data(17, 1, b as usize, 64, 96);
    let trace = train(&trainer, &data).trace.expect("trace requested");

    println!("measured timeline ({} events):", trace.events.len());
    print!("{}", gantt::render(&trace, 72));
    let a = analyze(&trace);
    println!(
        "measured: makespan {:.3} ms, bubble {:.1}%, critical path {} spans\n",
        1e3 * a.duration,
        100.0 * a.bubble_ratio,
        a.critical_path_len
    );

    // 2. Calibrate: fit per-stage T_F / T_B and the link time.
    let cal = calibrate(&trace, s as usize).expect("trace covers every stage");
    println!("calibrated per-stage forward times (µs): {:?}", scaled(&cal.t_fwd));
    println!("calibrated per-stage backward times (µs): {:?}", scaled(&cal.t_bwd));

    // 3. Predict: drive the simulator with the calibrated table.
    let cluster = fc_full_nvlink(p as usize);
    let table = cal
        .cost_table(&micro_cost_table(&stages, 64, 96, Recompute::None), &cluster)
        .expect("calibration covers the traced stages");
    let report = simulate(&schedule, &table, &cluster, SimOptions::default());
    let rel = (report.iteration_time - a.duration).abs() / a.duration;
    println!(
        "predicted: makespan {:.3} ms ({:.1}% off the measurement)",
        1e3 * report.iteration_time,
        100.0 * rel
    );
}

fn scaled(v: &[f64]) -> Vec<f64> {
    v.iter().map(|t| (t * 1e6).round()).collect()
}
