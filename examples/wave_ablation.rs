//! Ablations over the design choices DESIGN.md calls out:
//!
//! 1. **Wave count** — the bubble/communication trade-off of §3.3.
//! 2. **Receive prefetching** — the §4.2 runtime optimisation, on vs off.
//! 3. **Batched cross-communication** — what the NCCL batching
//!    synchronisation costs (measured by how much idle time it attributes).
//!
//! ```text
//! cargo run --release --example wave_ablation
//! ```

use hanayo::cluster::topology::{fc_full_nvlink, lonestar6};
use hanayo::core::config::{PipelineConfig, Scheme};
use hanayo::core::schedule::build_schedule;
use hanayo::model::{CostTable, ModelConfig};
use hanayo::sim::{simulate, SimOptions};

fn main() {
    let model = ModelConfig::bert64();

    println!("=== Wave-count ablation (P=8, B=8, BERT) ===\n");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "waves", "FC iter(ms)", "FC bubble", "TACC iter", "TACC bubble"
    );
    for w in [1u32, 2, 4, 8] {
        let cfg = PipelineConfig::new(8, 8, Scheme::Hanayo { waves: w }).expect("valid");
        let schedule = build_schedule(&cfg).expect("schedulable");
        let cost = CostTable::build(&model, cfg.stages(), 1);
        let fc = simulate(&schedule, &cost, &fc_full_nvlink(8), SimOptions::default());
        let tacc = simulate(&schedule, &cost, &lonestar6(8), SimOptions::default());
        println!(
            "W={w:<6} {:>12.1} {:>11.1}% {:>12.1} {:>11.1}%",
            fc.iteration_time * 1e3,
            100.0 * fc.bubble_ratio,
            tacc.iteration_time * 1e3,
            100.0 * tacc.bubble_ratio
        );
    }
    println!("\nOn the NVSwitch box more waves keep paying off; on Lonestar6's");
    println!("shared HCA the extra cross-communication catches up — §5.2's finding.\n");

    println!("=== Prefetch ablation (Hanayo W=2, P=8, B=8) ===\n");
    let cfg = PipelineConfig::new(8, 8, Scheme::Hanayo { waves: 2 }).expect("valid");
    let schedule = build_schedule(&cfg).expect("schedulable");
    let cost = CostTable::build(&model, cfg.stages(), 1);
    for cluster in [fc_full_nvlink(8), lonestar6(8)] {
        let on = simulate(&schedule, &cost, &cluster, SimOptions::default());
        let off = simulate(
            &schedule,
            &cost,
            &cluster,
            SimOptions { prefetch: false, ..Default::default() },
        );
        println!(
            "{:<6}: prefetch on {:>7.1} ms | off {:>7.1} ms | saved {:>5.1}%",
            cluster.name,
            on.iteration_time * 1e3,
            off.iteration_time * 1e3,
            100.0 * (1.0 - on.iteration_time / off.iteration_time)
        );
    }

    println!("\n=== Communication-wait attribution (W=2 vs W=8 on Lonestar6) ===\n");
    for w in [2u32, 8] {
        let cfg = PipelineConfig::new(8, 8, Scheme::Hanayo { waves: w }).expect("valid");
        let schedule = build_schedule(&cfg).expect("schedulable");
        let cost = CostTable::build(&model, cfg.stages(), 1);
        let r = simulate(&schedule, &cost, &lonestar6(8), SimOptions::default());
        let wait: f64 = r.device_comm_wait.iter().sum();
        println!(
            "W={w}: total message-wait {:>6.1} ms across devices ({:.1}% of device-time)",
            wait * 1e3,
            100.0 * wait / (r.iteration_time * 8.0)
        );
    }
}
