//! Real pipelined training with the threaded runtime, demonstrating the
//! correctness half of the reproduction: every synchronous schedule
//! produces **bit-identical** weights to sequential training, and losses
//! converge.
//!
//! ```text
//! cargo run --example train_equivalence
//! ```

use hanayo::core::config::{PipelineConfig, Scheme};
use hanayo::core::schedule::build_schedule;
use hanayo::model::builders::MicroModel;
use hanayo::runtime::trainer::{sequential_reference, synthetic_data, train, TrainerConfig};
use hanayo::runtime::{LossKind, Recompute};

fn main() {
    let p = 4;
    let b = 4;
    let width = 12;

    // Same data and same initial weights for every run.
    let data = {
        let one = synthetic_data(7, 1, b as usize, 4, width).remove(0);
        vec![one; 12] // 12 iterations over the same batch → loss must fall
    };

    println!("Training a {width}-wide, 16-block MLP over {p} pipeline workers...\n");

    let mut reference: Option<Vec<f32>> = None;
    for (name, scheme) in [
        ("GPipe", Scheme::GPipe),
        ("DAPPLE", Scheme::Dapple),
        ("Hanayo W=1", Scheme::Hanayo { waves: 1 }),
        ("Hanayo W=2", Scheme::Hanayo { waves: 2 }),
    ] {
        let cfg = PipelineConfig::new(p, b, scheme).expect("valid config");
        let schedule = build_schedule(&cfg).expect("schedulable");
        let stages = schedule.stage_map.stages;
        // One and the same 16-block model, partitioned into each scheme's
        // stage count (4 for the straight pipes, 8/16 for the waves).
        let model = MicroModel { width, total_blocks: 16, seed: 42 };

        let trainer = TrainerConfig::new(schedule, model.build_stages(stages), 0.05, LossKind::Mse);
        let out = train(&trainer, &data);
        let seq = sequential_reference(&trainer.stages, &data, trainer.lr, &trainer.loss);
        let bitwise = out.stages.iter().zip(&seq.stages).all(|(a, b)| a == b);

        let final_params: Vec<f32> = out.stages.iter().flat_map(|s| s.flat_params()).collect();
        let cross_schedule = match &reference {
            None => {
                reference = Some(final_params);
                "reference".to_string()
            }
            Some(r) => {
                if *r == final_params {
                    "bit-identical to GPipe".to_string()
                } else {
                    "DIVERGED".to_string()
                }
            }
        };

        println!(
            "{name:<11}: loss {:.4} -> {:.4} | vs sequential: {} | cross-schedule: {}",
            out.losses.first().unwrap(),
            out.losses.last().unwrap(),
            if bitwise { "bit-identical" } else { "DIVERGED" },
            cross_schedule,
        );
        assert!(bitwise, "{name} diverged from sequential execution");
        assert!(out.losses.last().unwrap() < out.losses.first().unwrap());
    }

    println!(
        "\nEvery pipeline schedule reproduced sequential training exactly — \
         the action-list runtime is semantics-preserving."
    );

    // Activation recomputation, executed: stash only each stage's input
    // boundary and replay the forward inside the backward. Same bits,
    // measurably smaller peak stash.
    let cfg = PipelineConfig::new(p, b, Scheme::Hanayo { waves: 2 }).expect("valid config");
    let schedule = build_schedule(&cfg).expect("schedulable");
    let stages = schedule.stage_map.stages;
    let model = MicroModel { width, total_blocks: 16, seed: 42 };
    let run = |recompute| {
        train(
            &TrainerConfig {
                recompute,
                ..TrainerConfig::new(
                    schedule.clone(),
                    model.build_stages(stages),
                    0.05,
                    LossKind::Mse,
                )
            },
            &data,
        )
    };
    let plain = run(Recompute::None);
    let ckpt = run(Recompute::Full);
    assert_eq!(plain.stages, ckpt.stages, "recompute changed the training bits");
    let peak = |o: &hanayo::runtime::TrainOutput| o.peak_stash_bytes.iter().sum::<usize>();
    println!(
        "\nHanayo W=2 with Recompute::Full: bit-identical weights, peak stash \
         {} B -> {} B ({:.1}x smaller).",
        peak(&plain),
        peak(&ckpt),
        peak(&plain) as f64 / peak(&ckpt) as f64,
    );
}
