//! # hanayo
//!
//! A full Rust reproduction of *"Hanayo: Harnessing Wave-like Pipeline
//! Parallelism for Enhanced Large Model Training Efficiency"* (Liu, Cheng,
//! Zhou & You, SC '23).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — schedule IR, the Hanayo wave scheduler and every baseline
//!   (GPipe, DAPPLE, interleaved 1F1B, Chimera), validation, analytic
//!   bubble/memory models, Gantt rendering.
//! * [`tensor`] — the dense-f32 math substrate with hand-written backward
//!   passes.
//! * [`model`] — BERT/GPT cost & memory models and CPU micro-models.
//! * [`cluster`] — the four evaluation clusters (PC, FC, TACC, TC).
//! * [`sim`] — the discrete-event execution engine and `D×P` plans.
//! * [`analyze`] — static schedule verification: the happens-before DAG,
//!   deadlock freedom via cycle detection, exact static peak-memory
//!   bounds, communication well-formedness, and the critical-path lower
//!   bound the tuner prunes with.
//! * [`runtime`] — the threaded action-list runtime with bit-exact
//!   gradient equivalence.
//! * [`trace`] — unified execution tracing for both engines: one event
//!   model, Chrome-trace export, bubble/utilisation/critical-path
//!   analysis, and profile-guided cost calibration
//!   (measure → calibrate → sweep → predict).
//! * [`ckpt`] — fault tolerance: the versioned bit-exact checkpoint
//!   model, failure-injection plans, and the recovery cost model behind
//!   the tuner's checkpoint-interval sweep (resume ≡ uninterrupted, by
//!   construction and by test).
//! * [`metrics`] — zero-perturbation observability: the shard-per-thread
//!   metrics registry, the `HANAYO_LOG` structured-logging facade, and
//!   the Prometheus/JSON expositions every long-running binary can emit.
//! * [`serve`] — the resident planning service: an HTTP/1.1 host over the
//!   tuner with cross-request sweep caches, in-flight request dedup,
//!   cancellable background jobs and graceful drain.
//! * [`repro`] — regeneration of every figure in the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use hanayo::core::config::{PipelineConfig, Scheme};
//! use hanayo::core::schedule::build_schedule;
//! use hanayo::cluster::topology::fc_full_nvlink;
//! use hanayo::model::{CostTable, ModelConfig};
//! use hanayo::sim::{simulate, SimOptions};
//!
//! // A 2-wave Hanayo pipeline on 8 devices, 8 micro-batches.
//! let cfg = PipelineConfig::new(8, 8, Scheme::Hanayo { waves: 2 }).unwrap();
//! let schedule = build_schedule(&cfg).unwrap();
//!
//! // Execute it on a simulated NVSwitch box training the BERT-style model.
//! let cost = CostTable::build(&ModelConfig::bert64(), cfg.stages(), 1);
//! let report = simulate(&schedule, &cost, &fc_full_nvlink(8), SimOptions::default());
//! assert!(report.bubble_ratio < 0.3);
//! ```

pub use hanayo_analyze as analyze;
pub use hanayo_ckpt as ckpt;
pub use hanayo_cluster as cluster;
pub use hanayo_core as core;
pub use hanayo_metrics as metrics;
pub use hanayo_model as model;
pub use hanayo_repro as repro;
pub use hanayo_runtime as runtime;
pub use hanayo_serve as serve;
pub use hanayo_sim as sim;
pub use hanayo_tensor as tensor;
pub use hanayo_trace as trace;
