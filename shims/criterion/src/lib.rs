//! Offline stand-in for `criterion`: `Criterion`, benchmark groups, the
//! `b.iter(..)` timing loop and the `criterion_group!`/`criterion_main!`
//! macros. Measurements are a simple best-of-N wall-clock average printed
//! to stdout — enough to compare runs by hand; statistical analysis is
//! out of scope for the shim.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Override the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(&format!("{}/{name}", self.name), self.sample_size, f);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    sample_size: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f`, adaptively choosing an iteration count.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up and per-iteration cost estimate.
        let start = Instant::now();
        std_black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));

        // Budget ~20ms per sample, at least one iteration each.
        let per_sample = (Duration::from_millis(20).as_nanos() / once.as_nanos()).max(1) as u64;
        let start = Instant::now();
        for _ in 0..self.sample_size as u64 * per_sample {
            std_black_box(f());
        }
        self.total = start.elapsed();
        self.iters = self.sample_size as u64 * per_sample;
    }
}

fn run_bench(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { sample_size, total: Duration::ZERO, iters: 0 };
    f(&mut b);
    if b.iters == 0 {
        println!("bench {name:<50} (no measurement)");
        return;
    }
    let per_iter = b.total.as_nanos() / b.iters as u128;
    println!("bench {name:<50} {per_iter:>12} ns/iter ({} iters)", b.iters);
}

/// Bundle benchmark functions into a group callable from
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}
