//! End-to-end check of the regression-seed replay path: a persisted
//! `proptest-regressions/<stem>.txt` file parallel to the source file is
//! found, parsed, and its seeds are run before any fresh cases.

use proptest::test_runner::{run, ProptestConfig, TestRng};
use std::cell::RefCell;
use std::fs;
use std::path::Path;

#[test]
fn persisted_seeds_are_replayed_first() {
    // Lay out a fake test source plus its parallel regression dir under
    // the package root (the test binary's working directory).
    let root = Path::new("target/regression-replay-fixture");
    let src_dir = root.join("tests");
    let reg_dir = root.join("proptest-regressions");
    fs::create_dir_all(&src_dir).unwrap();
    fs::create_dir_all(&reg_dir).unwrap();
    let src = src_dir.join("fake_suite.rs");
    fs::write(&src, "// fixture\n").unwrap();
    fs::write(
        reg_dir.join("fake_suite.txt"),
        "# comment line\ncc 0x00000000000000aa # first\ncc 0x00000000000000bb # second\n",
    )
    .unwrap();

    // Zero fresh cases: the only invocations must be the two persisted
    // seeds, in file order. The closure fingerprints each case by its
    // RNG's first draw.
    let draws = RefCell::new(Vec::new());
    run(
        ProptestConfig::with_cases(0),
        src.to_str().unwrap(),
        "persisted_seeds_are_replayed_first",
        |rng| {
            draws.borrow_mut().push(rng.next_u64());
            Ok(())
        },
    );
    let expect: Vec<u64> =
        [0xaa_u64, 0xbb].iter().map(|&s| TestRng::from_seed(s).next_u64()).collect();
    assert_eq!(draws.into_inner(), expect);
}

#[test]
fn missing_regression_file_runs_fresh_cases_only() {
    let count = RefCell::new(0u32);
    run(
        ProptestConfig::with_cases(5),
        "does/not/exist/nowhere.rs",
        "missing_regression_file_runs_fresh_cases_only",
        |_rng| {
            *count.borrow_mut() += 1;
            Ok(())
        },
    );
    assert_eq!(count.into_inner(), 5);
}
