//! Collection strategies: `collection::vec(element, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Anything usable as the size argument of [`vec`]: a fixed length or a
/// range of lengths.
pub trait SizeRange {
    /// Draw a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.next_below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.start() + rng.next_below((self.end() - self.start() + 1) as u64) as usize
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and `size` drawn
/// from a [`SizeRange`].
pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
