//! Value-generation strategies: ranges, `Just`, tuples, `prop_map`,
//! `prop_flat_map`, `boxed` and `Union`.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value` from a seeded RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only generated values satisfying `pred` (re-drawing up to a
    /// bounded number of times).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, pred }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 consecutive values", self.whence);
    }
}

/// Uniform choice between same-typed strategies.
pub struct Union<S: Strategy>(Vec<S>);

impl<S: Strategy> Union<S> {
    /// Build from a non-empty collection of alternatives.
    pub fn new(options: impl IntoIterator<Item = S>) -> Union<S> {
        let options: Vec<S> = options.into_iter().collect();
        assert!(!options.is_empty(), "Union of zero strategies");
        Union(options)
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let idx = rng.next_below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Ranges as strategies
// ---------------------------------------------------------------------------

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.next_unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}
