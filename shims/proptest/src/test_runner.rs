//! The deterministic case runner: seeding, regression-seed replay and
//! persistence, panic capture.

use std::fs;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Per-test configuration. Only the fields this workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property-test case (produced by the `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.0
    }
}

/// splitmix64: tiny, well-distributed, and fully deterministic.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the generator.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // Modulo bias is negligible for the small bounds tests use.
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a over the test identity: the deterministic base seed.
fn base_seed(source_file: &str, test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in source_file.bytes().chain([0]).chain(test_name.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Locate the test's source file from `file!()`, which is relative to the
/// workspace root while the test binary runs from the package root.
fn resolve_source(file: &str) -> Option<PathBuf> {
    let direct = Path::new(file);
    if direct.exists() {
        return Some(direct.to_path_buf());
    }
    for up in ["..", "../..", "../../.."] {
        let candidate = Path::new(up).join(file);
        if candidate.exists() {
            return Some(candidate);
        }
    }
    None
}

/// `proptest-regressions/<stem>.txt` parallel to the source file's
/// directory — upstream proptest's `SourceParallel` convention.
fn regression_path(source_file: &str) -> Option<PathBuf> {
    let source = resolve_source(source_file)?;
    let dir = source.parent()?.parent()?;
    let stem = source.file_stem()?;
    Some(dir.join("proptest-regressions").join(stem).with_extension("txt"))
}

fn load_regression_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            let token = rest.split_whitespace().next()?;
            let token = token.strip_prefix("0x").unwrap_or(token);
            u64::from_str_radix(token, 16).ok()
        })
        .collect()
}

fn persist_failure(path: &Path, test_name: &str, seed: u64) {
    use std::io::Write;

    if load_regression_seeds(path).contains(&seed) {
        return;
    }
    if let Some(dir) = path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    // Append-only: tests in one source file share this regression file and
    // may fail concurrently under cargo's parallel test threads, so a
    // read-modify-write here could drop another test's freshly persisted
    // seed. A single appended write cannot.
    let mut entry = String::new();
    if !path.exists() {
        entry.push_str(
            "# Seeds for failure cases proptest has generated in the past.\n\
             # It is automatically read and these particular cases re-run before\n\
             # any novel cases are generated. Format: `cc 0x<seed> # <test>`.\n",
        );
    }
    entry.push_str(&format!("cc {seed:#018x} # {test_name}\n"));
    if let Ok(mut f) = fs::OpenOptions::new().create(true).append(true).open(path) {
        let _ = f.write_all(entry.as_bytes());
    }
}

/// Run one property test: replay persisted regression seeds, then
/// `config.cases` fresh cases. Panics (as `#[test]` expects) on the first
/// failing case, printing and persisting its seed.
pub fn run(
    config: ProptestConfig,
    source_file: &str,
    test_name: &str,
    f: impl Fn(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let base = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse().expect("PROPTEST_SEED must be a u64"),
        Err(_) => base_seed(source_file, test_name),
    };
    let cases = match std::env::var("PROPTEST_CASES") {
        Ok(s) => s.parse().expect("PROPTEST_CASES must be a u32"),
        Err(_) => config.cases,
    };
    let reg_path = regression_path(source_file);
    let persisted: Vec<u64> = reg_path.as_deref().map(load_regression_seeds).unwrap_or_default();

    let replay = persisted.iter().map(|&s| (s, true));
    let fresh = (0..cases).map(|i| (base.wrapping_add(i as u64), false));
    for (seed, is_replay) in replay.chain(fresh) {
        let mut rng = TestRng::from_seed(seed);
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| f(&mut rng)));
        let failure: Option<String> = match outcome {
            Ok(Ok(())) => None,
            Ok(Err(e)) => Some(e.message().to_string()),
            Err(cause) => Some(
                cause
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| cause.downcast_ref::<&str>().copied())
                    .unwrap_or("test panicked")
                    .to_string(),
            ),
        };
        if let Some(msg) = failure {
            if !is_replay {
                if let Some(path) = &reg_path {
                    persist_failure(path, test_name, seed);
                }
            }
            panic!(
                "proptest case failed: {msg}\n\
                 test: {test_name} ({source_file})\n\
                 seed: cc {seed:#018x}{}\n\
                 re-run with PROPTEST_SEED={seed} PROPTEST_CASES=1 to reproduce",
                if is_replay { " (persisted regression)" } else { "" }
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = rng.next_unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn base_seed_depends_on_name() {
        assert_ne!(base_seed("a.rs", "t1"), base_seed("a.rs", "t2"));
        assert_ne!(base_seed("a.rs", "t1"), base_seed("b.rs", "t1"));
    }

    #[test]
    fn regression_lines_parse() {
        let dir = std::env::temp_dir().join("proptest-shim-test");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("seeds.txt");
        fs::write(&path, "# comment\ncc 0x00000000000000ff # t\ncc 10 # t\n").unwrap();
        assert_eq!(load_regression_seeds(&path), vec![255, 16]);
        let _ = fs::remove_file(&path);
    }
}
