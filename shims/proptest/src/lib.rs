//! Offline stand-in for `proptest` implementing the subset this workspace
//! uses: the `proptest!` / `prop_assert*` / `prop_oneof!` macros, range and
//! collection strategies, `prop_map` / `prop_flat_map` / `boxed`, `Union`,
//! and a deterministic runner.
//!
//! Determinism model (simpler than upstream, strictly reproducible):
//! every test derives its base seed from the test's source file and name,
//! so a failure always reproduces on re-run. Failing case seeds are
//! printed and persisted to a `proptest-regressions/<file>.txt` file
//! parallel to the test source (same convention as upstream proptest),
//! and persisted seeds are always replayed first on later runs. Set
//! `PROPTEST_SEED=<u64>` to override the base seed, and
//! `PROPTEST_CASES=<n>` to override the case count.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The usual glob import: macros, core strategy types, config.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The body of one generated property test: runs `cases` iterations of
/// `f`, replaying persisted regression seeds first.
///
/// Not public API upstream; the macros below expand to calls into this.
pub fn run_property_test(
    config: test_runner::ProptestConfig,
    source_file: &str,
    test_name: &str,
    f: impl Fn(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
) {
    test_runner::run(config, source_file, test_name, f);
}

/// `proptest! { ... }`: expands each `fn name(pat in strategy, ...) { body }`
/// into a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::run_property_test(config, file!(), stringify!($name), |prop_rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), prop_rng);)+
                    #[allow(unreachable_code)]
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    outcome
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!(left, right)` with optional custom message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// `prop_assert_ne!(left, right)` with optional custom message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// `prop_oneof![s1, s2, ...]`: a uniform choice between strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
