//! Offline stand-in for `rayon` covering the surface this workspace uses:
//! `par_chunks_mut(..).enumerate().for_each(..)` (genuinely threaded via
//! `std::thread::scope`) and `par_iter()` on slices (sequential, API
//! compatible — the only caller is the repro grid, where wall-clock does
//! not gate the test pyramid).

pub mod prelude {
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Split into mutable chunks of `size` to be processed in parallel.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ParChunksMut { chunks: self.chunks_mut(size).collect() }
    }
}

/// Parallel mutable chunk iterator (see [`ParallelSliceMut`]).
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair each chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { items: self.chunks.into_iter().enumerate().collect() }
    }

    /// Apply `f` to every chunk across worker threads.
    pub fn for_each(self, f: impl Fn(&'a mut [T]) + Sync) {
        run_parallel(self.chunks, &f);
    }
}

/// Enumerated form of [`ParChunksMut`].
pub struct ParChunksMutEnumerate<'a, T> {
    items: Vec<(usize, &'a mut [T])>,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Apply `f` to every `(index, chunk)` pair across worker threads.
    pub fn for_each(self, f: impl Fn((usize, &'a mut [T])) + Sync) {
        run_parallel(self.items, &f);
    }
}

fn run_parallel<I: Send>(items: Vec<I>, f: &(impl Fn(I) + Sync)) {
    let workers = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let workers = workers.min(items.len()).max(1);
    if workers <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    // Strided round-robin keeps neighbouring (similar-cost) chunks spread
    // across workers.
    let mut buckets: Vec<Vec<I>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % workers].push(item);
    }
    std::thread::scope(|scope| {
        for bucket in buckets {
            scope.spawn(|| {
                for item in bucket {
                    f(item);
                }
            });
        }
    });
}

/// `par_iter` on shared slices. Sequential under the hood: it returns the
/// std iterator, whose `map`/`flat_map`/`collect` combinators match the
/// rayon call-sites in this workspace.
pub trait ParallelSlice<T> {
    /// Iterate items (sequentially in this shim).
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
}

impl<T> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_enumerate_matches_sequential() {
        let mut par = vec![0u64; 1000];
        par.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (i * 10 + j) as u64;
            }
        });
        let expect: Vec<u64> = (0..1000).collect();
        assert_eq!(par, expect);
    }

    #[test]
    fn par_iter_collects() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }
}
