//! Offline stand-in for `rayon` covering the surface this workspace uses:
//! `par_chunks_mut(..).enumerate().for_each(..)` and
//! `par_iter().map(..)/.flat_map(..).collect()`, both genuinely threaded
//! via a **persistent worker pool**. `par_iter` combinators are
//! *order-preserving*: `collect` yields results in input order no matter
//! how the worker threads interleave — the property the auto-tuner's
//! deterministic ranking relies on.
//!
//! ## Pool semantics
//!
//! The pool is created once per process ([`current_num_threads`] surfaces
//! its size). The thread count is resolved exactly once at init:
//! `HANAYO_THREADS` (positive integer) wins; otherwise
//! `std::thread::available_parallelism()`. A malformed `HANAYO_THREADS`
//! warns on stderr and falls back — it never silently changes the count
//! mid-run, and the OS is never re-queried per dispatch.
//!
//! The calling thread is one of the `N` executors: a dispatch splits work
//! into at most `N` buckets, queues `N-1` of them to the resident workers
//! and runs the last bucket itself. Nested parallel calls issued from
//! inside a pool task run inline on the current thread, so nesting can
//! never deadlock the fixed-size pool. Panics inside any bucket are
//! caught, the dispatch still waits for every bucket to finish (borrowed
//! data stays live), and the first payload is re-raised in the caller via
//! `resume_unwind`.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

pub mod prelude {
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

/// Number of executor threads (resident workers + the calling thread) the
/// process-wide pool uses. Resolved once; see the crate docs.
pub fn current_num_threads() -> usize {
    global_pool().threads()
}

// ---------------------------------------------------------------------------
// Persistent pool
// ---------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
}

/// Fixed-size persistent thread pool. One global instance backs the public
/// API; tests construct private instances to pin pool behaviour regardless
/// of the host's core count.
struct Pool {
    shared: Arc<PoolShared>,
    /// Total executors: spawned workers + the calling thread.
    threads: usize,
}

thread_local! {
    /// True while this thread is executing a pool bucket; nested parallel
    /// calls observe it and run inline instead of re-entering the queue.
    static IN_POOL_TASK: Cell<bool> = const { Cell::new(false) };
}

/// Tracks one dispatch: how many buckets are still running and the first
/// panic payload observed, if any.
struct Batch {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

fn lock<'m, T>(m: &'m Mutex<T>) -> std::sync::MutexGuard<'m, T> {
    // Bucket bodies catch panics before they can poison a lock; recover
    // defensively anyway so a poisoned pool can never wedge the process.
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Pool {
    fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let shared =
            Arc::new(PoolShared { queue: Mutex::new(VecDeque::new()), job_ready: Condvar::new() });
        // The caller is executor 0; spawn the remaining N-1 resident workers.
        for w in 1..threads {
            let shared = Arc::clone(&shared);
            let builder = std::thread::Builder::new().name(format!("hanayo-worker-{w}"));
            let spawned = builder.spawn(move || loop {
                let job = {
                    let mut q = lock(&shared.queue);
                    loop {
                        if let Some(job) = q.pop_front() {
                            break job;
                        }
                        q = shared
                            .job_ready
                            .wait(q)
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                    }
                };
                IN_POOL_TASK.with(|flag| flag.set(true));
                job();
                IN_POOL_TASK.with(|flag| flag.set(false));
            });
            if spawned.is_err() {
                // Thread creation failed (resource limits): the pool still
                // works with fewer residents; dispatches fall back on the
                // caller draining its own buckets via the queue helpers.
                eprintln!("hanayo rayon shim: failed to spawn worker {w}; continuing with fewer");
            }
        }
        Pool { shared, threads }
    }

    fn threads(&self) -> usize {
        self.threads
    }

    /// Run every task to completion, re-raising the first panic payload in
    /// the caller once all tasks have finished. Tasks may borrow from the
    /// caller's stack (`'scope`): the lifetime erasure below is sound
    /// because this function does not return (or unwind) until `remaining`
    /// hits zero, i.e. until every erased closure has been dropped.
    fn run_tasks<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        let n = tasks.len();
        if n == 0 {
            return;
        }
        let inline = self.threads <= 1 || n == 1 || IN_POOL_TASK.with(|flag| flag.get());
        if inline {
            for task in tasks {
                task();
            }
            return;
        }

        let batch = Arc::new(Batch {
            remaining: Mutex::new(n),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });

        let mut wrapped: Vec<Job> = Vec::with_capacity(n);
        for task in tasks {
            let batch = Arc::clone(&batch);
            let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                if let Err(payload) = result {
                    let mut slot = lock(&batch.panic);
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
                let mut remaining = lock(&batch.remaining);
                *remaining -= 1;
                if *remaining == 0 {
                    batch.done.notify_all();
                }
            });
            // SAFETY: see the method doc — every job completes (and is
            // dropped) before run_tasks returns, so no borrow of 'scope
            // data can outlive its referent.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
            wrapped.push(job);
        }

        // Keep one bucket for the calling thread; queue the rest.
        let own = wrapped.pop();
        {
            let mut q = lock(&self.shared.queue);
            q.extend(wrapped);
        }
        self.shared.job_ready.notify_all();
        if let Some(own) = own {
            IN_POOL_TASK.with(|flag| flag.set(true));
            own();
            IN_POOL_TASK.with(|flag| flag.set(false));
        }

        // Help drain the queue while waiting: if every resident worker is
        // busy (or failed to spawn), the caller keeps making progress.
        loop {
            if *lock(&batch.remaining) == 0 {
                break;
            }
            let stolen = lock(&self.shared.queue).pop_front();
            match stolen {
                Some(job) => {
                    IN_POOL_TASK.with(|flag| flag.set(true));
                    job();
                    IN_POOL_TASK.with(|flag| flag.set(false));
                }
                None => {
                    let guard = lock(&batch.remaining);
                    if *guard > 0 {
                        // Timed wait: a job for *this* batch may still be
                        // queued behind other batches' jobs, which only the
                        // queue (not `done`) signals about.
                        let _unused = self.batch_wait(guard, &batch);
                    } else {
                        break;
                    }
                }
            }
        }

        let payload = lock(&batch.panic).take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }

    fn batch_wait<'m>(
        &self,
        guard: std::sync::MutexGuard<'m, usize>,
        batch: &Batch,
    ) -> std::sync::MutexGuard<'m, usize> {
        let (guard, _timeout) = batch
            .done
            .wait_timeout(guard, std::time::Duration::from_millis(1))
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        guard
    }

    /// Apply `f` to every item, strided round-robin across buckets so
    /// neighbouring (similar-cost) items spread over executors.
    fn run_parallel<I: Send>(&self, items: Vec<I>, f: &(impl Fn(I) + Sync)) {
        let buckets = self.threads.min(items.len()).max(1);
        if buckets <= 1 || IN_POOL_TASK.with(|flag| flag.get()) {
            for item in items {
                f(item);
            }
            return;
        }
        let mut split: Vec<Vec<I>> = (0..buckets).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            split[i % buckets].push(item);
        }
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = split
            .into_iter()
            .map(|bucket| {
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    for item in bucket {
                        f(item);
                    }
                });
                task
            })
            .collect();
        self.run_tasks(tasks);
    }

    /// Parallel map over indices `0..n`, preserving index order in the
    /// output. Each bucket ships `(index, result)` pairs home through its
    /// own slot and the caller reassembles them in order.
    fn par_map_indexed<R: Send>(&self, n: usize, f: &(impl Fn(usize) -> R + Sync)) -> Vec<R> {
        let buckets = self.threads.min(n).max(1);
        if buckets <= 1 || IN_POOL_TASK.with(|flag| flag.get()) {
            return (0..n).map(f).collect();
        }
        let slots: Vec<Mutex<Vec<(usize, R)>>> =
            (0..buckets).map(|_| Mutex::new(Vec::new())).collect();
        let slots = &slots;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..buckets)
            .map(|w| {
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let mut res = Vec::new();
                    let mut i = w;
                    while i < n {
                        res.push((i, f(i)));
                        i += buckets;
                    }
                    *lock(&slots[w]) = res;
                });
                task
            })
            .collect();
        self.run_tasks(tasks);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for slot in slots {
            for (i, r) in lock(slot).drain(..) {
                out[i] = Some(r);
            }
        }
        out.into_iter().flatten().collect()
    }
}

fn resolve_threads(env_override: Option<&str>) -> usize {
    if let Some(raw) = env_override {
        match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => {
                eprintln!(
                    "hanayo rayon shim: HANAYO_THREADS={raw:?} is not a positive integer; \
                     falling back to available_parallelism"
                );
            }
        }
    }
    std::thread::available_parallelism().map(usize::from).unwrap_or(1)
}

fn global_pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let env = std::env::var("HANAYO_THREADS").ok();
        Pool::new(resolve_threads(env.as_deref()))
    })
}

fn run_parallel<I: Send>(items: Vec<I>, f: &(impl Fn(I) + Sync)) {
    global_pool().run_parallel(items, f)
}

fn par_map_indexed<R: Send>(n: usize, f: &(impl Fn(usize) -> R + Sync)) -> Vec<R> {
    global_pool().par_map_indexed(n, f)
}

// ---------------------------------------------------------------------------
// Public iterator surface
// ---------------------------------------------------------------------------

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Split into mutable chunks of `size` to be processed in parallel.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ParChunksMut { chunks: self.chunks_mut(size).collect() }
    }
}

/// Parallel mutable chunk iterator (see [`ParallelSliceMut`]).
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair each chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { items: self.chunks.into_iter().enumerate().collect() }
    }

    /// Apply `f` to every chunk across worker threads.
    pub fn for_each(self, f: impl Fn(&'a mut [T]) + Sync) {
        run_parallel(self.chunks, &f);
    }
}

/// Enumerated form of [`ParChunksMut`].
pub struct ParChunksMutEnumerate<'a, T> {
    items: Vec<(usize, &'a mut [T])>,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Apply `f` to every `(index, chunk)` pair across worker threads.
    pub fn for_each(self, f: impl Fn((usize, &'a mut [T])) + Sync) {
        run_parallel(self.items, &f);
    }
}

/// `par_iter` on shared slices: a genuinely threaded, order-preserving
/// parallel iterator supporting the `map`/`flat_map`/`collect` call-sites
/// in this workspace.
pub trait ParallelSlice<T: Sync> {
    /// Iterate items in parallel.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// Parallel shared-slice iterator (see [`ParallelSlice`]).
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map every item through `f` across worker threads.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }

    /// Map every item to an iterable and flatten, preserving item order.
    pub fn flat_map<I, F>(self, f: F) -> ParFlatMap<'a, T, F>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(&'a T) -> I + Sync,
    {
        ParFlatMap { items: self.items, f }
    }
}

/// Mapped form of [`ParIter`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
    /// Run the map across worker threads and collect results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let f = &self.f;
        let items = self.items;
        par_map_indexed(items.len(), &|i| f(&items[i])).into_iter().collect()
    }
}

/// Flat-mapped form of [`ParIter`].
pub struct ParFlatMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, I, F> ParFlatMap<'a, T, F>
where
    T: Sync,
    I: IntoIterator,
    I::Item: Send,
    F: Fn(&'a T) -> I + Sync,
{
    /// Run the flat-map across worker threads and collect results in input
    /// order.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        let f = &self.f;
        let items = self.items;
        par_map_indexed(items.len(), &|i| f(&items[i]).into_iter().collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::Pool;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    use std::thread::ThreadId;

    #[test]
    fn par_chunks_mut_enumerate_matches_sequential() {
        let mut par = vec![0u64; 1000];
        par.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (i * 10 + j) as u64;
            }
        });
        let expect: Vec<u64> = (0..1000).collect();
        assert_eq!(par, expect);
    }

    #[test]
    fn par_iter_collects() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn par_map_preserves_input_order_under_contention() {
        let v: Vec<u64> = (0..500).collect();
        // Uneven work per item scrambles completion order across threads.
        let out: Vec<u64> = v
            .par_iter()
            .map(|&x| {
                if x % 7 == 0 {
                    std::thread::yield_now();
                }
                x * x
            })
            .collect();
        let expect: Vec<u64> = (0..500).map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_flat_map_preserves_item_order() {
        let v = vec![1usize, 2, 3];
        let out: Vec<usize> = v.par_iter().flat_map(|&x| vec![x; x]).collect();
        assert_eq!(out, vec![1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn pool_preserves_order_on_multithreaded_pool() {
        // A private pool pins multithreaded dispatch even on 1-core hosts.
        let pool = Pool::new(4);
        let out = pool.par_map_indexed(257, &|i| i * 3);
        let expect: Vec<usize> = (0..257).map(|i| i * 3).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn pool_reuses_worker_threads_across_dispatches() {
        let pool = Pool::new(3);
        let caller = std::thread::current().id();
        let observe = |pool: &Pool| -> HashSet<ThreadId> {
            let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
            let started = AtomicUsize::new(0);
            pool.run_parallel((0..3).collect(), &|_i: usize| {
                seen.lock().unwrap().insert(std::thread::current().id());
                // Hold each bucket open until all three have started so a
                // single fast worker cannot swallow every queued bucket.
                started.fetch_add(1, Ordering::SeqCst);
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
                while started.load(Ordering::SeqCst) < 3 && std::time::Instant::now() < deadline {
                    std::thread::yield_now();
                }
            });
            seen.into_inner().unwrap()
        };
        let first: HashSet<ThreadId> =
            observe(&pool).into_iter().filter(|id| *id != caller).collect();
        let second: HashSet<ThreadId> =
            observe(&pool).into_iter().filter(|id| *id != caller).collect();
        assert_eq!(first.len(), 2, "three buckets over caller + two residents");
        // Persistent pool: the second dispatch runs on the *same* resident
        // workers — no fresh OS threads per call.
        assert_eq!(first, second);
    }

    #[test]
    fn nested_par_iter_inside_par_chunks_mut_does_not_deadlock() {
        let pool = Pool::new(2);
        // Nested parallel calls from inside pool buckets run inline; with a
        // fixed-size pool a queue-blocking implementation would deadlock
        // here (every executor waiting on buckets nobody is free to run).
        let mut data = vec![0u64; 64];
        let chunks: Vec<&mut [u64]> = data.chunks_mut(8).collect();
        pool.run_parallel(chunks, &|chunk: &mut [u64]| {
            let inner: Vec<u64> = chunk.par_iter().map(|&v| v + 1).collect();
            for (dst, src) in chunk.iter_mut().zip(inner) {
                *dst = src + 1;
            }
        });
        assert_eq!(data, vec![2u64; 64]);
    }

    #[test]
    fn panic_payload_resumes_across_pooled_workers() {
        let pool = Pool::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.par_map_indexed(64, &|i| {
                if i == 37 {
                    panic!("bucket 37 exploded");
                }
                i
            })
        }));
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("bucket 37 exploded"), "original payload survives: {msg:?}");
    }

    #[test]
    fn pool_survives_a_panicked_dispatch() {
        // A panicked batch must not poison the pool: later dispatches on
        // the same residents still work.
        let pool = Pool::new(3);
        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.par_map_indexed(16, &|i| if i == 3 { panic!("boom") } else { i })
        }));
        assert!(poisoned.is_err());
        let out = pool.par_map_indexed(16, &|i| i + 1);
        assert_eq!(out, (1..=16).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_resolution_prefers_env_override() {
        assert_eq!(super::resolve_threads(Some("6")), 6);
        assert_eq!(super::resolve_threads(Some(" 2 ")), 2);
        // Malformed or zero overrides warn and fall back to the host count.
        let host = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
        assert_eq!(super::resolve_threads(Some("0")), host);
        assert_eq!(super::resolve_threads(Some("lots")), host);
        assert_eq!(super::resolve_threads(None), host);
    }
}
