//! Offline stand-in for `rayon` covering the surface this workspace uses:
//! `par_chunks_mut(..).enumerate().for_each(..)` and
//! `par_iter().map(..)/.flat_map(..).collect()`, both genuinely threaded
//! via `std::thread::scope`. `par_iter` combinators are *order-preserving*:
//! `collect` yields results in input order no matter how the worker
//! threads interleave — the property the auto-tuner's deterministic
//! ranking relies on.

pub mod prelude {
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Split into mutable chunks of `size` to be processed in parallel.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ParChunksMut { chunks: self.chunks_mut(size).collect() }
    }
}

/// Parallel mutable chunk iterator (see [`ParallelSliceMut`]).
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair each chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { items: self.chunks.into_iter().enumerate().collect() }
    }

    /// Apply `f` to every chunk across worker threads.
    pub fn for_each(self, f: impl Fn(&'a mut [T]) + Sync) {
        run_parallel(self.chunks, &f);
    }
}

/// Enumerated form of [`ParChunksMut`].
pub struct ParChunksMutEnumerate<'a, T> {
    items: Vec<(usize, &'a mut [T])>,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Apply `f` to every `(index, chunk)` pair across worker threads.
    pub fn for_each(self, f: impl Fn((usize, &'a mut [T])) + Sync) {
        run_parallel(self.items, &f);
    }
}

fn run_parallel<I: Send>(items: Vec<I>, f: &(impl Fn(I) + Sync)) {
    let workers = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let workers = workers.min(items.len()).max(1);
    if workers <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    // Strided round-robin keeps neighbouring (similar-cost) chunks spread
    // across workers.
    let mut buckets: Vec<Vec<I>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % workers].push(item);
    }
    std::thread::scope(|scope| {
        for bucket in buckets {
            scope.spawn(|| {
                for item in bucket {
                    f(item);
                }
            });
        }
    });
}

/// Parallel map over indices `0..n`, preserving index order in the output.
/// Work is strided across workers so neighbouring (similar-cost) items
/// spread out; each worker ships `(index, result)` pairs home and the
/// caller reassembles them in order.
fn par_map_indexed<R: Send>(n: usize, f: &(impl Fn(usize) -> R + Sync)) -> Vec<R> {
    let workers = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let workers = workers.min(n).max(1);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut res = Vec::new();
                    let mut i = w;
                    while i < n {
                        res.push((i, f(i)));
                        i += workers;
                    }
                    res
                })
            })
            .collect();
        for h in handles {
            // Re-raise worker panics with their original payload so the
            // diagnostic survives the thread boundary.
            match h.join() {
                Ok(pairs) => {
                    for (i, r) in pairs {
                        out[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out.into_iter().map(|r| r.expect("every index computed")).collect()
}

/// `par_iter` on shared slices: a genuinely threaded, order-preserving
/// parallel iterator supporting the `map`/`flat_map`/`collect` call-sites
/// in this workspace.
pub trait ParallelSlice<T: Sync> {
    /// Iterate items in parallel.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// Parallel shared-slice iterator (see [`ParallelSlice`]).
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map every item through `f` across worker threads.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }

    /// Map every item to an iterable and flatten, preserving item order.
    pub fn flat_map<I, F>(self, f: F) -> ParFlatMap<'a, T, F>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(&'a T) -> I + Sync,
    {
        ParFlatMap { items: self.items, f }
    }
}

/// Mapped form of [`ParIter`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
    /// Run the map across worker threads and collect results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let f = &self.f;
        let items = self.items;
        par_map_indexed(items.len(), &|i| f(&items[i])).into_iter().collect()
    }
}

/// Flat-mapped form of [`ParIter`].
pub struct ParFlatMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, I, F> ParFlatMap<'a, T, F>
where
    T: Sync,
    I: IntoIterator,
    I::Item: Send,
    F: Fn(&'a T) -> I + Sync,
{
    /// Run the flat-map across worker threads and collect results in input
    /// order.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        let f = &self.f;
        let items = self.items;
        par_map_indexed(items.len(), &|i| f(&items[i]).into_iter().collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_enumerate_matches_sequential() {
        let mut par = vec![0u64; 1000];
        par.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (i * 10 + j) as u64;
            }
        });
        let expect: Vec<u64> = (0..1000).collect();
        assert_eq!(par, expect);
    }

    #[test]
    fn par_iter_collects() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn par_map_preserves_input_order_under_contention() {
        let v: Vec<u64> = (0..500).collect();
        // Uneven work per item scrambles completion order across threads.
        let out: Vec<u64> = v
            .par_iter()
            .map(|&x| {
                if x % 7 == 0 {
                    std::thread::yield_now();
                }
                x * x
            })
            .collect();
        let expect: Vec<u64> = (0..500).map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_flat_map_preserves_item_order() {
        let v = vec![1usize, 2, 3];
        let out: Vec<usize> = v.par_iter().flat_map(|&x| vec![x; x]).collect();
        assert_eq!(out, vec![1, 2, 2, 3, 3, 3]);
    }
}
