//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` shim. No `syn`/`quote` — the input item is parsed
//! directly from the `proc_macro` token stream, which is sufficient for
//! the plain (non-generic, attribute-free) structs and enums this
//! workspace derives on:
//!
//! * named struct        → `Value::Map` keyed by field name
//! * newtype struct      → the inner value (serde's newtype convention)
//! * tuple struct (n>1)  → `Value::Seq`
//! * unit enum variant   → `Value::Str(variant)`
//! * data enum variant   → externally tagged `{ variant: payload }`

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Input {
    name: String,
    kind: Kind,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_serialize(&item).parse().expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let keyword = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim does not support generic types (deriving on `{name}`)");
    }
    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_struct_body(&toks, i)),
        "enum" => Kind::Enum(parse_enum_body(&toks, i)),
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Input { name, kind }
}

fn parse_struct_body(toks: &[TokenTree], i: usize) -> Fields {
    match toks.get(i) {
        None | Some(TokenTree::Punct(_)) => Fields::Unit, // `struct Foo;`
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(named_field_names(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(split_top_level_commas(g.stream()).len())
        }
        Some(other) => panic!("serde_derive: unexpected token in struct body: {other}"),
    }
}

fn parse_enum_body(toks: &[TokenTree], i: usize) -> Vec<(String, Fields)> {
    let body = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde_derive: expected enum body, found {other:?}"),
    };
    split_top_level_commas(body)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let mut j = 0;
            skip_attrs_and_vis(&chunk, &mut j);
            let name = match &chunk[j] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive: expected variant name, found {other}"),
            };
            j += 1;
            let fields = match chunk.get(j) {
                None => Fields::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(named_field_names(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(split_top_level_commas(g.stream()).len())
                }
                Some(other) => panic!("serde_derive: unexpected token after variant: {other}"),
            };
            (name, fields)
        })
        .collect()
}

/// Skip leading `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2, // `#` + bracket group
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Split a token stream at top-level commas, treating `<...>` as nesting
/// (types like `HashMap<K, V>` keep their commas inside one chunk).
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = vec![Vec::new()];
    let mut angle = 0i32;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        out.last_mut().unwrap().push(tok);
    }
    if out.last().map(Vec::is_empty).unwrap_or(false) {
        out.pop();
    }
    out
}

/// Field names of a named-field list (`a: T, b: U, ...`).
fn named_field_names(stream: TokenStream) -> Vec<String> {
    split_top_level_commas(stream)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let mut j = 0;
            skip_attrs_and_vis(&chunk, &mut j);
            match &chunk[j] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive: expected field name, found {other}"),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Kind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_value(&self.{k})")).collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Kind::Struct(Fields::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Map(vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => {
                        format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),")
                    }
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(f0) => ::serde::Value::Map(vec![(\"{v}\".to_string(), \
                         ::serde::Serialize::to_value(f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::to_value(f{k})"))
                            .collect();
                        format!(
                            "{name}::{v}({b}) => ::serde::Value::Map(vec![(\"{v}\".to_string(), \
                             ::serde::Value::Seq(vec![{i}]))]),",
                            b = binds.join(", "),
                            i = items.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let items: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(vec![(\"{v}\"\
                             .to_string(), ::serde::Value::Map(vec![{i}]))]),",
                            i = items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Unit) => format!("{{ let _ = v; Ok({name}) }}"),
        Kind::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> =
                (0..*n).map(|k| format!("::serde::Deserialize::from_value(&s[{k}])?")).collect();
            format!(
                "{{ let s = v.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected seq for \
                 {name}\"))?; if s.len() != {n} {{ return Err(::serde::Error::custom(\"wrong \
                 arity for {name}\")); }} Ok({name}({items})) }}",
                items = items.join(", ")
            )
        }
        Kind::Struct(Fields::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::get_field(m, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "{{ let m = v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for \
                 {name}\"))?; Ok({name} {{ {items} }}) }}",
                items = items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&s[{k}])?"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ let s = inner.as_seq().ok_or_else(|| \
                             ::serde::Error::custom(\"expected seq payload\"))?; if s.len() != \
                             {n} {{ return Err(::serde::Error::custom(\"wrong arity\")); }} \
                             Ok({name}::{v}({items})) }}",
                            items = items.join(", ")
                        ))
                    }
                    Fields::Named(fs) => {
                        let items: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::get_field(m, \
                                     \"{f}\")?)?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ let m = inner.as_map().ok_or_else(|| \
                             ::serde::Error::custom(\"expected map payload\"))?; Ok({name}::{v} \
                             {{ {items} }}) }}",
                            items = items.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit}\n\
                 other => Err(::serde::Error::custom(format!(\"unknown unit variant {{other}} \
                 for {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 match tag.as_str() {{\n\
                 {tagged}\n\
                 other => Err(::serde::Error::custom(format!(\"unknown variant {{other}} for \
                 {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => Err(::serde::Error::custom(\"expected enum representation for {name}\")),\n\
                 }}",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
