//! Offline stand-in for `parking_lot`: `Mutex` and `Condvar` with the
//! parking_lot API shape (no poisoning, `Condvar::wait(&mut guard)`),
//! implemented over `std::sync`.

use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutex whose `lock` returns the guard directly (no poison `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// RAII guard for [`Mutex`]. Wraps the std guard in an `Option` so
/// [`Condvar::wait`] can temporarily take ownership through `&mut`.
pub struct MutexGuard<'a, T>(Option<sync::MutexGuard<'a, T>>);

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable usable with [`MutexGuard`] by mutable reference.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Atomically release the guard's lock and wait for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already waiting");
        let inner = self.0.wait(inner).unwrap_or_else(sync::PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn wait_notify_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_all();
            drop(done);
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        h.join().unwrap();
    }
}
