//! Offline stand-in for `rand` providing `rngs::StdRng`, `SeedableRng`
//! and the `RngExt::random` sampling method this workspace uses. The
//! generator is splitmix64 — deterministic across platforms, which is all
//! the seeded-equivalence tests require.

pub mod rngs {
    /// The workspace's standard deterministic RNG (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

use rngs::StdRng;

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        StdRng { state: seed }
    }
}

/// Types samplable uniformly over their "standard" domain (`[0, 1)` for
/// floats, the full range for integers).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Standard for f32 {
    fn sample(rng: &mut StdRng) -> f32 {
        // 24 high bits → uniform in [0, 1) with full f32 precision.
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn sample(rng: &mut StdRng) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u32 {
    fn sample(rng: &mut StdRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Standard for u64 {
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Sampling methods on RNGs (the `rand 0.9` `Rng`/`random` surface).
pub trait RngExt {
    /// Sample a `T` from its standard distribution.
    fn random<T: Standard>(&mut self) -> T;
}

impl RngExt for StdRng {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

/// Alias matching the upstream trait name.
pub use RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let (x, y, z) = (a.random::<f32>(), b.random::<f32>(), c.random::<f32>());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f32 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
