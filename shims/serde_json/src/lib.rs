//! Offline stand-in for `serde_json`: renders the `serde` shim's value
//! tree as JSON text and parses it back. Covers `to_string`,
//! `to_string_pretty` and `from_str`, which is the surface this workspace
//! uses. Non-finite floats are emitted as bare `inf` / `-inf` / `NaN`
//! tokens (invalid strict JSON, but round-trippable by this parser).

use serde::{Deserialize, Error, Serialize, Value};

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_nan() {
                out.push_str("NaN");
            } else if f.is_infinite() {
                out.push_str(if *f > 0.0 { "inf" } else { "-inf" });
            } else {
                // `{:?}` is Rust's shortest round-trip float rendering.
                out.push_str(&format!("{f:?}"));
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::custom("invalid token"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::custom("invalid token"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom("invalid token"))
                }
            }
            Some(b'N') => {
                if self.eat_keyword("NaN") {
                    Ok(Value::F64(f64::NAN))
                } else {
                    Err(Error::custom("invalid token"))
                }
            }
            Some(b'i') => {
                if self.eat_keyword("inf") {
                    Ok(Value::F64(f64::INFINITY))
                } else {
                    Err(Error::custom("invalid token"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::custom("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::custom("expected `,` or `}`")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::custom)?);
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::custom("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a `\uXXXX` low surrogate
                                // must follow; combine the pair.
                                if self.bytes.get(self.pos..self.pos + 2) != Some(br"\u") {
                                    return Err(Error::custom("unpaired surrogate escape"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::custom("invalid low surrogate escape"));
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad unicode escape"))?,
                            );
                        }
                        _ => return Err(Error::custom("unknown escape")),
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::custom("bad \\u escape"))?;
        let code = u32::from_str_radix(std::str::from_utf8(hex).map_err(Error::custom)?, 16)
            .map_err(Error::custom)?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
            if self.eat_keyword("inf") {
                return Ok(Value::F64(f64::NEG_INFINITY));
            }
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::custom)?;
        if text.is_empty() || text == "-" {
            return Err(Error::custom(format!("invalid number at byte {start}")));
        }
        if is_float {
            text.parse::<f64>().map(Value::F64).map_err(Error::custom)
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::I64).map_err(Error::custom)
        } else {
            text.parse::<u64>().map(Value::U64).map_err(Error::custom)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(from_str::<i64>("-9223372036854775808").unwrap(), i64::MIN);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "\u{1F600}");
        assert_eq!(from_str::<String>(r#""\ud83d\ude00""#).unwrap(), "\u{1F600}");
        assert!(from_str::<String>(r#""\ud83d""#).is_err());
    }

    #[test]
    fn seq_and_map_roundtrip() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);

        let mut m = std::collections::HashMap::new();
        m.insert("k".to_string(), 9u64);
        let s = to_string(&m).unwrap();
        assert_eq!(from_str::<std::collections::HashMap<String, u64>>(&s).unwrap(), m);
    }

    #[test]
    fn float_shortest_roundtrip() {
        let x = 0.1f32;
        let s = to_string(&x).unwrap();
        assert_eq!(from_str::<f32>(&s).unwrap(), x);
    }

    #[test]
    fn pretty_is_parseable() {
        let v = vec![vec![1u32], vec![2, 3]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), v);
    }
}
