//! Offline stand-in for `serde` providing the subset this workspace uses:
//! the `Serialize` / `Deserialize` traits (value-tree based rather than
//! visitor based), derive macros re-exported from `serde_derive`, and a
//! self-describing [`Value`] tree that `serde_json` renders.
//!
//! The build environment has no registry access, so the workspace vendors
//! the handful of external APIs it needs. The derive macros accept the
//! same `#[derive(Serialize, Deserialize)]` surface as real serde for
//! plain structs and enums (no generics, no `#[serde(...)]` renames), and
//! round-tripping through `serde_json` is lossless for every type in this
//! repository — which is exactly what the property tests check.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized tree: the common currency between the
/// `Serialize`/`Deserialize` traits and the `serde_json` front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / Rust `Option::None` or `()`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (negative numbers).
    I64(i64),
    /// Unsigned integer (non-negative numbers).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (JSON array).
    Seq(Vec<Value>),
    /// Ordered map with string keys (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as a map, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view widened to `i128` (covers the full `u64`+`i64` range).
    pub fn as_int(&self) -> Option<i128> {
        match *self {
            Value::I64(v) => Some(v as i128),
            Value::U64(v) => Some(v as i128),
            _ => None,
        }
    }

    /// Numeric view as `f64` (integers widen losslessly enough for f32/f64
    /// fields in this workspace).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Look up a required struct field in a serialized map.
pub fn get_field<'a>(map: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_int().ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::I64(v) } else { Value::U64(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_int().ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::custom("expected f32"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::custom("expected null")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::custom("expected tuple sequence"))?;
                let mut it = s.iter();
                let out = ($(
                    {
                        let _ = $n;
                        $t::from_value(it.next().ok_or_else(|| Error::custom("tuple too short"))?)?
                    },
                )+);
                if it.next().is_some() {
                    return Err(Error::custom("tuple too long"));
                }
                Ok(out)
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Map keys: types usable as JSON object keys.
pub trait MapKey: Sized {
    /// Render the key as a string.
    fn to_key(&self) -> String;
    /// Parse the key back from a string.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_owned())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(Error::custom)
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort entries for a stable rendering.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}
impl<K: MapKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}
impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        let v = Some(3u32).to_value();
        assert_eq!(Option::<u32>::from_value(&v).unwrap(), Some(3));
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn negative_int_roundtrip() {
        let v = (-5i32).to_value();
        assert_eq!(i32::from_value(&v).unwrap(), -5);
    }

    #[test]
    fn hashmap_sorted_rendering() {
        let mut m = HashMap::new();
        m.insert(10u32, 1u32);
        m.insert(2u32, 2u32);
        let v = m.to_value();
        let keys: Vec<&str> = v.as_map().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["10", "2"]);
        assert_eq!(HashMap::<u32, u32>::from_value(&v).unwrap(), m);
    }
}
