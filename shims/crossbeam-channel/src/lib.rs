//! Offline stand-in for `crossbeam-channel`: an unbounded MPMC channel
//! over `Mutex<VecDeque>` + `Condvar`. Senders and receivers are `Clone`,
//! `Send` and `Sync`; `recv` blocks and errors once every sender is gone
//! and the queue is drained — the semantics the runtime's mailbox relies
//! on.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

struct Shared<T> {
    queue: Mutex<State<T>>,
    ready: Condvar,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
}

/// Error returned by [`Receiver::recv`] when the channel is closed empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty.
    Empty,
    /// Channel closed and drained.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the deadline.
    Timeout,
    /// Channel closed and drained.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Error returned by [`Sender::send`] when all receivers are gone. The
/// shim never reports this (dropping receivers simply discards messages),
/// but the type keeps call sites source-compatible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// The sending half.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(State { queue: VecDeque::new(), senders: 1 }),
        ready: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Enqueue a message; never blocks.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        state.queue.push_back(value);
        drop(state);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        let mut state = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        state.senders += 1;
        drop(state);
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        state.senders -= 1;
        let none_left = state.senders == 0;
        drop(state);
        if none_left {
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocking receive; errors when the channel is closed and drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(v) = state.queue.pop_front() {
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.ready.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocking receive with a deadline; errors on timeout or when the
    /// channel is closed and drained.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(v) = state.queue.pop_front() {
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, timed_out) = self
                .shared
                .ready
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
            if timed_out.timed_out() && state.queue.is_empty() {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        match state.queue.pop_front() {
            Some(v) => Ok(v),
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner).queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn disconnect_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(5)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cross_thread_blocking_recv() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(42u32).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }
}
