//! Data-parallel gradient exchange.
//!
//! [`AllreduceHub`] is the runtime's collective: every pipeline replica
//! contributes its per-stage gradient sum at the flush, and each receives
//! the total. Contributions are combined **in replica-rank order** once all
//! have arrived, so the reduced value is bit-identical no matter which
//! thread arrives first — the same determinism discipline as the
//! per-micro-batch slots inside a worker.

use hanayo_tensor::StageGrads;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

struct Slot {
    contributions: Vec<Option<StageGrads>>,
    arrived: usize,
    reduced: Option<StageGrads>,
    taken: usize,
}

/// A shared-memory all-reduce rendezvous for `world` pipeline replicas.
pub struct AllreduceHub {
    world: usize,
    state: Mutex<HashMap<(u32, u32), Slot>>,
    cv: Condvar,
    aborted: AtomicBool,
}

impl AllreduceHub {
    /// Create a hub for `world` replicas.
    pub fn new(world: usize) -> AllreduceHub {
        AllreduceHub {
            world,
            state: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            aborted: AtomicBool::new(false),
        }
    }

    /// Number of replicas.
    pub fn world(&self) -> usize {
        self.world
    }

    /// Cancel the collective: wake every blocked replica and make all
    /// current and future [`AllreduceHub::try_allreduce`] calls return
    /// `None`. Called when a worker fails so the surviving replicas unwind
    /// instead of waiting for a contribution that will never come.
    pub fn abort(&self) {
        // The store happens under the lock so a replica cannot check the
        // flag, miss it, and then sleep past the notify.
        let _state = self.state.lock();
        self.aborted.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    /// Has the collective been cancelled?
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    /// Contribute `grads` for `(iter, stage)` as replica `rank`; blocks
    /// until all replicas contributed and returns the rank-ordered sum,
    /// or `None` if the collective was aborted.
    pub fn try_allreduce(
        &self,
        iter: u32,
        stage: u32,
        rank: usize,
        grads: StageGrads,
    ) -> Option<StageGrads> {
        assert!(rank < self.world, "rank out of range");
        let key = (iter, stage);
        let mut state = self.state.lock();
        if self.is_aborted() {
            return None;
        }
        let slot = state.entry(key).or_insert_with(|| Slot {
            contributions: vec![None; self.world],
            arrived: 0,
            reduced: None,
            taken: 0,
        });
        assert!(slot.contributions[rank].is_none(), "duplicate contribution");
        slot.contributions[rank] = Some(grads);
        slot.arrived += 1;
        if slot.arrived == self.world {
            // Reduce in rank order for bitwise determinism. Every
            // contribution is present (`arrived == world`, and `world >= 1`
            // by construction), so the drain yields exactly `world` values;
            // an impossible empty drain reads as an abort rather than a
            // panic inside the lock.
            let mut drained = slot.contributions.iter_mut().filter_map(Option::take);
            let mut total = drained.next()?;
            for c in drained {
                total.accumulate(&c);
            }
            slot.reduced = Some(total);
            self.cv.notify_all();
        } else {
            while state.get(&key).is_none_or(|s| s.reduced.is_none()) {
                if self.is_aborted() {
                    return None;
                }
                self.cv.wait(&mut state);
            }
        }
        if self.is_aborted() {
            return None;
        }
        // The slot and its reduced value are guaranteed here (either this
        // rank reduced above, or the wait loop saw `reduced` set under the
        // same lock); losing either reads as an abort rather than a panic.
        let slot = state.get_mut(&key)?;
        let out = slot.reduced.clone()?;
        slot.taken += 1;
        if slot.taken == self.world {
            state.remove(&key);
        }
        Some(out)
    }

    /// [`AllreduceHub::try_allreduce`] for contexts where abort cannot
    /// happen; panics if it does.
    pub fn allreduce(&self, iter: u32, stage: u32, rank: usize, grads: StageGrads) -> StageGrads {
        self.try_allreduce(iter, stage, rank, grads).expect("all-reduce aborted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanayo_tensor::rng::seeded;
    use hanayo_tensor::Stage;
    use std::sync::Arc;

    fn grads_scaled(stage: &Stage, alpha: f32) -> StageGrads {
        // A deterministic non-zero gradient: run one forward/backward.
        let x = hanayo_tensor::rng::uniform(&mut seeded(3), 2, 6, 0.5);
        let (_, stash) = stage.forward(&x);
        let dy = hanayo_tensor::rng::uniform(&mut seeded(4), 2, 6, 0.5);
        let (_, mut g) = stage.backward(&stash, &dy);
        g.scale(alpha);
        g
    }

    #[test]
    fn sums_across_ranks() {
        let stage = Stage::mlp(&mut seeded(1), 6, 1);
        let hub = Arc::new(AllreduceHub::new(3));
        let handles: Vec<_> = (0..3)
            .map(|rank| {
                let hub = Arc::clone(&hub);
                let stage = stage.clone();
                std::thread::spawn(move || {
                    hub.allreduce(0, 0, rank, grads_scaled(&stage, (rank + 1) as f32))
                })
            })
            .collect();
        let results: Vec<StageGrads> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // All ranks see the same sum: 1x + 2x + 3x = 6x.
        let mut expect = grads_scaled(&stage, 1.0);
        expect.scale(6.0);
        for r in &results {
            let diff = r
                .flat()
                .iter()
                .zip(expect.flat())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(diff < 1e-5, "diff {diff}");
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn reduction_is_rank_ordered_and_deterministic() {
        let stage = Stage::mlp(&mut seeded(2), 6, 1);
        let run = || {
            let hub = Arc::new(AllreduceHub::new(4));
            let handles: Vec<_> = (0..4)
                .map(|rank| {
                    let hub = Arc::clone(&hub);
                    let stage = stage.clone();
                    std::thread::spawn(move || {
                        // Scramble arrival order.
                        std::thread::sleep(std::time::Duration::from_millis(
                            ((rank * 7) % 4) as u64,
                        ));
                        hub.allreduce(0, 0, rank, grads_scaled(&stage, 0.1 + rank as f32))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap().flat()).next().unwrap()
        };
        assert_eq!(run(), run(), "arrival order must not change the bits");
    }

    #[test]
    fn abort_wakes_blocked_replicas() {
        let stage = Stage::mlp(&mut seeded(6), 6, 1);
        let hub = Arc::new(AllreduceHub::new(2));
        let waiter = {
            let hub = Arc::clone(&hub);
            let g = grads_scaled(&stage, 1.0);
            // Rank 0 contributes; rank 1 never will.
            std::thread::spawn(move || hub.try_allreduce(0, 0, 0, g))
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        hub.abort();
        assert_eq!(waiter.join().unwrap(), None, "blocked replica must wake on abort");
        // Late arrivals bail immediately.
        assert!(hub.try_allreduce(0, 0, 1, grads_scaled(&stage, 1.0)).is_none());
    }

    #[test]
    fn iterations_and_stages_are_independent_slots() {
        let stage = Stage::mlp(&mut seeded(5), 6, 1);
        let hub = Arc::new(AllreduceHub::new(2));
        let g = grads_scaled(&stage, 1.0);
        let h = {
            let hub = Arc::clone(&hub);
            let g = g.clone();
            std::thread::spawn(move || {
                let a = hub.allreduce(0, 0, 1, g.clone());
                let b = hub.allreduce(1, 0, 1, g.clone());
                let c = hub.allreduce(0, 5, 1, g);
                (a, b, c)
            })
        };
        let a0 = hub.allreduce(0, 0, 0, g.clone());
        let b0 = hub.allreduce(1, 0, 0, g.clone());
        let c0 = hub.allreduce(0, 5, 0, g);
        let (a1, b1, c1) = h.join().unwrap();
        assert_eq!(a0, a1);
        assert_eq!(b0, b1);
        assert_eq!(c0, c1);
    }
}
