//! # hanayo-runtime
//!
//! The real execution engine: the paper's §4 runtime, with OS threads as
//! devices and channels as the interconnect.
//!
//! Every worker interprets the *same* frozen action lists that the
//! discrete-event simulator times — but here the instructions move actual
//! `hanayo_tensor` tensors through actual forward/backward math. This is
//! the correctness half of the reproduction: for any synchronous schedule,
//! one training iteration must produce gradients and updated weights that
//! are **bit-identical** to sequential execution of the same model
//! (per-micro-batch gradients are stored in slots and reduced in a fixed
//! order at the flush, so floating-point non-associativity cannot leak
//! schedule order into the result).
//!
//! Pieces:
//!
//! * [`mailbox`] — tag-matching P2P fabric over crossbeam channels
//!   (asynchronous sends, blocking receives: NCCL's semantics).
//! * [`worker`] — the action-list interpreter (§4.1) with per-micro-batch
//!   gradient slots and an instrumented activation-stash live-bytes
//!   counter. The stash policy is the executable
//!   [`hanayo_model::Recompute`] mode: under `Full` each stage keeps only
//!   its input boundary tensor and replays the forward inside the
//!   backward — gradients stay bit-identical while the measured peak
//!   drops to the 1F1B boundary budget.
//! * [`trainer`] — spawns one thread per device, feeds micro-batches,
//!   runs iterations, collects losses and peak-stash statistics.
//! * [`collective`] — the data-parallel gradient exchange used when a plan
//!   runs several pipeline replicas (and by the Chimera-wave form).

//! * **Fault tolerance** — [`trainer::try_train_resumable`] executes the
//!   [`hanayo_ckpt::CheckpointPolicy`] (durable checkpoint every `k`
//!   iterations) and the [`hanayo_ckpt::FailurePlan`] injection hook; a
//!   crashed run hands back its last durable checkpoint, and
//!   [`trainer::resume`] drives the remaining iterations to losses,
//!   weights and peaks **bitwise equal** to an uninterrupted run.

pub mod collective;
pub mod mailbox;
pub mod trainer;
pub mod worker;

pub use hanayo_ckpt::{Checkpoint, CheckpointPolicy, FailurePlan};
pub use hanayo_model::Recompute;
pub use trainer::{
    checkpoint_of, fingerprint_of, resume, resume_data_parallel, train, train_data_parallel,
    try_train, try_train_data_parallel, try_train_data_parallel_resumable, try_train_resumable,
    FailedRun, LossKind, ResumeError, TrainError, TrainOutput, TrainerConfig,
};
pub use worker::WorkerError;
