//! The action-list interpreter: one instance runs per device thread.
//!
//! A worker owns the local modules its device's stages map to, an
//! activation stash per in-flight micro-batch, and one gradient slot per
//! `(stage, micro-batch)`. The flush (`OptimizerStep`) reduces slots in
//! micro-batch order — the key to bit-exact equivalence across schedules —
//! optionally exchanges sums with data-parallel peers, and applies SGD.

use crate::collective::AllreduceHub;
use crate::mailbox::{Envelope, Fabric, Mailbox};
use hanayo_core::action::{Action, CommDir, MsgTag, Payload, Schedule};
use hanayo_core::ids::{DeviceId, MicroBatch, StageId};
use hanayo_tensor::loss::{mse, softmax_cross_entropy};
use hanayo_tensor::{Stage, StageGrads, StageStash, Tensor};
use std::collections::HashMap;
use std::sync::Arc;

/// Loss functions the last pipeline stage can apply.
#[derive(Debug, Clone)]
pub enum LossKind {
    /// Mean-squared error against per-micro-batch target tensors.
    Mse,
    /// Softmax cross-entropy against per-micro-batch label vectors.
    CrossEntropy {
        /// `labels[mb][row]` is the class of that row.
        labels: Vec<Vec<usize>>,
    },
}

/// One iteration's worth of pipeline input.
#[derive(Debug, Clone)]
pub struct IterationData {
    /// One input tensor per micro-batch (consumed by stage 0).
    pub inputs: Vec<Tensor>,
    /// One target tensor per micro-batch (consumed by the last stage).
    pub targets: Vec<Tensor>,
}

/// Everything a worker thread needs.
pub struct WorkerConfig {
    /// This worker's rank.
    pub device: DeviceId,
    /// The full schedule (workers read their own list plus the stage map).
    pub schedule: Arc<Schedule>,
    /// Modules for the stages this device hosts, keyed by global stage id.
    pub modules: HashMap<u32, Stage>,
    /// Per-iteration inputs/targets (shared; only the edge devices read it).
    pub data: Arc<Vec<IterationData>>,
    /// Loss applied at the last stage.
    pub loss: LossKind,
    /// SGD learning rate.
    pub lr: f32,
    /// Data-parallel exchange (rank, hub) when training replicated.
    pub dp: Option<(usize, Arc<AllreduceHub>)>,
}

/// What a worker hands back when the run finishes.
pub struct WorkerReport {
    /// This worker's rank.
    pub device: DeviceId,
    /// Updated modules (same keys as the config's).
    pub modules: HashMap<u32, Stage>,
    /// Mean loss per iteration (non-empty only on the last-stage holder).
    pub losses: Vec<f32>,
    /// High-water mark of resident activation-stash bytes.
    pub peak_stash_bytes: usize,
}

/// Interpret the device's action list for `data.len()` iterations.
pub fn run_worker(mut cfg: WorkerConfig, mut mailbox: Mailbox, fabric: Fabric) -> WorkerReport {
    let schedule = Arc::clone(&cfg.schedule);
    let device = cfg.device;
    let stages = schedule.stage_map.stages;
    let micro_batches = schedule.config.micro_batches;
    let actions = &schedule.lists[device.idx()].actions;

    let mut losses = Vec::new();
    let mut peak_stash = 0usize;
    let mut cur_stash = 0usize;

    for (iter, data) in cfg.data.iter().enumerate() {
        let iter = iter as u32;
        assert_eq!(data.inputs.len(), micro_batches as usize, "inputs per micro-batch");
        // In-flight state for this iteration.
        let mut local: HashMap<MsgTag, Tensor> = HashMap::new();
        let mut outbound: HashMap<MsgTag, Tensor> = HashMap::new();
        let mut stash: HashMap<(u32, u32), StageStash> = HashMap::new();
        let mut slots: HashMap<u32, Vec<Option<StageGrads>>> =
            cfg.modules.keys().map(|&s| (s, vec![None; micro_batches as usize])).collect();
        let mut iter_loss = 0.0f32;

        for action in actions {
            match action {
                Action::Forward { mb, stage } => {
                    let x = if stage.0 == 0 {
                        data.inputs[mb.idx()].clone()
                    } else {
                        let tag = MsgTag { mb: *mb, stage: *stage, payload: Payload::Activation };
                        local.remove(&tag).unwrap_or_else(|| panic!("missing input {tag}"))
                    };
                    let module = cfg.modules.get(&stage.0).expect("module present");
                    let (y, st) = module.forward(&x);
                    cur_stash += st.bytes();
                    peak_stash = peak_stash.max(cur_stash);
                    stash.insert((mb.0, stage.0), st);
                    if stage.0 + 1 == stages {
                        // Turnaround: loss + gradient, consumed by this
                        // stage's backward under its gradient tag.
                        let (l, dy) = apply_loss(&cfg.loss, &y, data, *mb);
                        iter_loss += l;
                        let tag = MsgTag { mb: *mb, stage: *stage, payload: Payload::Gradient };
                        local.insert(tag, dy);
                    } else {
                        let tag = MsgTag {
                            mb: *mb,
                            stage: StageId(stage.0 + 1),
                            payload: Payload::Activation,
                        };
                        route(&schedule, device, tag, y, &mut local, &mut outbound);
                    }
                }
                Action::Backward { mb, stage } => {
                    let tag = MsgTag { mb: *mb, stage: *stage, payload: Payload::Gradient };
                    let dy = local.remove(&tag).unwrap_or_else(|| panic!("missing gradient {tag}"));
                    let st = stash
                        .remove(&(mb.0, stage.0))
                        .unwrap_or_else(|| panic!("missing stash for {mb} {stage}"));
                    cur_stash -= st.bytes();
                    let module = cfg.modules.get(&stage.0).expect("module present");
                    let (dx, grads) = module.backward(&st, &dy);
                    slots.get_mut(&stage.0).expect("slot row")[mb.idx()] = Some(grads);
                    if stage.0 > 0 {
                        let tag = MsgTag {
                            mb: *mb,
                            stage: StageId(stage.0 - 1),
                            payload: Payload::Gradient,
                        };
                        route(&schedule, device, tag, dx, &mut local, &mut outbound);
                    }
                }
                Action::Comm(op) => match op.dir {
                    CommDir::Send => {
                        let tensor = outbound
                            .remove(&op.tag)
                            .unwrap_or_else(|| panic!("nothing outbound for {}", op.tag));
                        fabric.send(op.peer.idx(), Envelope { iter, tag: op.tag, tensor });
                    }
                    CommDir::Recv => {
                        let tensor = mailbox.recv(iter, op.tag);
                        local.insert(op.tag, tensor);
                    }
                },
                Action::BatchedComm(ops) => {
                    // Post all sends first (non-blocking), then drain the
                    // receives — the deadlock-free batch_isend_irecv order.
                    for op in ops.iter().filter(|o| o.dir == CommDir::Send) {
                        let tensor = outbound
                            .remove(&op.tag)
                            .unwrap_or_else(|| panic!("nothing outbound for {}", op.tag));
                        fabric.send(op.peer.idx(), Envelope { iter, tag: op.tag, tensor });
                    }
                    for op in ops.iter().filter(|o| o.dir == CommDir::Recv) {
                        let tensor = mailbox.recv(iter, op.tag);
                        local.insert(op.tag, tensor);
                    }
                }
                Action::OptimizerStep => {
                    let mut stage_ids: Vec<u32> = cfg.modules.keys().copied().collect();
                    stage_ids.sort_unstable();
                    for s in stage_ids {
                        let module = cfg.modules.get_mut(&s).expect("module present");
                        let mut total = module.zero_grads();
                        for slot in slots.get_mut(&s).expect("slot row") {
                            let g = slot.take().unwrap_or_else(|| {
                                panic!("stage {s} missing a micro-batch gradient")
                            });
                            total.accumulate(&g);
                        }
                        if let Some((rank, hub)) = &cfg.dp {
                            total = hub.allreduce(iter, s, *rank, total);
                        }
                        module.sgd_step(&total, cfg.lr);
                    }
                }
            }
        }

        assert!(stash.is_empty(), "{device}: stash not drained");
        assert!(outbound.is_empty(), "{device}: unsent outbound messages");
        if holds_last_stage(&schedule, device) {
            losses.push(iter_loss / micro_batches as f32);
        }
    }

    WorkerReport {
        device,
        modules: std::mem::take(&mut cfg.modules),
        losses,
        peak_stash_bytes: peak_stash,
    }
}

/// Deliver a produced tensor: keep it local when the consumer stage lives
/// on this device, otherwise park it for the upcoming `Send` action.
fn route(
    schedule: &Schedule,
    device: DeviceId,
    tag: MsgTag,
    tensor: Tensor,
    local: &mut HashMap<MsgTag, Tensor>,
    outbound: &mut HashMap<MsgTag, Tensor>,
) {
    if schedule.stage_map.device_of(tag.mb, tag.stage) == device {
        local.insert(tag, tensor);
    } else {
        outbound.insert(tag, tensor);
    }
}

fn apply_loss(loss: &LossKind, y: &Tensor, data: &IterationData, mb: MicroBatch) -> (f32, Tensor) {
    match loss {
        LossKind::Mse => mse(y, &data.targets[mb.idx()]),
        LossKind::CrossEntropy { labels } => softmax_cross_entropy(y, &labels[mb.idx()]),
    }
}

fn holds_last_stage(schedule: &Schedule, device: DeviceId) -> bool {
    let last = StageId(schedule.stage_map.stages - 1);
    schedule.stage_map.device_of(MicroBatch(0), last) == device
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_kinds_apply() {
        let data = IterationData {
            inputs: vec![Tensor::zeros(1, 2)],
            targets: vec![Tensor::from_vec(1, 2, vec![1.0, 0.0])],
        };
        let y = Tensor::from_vec(1, 2, vec![1.0, 0.0]);
        let (l, _) = apply_loss(&LossKind::Mse, &y, &data, MicroBatch(0));
        assert_eq!(l, 0.0);
        let (l2, _) =
            apply_loss(&LossKind::CrossEntropy { labels: vec![vec![0]] }, &y, &data, MicroBatch(0));
        assert!(l2 > 0.0);
    }
}
