//! The action-list interpreter: one instance runs per device thread.
//!
//! A worker owns the local modules its device's stages map to, an
//! activation stash per in-flight micro-batch, and one gradient slot per
//! `(stage, micro-batch)`. The flush (`OptimizerStep`) reduces slots in
//! micro-batch order — the key to bit-exact equivalence across schedules —
//! optionally exchanges sums with data-parallel peers, and applies SGD.
//!
//! Invariant violations (a forward with no input, a backward with no
//! gradient or stash — the signature of a corrupt schedule) do **not**
//! panic the thread: they become a typed [`WorkerError`] carried home in
//! the [`WorkerReport`], the shared [`AbortFlag`] trips so blocked peers
//! unwind instead of deadlocking, and the trainer reports exactly which
//! device and operation failed.

use crate::collective::AllreduceHub;
use crate::mailbox::{AbortFlag, Envelope, Fabric, Mailbox};
use hanayo_ckpt::FailurePlan;
use hanayo_core::action::{Action, CommDir, MsgTag, Payload, Schedule};
use hanayo_core::ids::{DeviceId, MicroBatch, StageId};
use hanayo_model::Recompute;
use hanayo_tensor::loss::{mse, softmax_cross_entropy};
use hanayo_tensor::{Stage, StageGrads, StageStash, Tensor};
use hanayo_trace::{TraceEvent, TraceKind};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Loss functions the last pipeline stage can apply.
#[derive(Debug, Clone)]
pub enum LossKind {
    /// Mean-squared error against per-micro-batch target tensors.
    Mse,
    /// Softmax cross-entropy against per-micro-batch label vectors.
    CrossEntropy {
        /// `labels[mb][row]` is the class of that row.
        labels: Vec<Vec<usize>>,
    },
}

impl LossKind {
    /// What the checkpoint config fingerprint hashes: the kind *and* any
    /// payload that changes the math. Cross-entropy labels are targets —
    /// resuming under different labels would be a different program, so
    /// they must move the fingerprint.
    pub fn fingerprint_token(&self) -> String {
        match self {
            LossKind::Mse => "mse".to_string(),
            LossKind::CrossEntropy { labels } => format!("cross_entropy:{labels:?}"),
        }
    }
}

/// What a worker keeps resident between a stage's forward and its
/// backward, per `(micro-batch, stage)` — the executable form of the
/// [`Recompute`] policy.
#[derive(Debug, Clone)]
enum Stashed {
    /// Every internal activation ([`Recompute::None`]): backward consumes
    /// the stash directly.
    Activations(StageStash),
    /// Only the stage-input boundary tensor ([`Recompute::Full`]): the
    /// backward replays the stage forward to regenerate the stash. The
    /// replay is deterministic — stage forwards are pure functions of the
    /// input and the (frozen-until-flush) weights, and all randomness in a
    /// run lives in the pinned `hanayo_tensor::rng::seeded` init/data
    /// streams — so gradients stay bit-identical to [`Recompute::None`].
    Boundary(Tensor),
}

impl Stashed {
    /// Resident bytes of this stash entry, the quantity the per-device
    /// live-bytes counter tracks.
    ///
    /// Scope: the counter accounts what stays resident *across* actions.
    /// The full stage stash the backward-time replay regenerates under
    /// `Full` is transient workspace inside one backward — symmetric with
    /// the forward's own input-plus-stash workspace, which is equally
    /// uncounted under `None` — bounded by a single micro-batch's stash on
    /// one stage. The simulator and unit replay account the same resident
    /// quantity, which is what keeps the three memory models exactly
    /// comparable.
    fn bytes(&self) -> usize {
        match self {
            Stashed::Activations(st) => st.bytes(),
            Stashed::Boundary(x) => 4 * x.len(),
        }
    }
}

/// One iteration's worth of pipeline input.
#[derive(Debug, Clone)]
pub struct IterationData {
    /// One input tensor per micro-batch (consumed by stage 0).
    pub inputs: Vec<Tensor>,
    /// One target tensor per micro-batch (consumed by the last stage).
    pub targets: Vec<Tensor>,
}

/// A worker-side invariant violation, with enough context to name the
/// device and operation that failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerError {
    /// A forward found no input activation under its tag.
    MissingInput {
        /// Failing device.
        device: DeviceId,
        /// The absent message.
        tag: MsgTag,
    },
    /// A backward found no output gradient under its tag.
    MissingGradient {
        /// Failing device.
        device: DeviceId,
        /// The absent message.
        tag: MsgTag,
    },
    /// A backward found no stashed forward activation.
    MissingStash {
        /// Failing device.
        device: DeviceId,
        /// Micro-batch of the absent stash.
        mb: MicroBatch,
        /// Stage of the absent stash.
        stage: StageId,
    },
    /// An action named a stage this device holds no module for.
    MissingModule {
        /// Failing device.
        device: DeviceId,
        /// The unknown stage.
        stage: StageId,
    },
    /// A send had nothing parked outbound under its tag.
    MissingOutbound {
        /// Failing device.
        device: DeviceId,
        /// The absent message.
        tag: MsgTag,
    },
    /// The flush found an unfilled micro-batch gradient slot.
    MissingSlotGradient {
        /// Failing device.
        device: DeviceId,
        /// Stage whose slot row is incomplete.
        stage: StageId,
    },
    /// Activation stashes survived the iteration (schedule never consumed
    /// them).
    StashNotDrained {
        /// Failing device.
        device: DeviceId,
        /// Leftover stash count.
        remaining: usize,
    },
    /// Produced messages were never sent.
    UnsentOutbound {
        /// Failing device.
        device: DeviceId,
        /// Leftover message count.
        remaining: usize,
    },
    /// The worker stopped because a peer failed first (cascade, not root
    /// cause).
    Aborted {
        /// The device that unwound.
        device: DeviceId,
    },
    /// An injected fault killed this device ([`FailurePlan::KillDevice`]).
    Injected {
        /// The killed device (local rank).
        device: DeviceId,
        /// Global iteration at which the device died.
        iteration: u32,
    },
    /// An injected fault took this worker's outbound link down
    /// ([`FailurePlan::DropLink`]).
    LinkDown {
        /// The sending device (local rank).
        device: DeviceId,
        /// The unreachable peer (local rank).
        peer: DeviceId,
        /// Global iteration at which the send hit the dead link.
        iteration: u32,
    },
    /// The worker thread panicked (a bug below the typed-error layer —
    /// e.g. a shape assert in the math kernels). Caught on the worker
    /// thread so the trainer reports *which* device died instead of
    /// propagating a poisoned join.
    Panicked {
        /// The device whose thread panicked.
        device: DeviceId,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl WorkerError {
    /// The device the error occurred on.
    pub fn device(&self) -> DeviceId {
        match *self {
            WorkerError::MissingInput { device, .. }
            | WorkerError::MissingGradient { device, .. }
            | WorkerError::MissingStash { device, .. }
            | WorkerError::MissingModule { device, .. }
            | WorkerError::MissingOutbound { device, .. }
            | WorkerError::MissingSlotGradient { device, .. }
            | WorkerError::StashNotDrained { device, .. }
            | WorkerError::UnsentOutbound { device, .. }
            | WorkerError::Aborted { device }
            | WorkerError::Injected { device, .. }
            | WorkerError::LinkDown { device, .. }
            | WorkerError::Panicked { device, .. } => device,
        }
    }

    /// Is this a cascade (peer failed first) rather than a root cause?
    pub fn is_cascade(&self) -> bool {
        matches!(self, WorkerError::Aborted { .. })
    }
}

impl fmt::Display for WorkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerError::MissingInput { device, tag } => {
                write!(f, "{device}: forward found no input {tag}")
            }
            WorkerError::MissingGradient { device, tag } => {
                write!(f, "{device}: backward found no gradient {tag}")
            }
            WorkerError::MissingStash { device, mb, stage } => {
                write!(f, "{device}: backward found no stash for {mb} {stage}")
            }
            WorkerError::MissingModule { device, stage } => {
                write!(f, "{device}: no local module for {stage}")
            }
            WorkerError::MissingOutbound { device, tag } => {
                write!(f, "{device}: nothing outbound for {tag}")
            }
            WorkerError::MissingSlotGradient { device, stage } => {
                write!(f, "{device}: {stage} missing a micro-batch gradient at the flush")
            }
            WorkerError::StashNotDrained { device, remaining } => {
                write!(f, "{device}: {remaining} activation stash(es) never consumed")
            }
            WorkerError::UnsentOutbound { device, remaining } => {
                write!(f, "{device}: {remaining} outbound message(s) never sent")
            }
            WorkerError::Aborted { device } => {
                write!(f, "{device}: aborted after a peer failure")
            }
            WorkerError::Injected { device, iteration } => {
                write!(f, "{device}: killed by the failure plan at iteration {iteration}")
            }
            WorkerError::LinkDown { device, peer, iteration } => {
                write!(f, "{device}: link to {peer} down (failure plan, iteration {iteration})")
            }
            WorkerError::Panicked { device, message } => {
                write!(f, "{device}: worker thread panicked: {message}")
            }
        }
    }
}

impl std::error::Error for WorkerError {}

/// Everything a worker thread needs.
pub struct WorkerConfig {
    /// This worker's rank.
    pub device: DeviceId,
    /// The full schedule (workers read their own list plus the stage map).
    pub schedule: Arc<Schedule>,
    /// Modules for the stages this device hosts, keyed by global stage id.
    pub modules: HashMap<u32, Stage>,
    /// Per-iteration inputs/targets (shared; only the edge devices read it).
    pub data: Arc<Vec<IterationData>>,
    /// Loss applied at the last stage.
    pub loss: LossKind,
    /// SGD learning rate.
    pub lr: f32,
    /// Data-parallel exchange (rank, hub) when training replicated.
    pub dp: Option<(usize, Arc<AllreduceHub>)>,
    /// Activation stash policy: keep everything, or keep only the stage
    /// input and replay the forward inside the backward.
    pub recompute: Recompute,
    /// Run-wide cancellation latch (shared with every peer worker).
    pub abort: Arc<AbortFlag>,
    /// Deterministic fault to inject (device indices are global ranks;
    /// see [`FailurePlan`]). Injected faults fail through the same typed
    /// error + abort path a real invariant violation would take.
    pub failure: FailurePlan,
    /// Global index of this run segment's first iteration: resumed (or
    /// chunked) runs execute `data[0..]` as global iterations
    /// `iter_base..`, and the failure plan is expressed in global
    /// iterations.
    pub iter_base: u32,
    /// Record an [`Instant`]-based [`TraceEvent`] span around every op
    /// (forward, backward + checkpointing replay, send, receive,
    /// all-reduce, optimizer step). Off by default: the untraced path
    /// takes no clock readings at all.
    pub trace: bool,
    /// Clock origin shared by every worker of the run (and, for
    /// data-parallel runs, every replica), so span timestamps land on one
    /// common axis.
    pub origin: Instant,
}

/// Deterministic per-run op tallies, flushed to the metrics registry in
/// one batch when the worker finishes. Plain local `u64`s during the run
/// (a handful of adds per op, never read back), so observation cannot
/// perturb the computation.
#[derive(Debug, Default, Clone, Copy)]
struct WorkerStats {
    forward: u64,
    backward: u64,
    send: u64,
    recv: u64,
    optim: u64,
    allreduce: u64,
}

impl WorkerStats {
    /// Flush counters and peak gauges for `device`. No-op unless the
    /// registry is enabled.
    fn flush(&self, device: DeviceId, peak_stash: usize, peak_parked: usize) {
        if !hanayo_metrics::enabled() {
            return;
        }
        let dev = device.0.to_string();
        for (kind, n) in [
            ("forward", self.forward),
            ("backward", self.backward),
            ("send", self.send),
            ("recv", self.recv),
            ("optim", self.optim),
        ] {
            if n > 0 {
                hanayo_metrics::counter_add(
                    "hanayo_worker_ops_total",
                    &[("device", dev.as_str()), ("kind", kind)],
                    n,
                );
            }
        }
        if self.allreduce > 0 {
            hanayo_metrics::counter_add(
                "hanayo_worker_allreduce_total",
                &[("device", dev.as_str())],
                self.allreduce,
            );
        }
        let labels: &[(&'static str, &str)] = &[("device", dev.as_str())];
        hanayo_metrics::gauge_set("hanayo_worker_stash_bytes_peak", labels, peak_stash as f64);
        hanayo_metrics::gauge_set("hanayo_worker_mailbox_parked_peak", labels, peak_parked as f64);
    }
}

/// What a worker hands back when the run finishes.
pub struct WorkerReport {
    /// This worker's rank.
    pub device: DeviceId,
    /// Updated modules (same keys as the config's).
    pub modules: HashMap<u32, Stage>,
    /// Mean loss per iteration (non-empty only on the last-stage holder).
    pub losses: Vec<f32>,
    /// High-water mark of the instrumented live-bytes counter: every stash
    /// insert adds its resident bytes, every backward's consume subtracts
    /// them, and the peak is recorded at each growth. Under
    /// [`Recompute::Full`] only boundary tensors are ever resident, so this
    /// is where checkpointing's memory win becomes *measured* rather than
    /// modelled (the memory-truth suite pins it against the simulator).
    pub peak_stash_bytes: usize,
    /// High-water mark of this device's mailbox parked map — how many
    /// early messages were simultaneously waiting for their receive to be
    /// issued. A deep peak marks a consumer running far behind its
    /// producers (worker imbalance) without needing a full trace.
    pub peak_mailbox_parked: usize,
    /// Measured spans, when the config asked for tracing (empty
    /// otherwise, and best-effort-partial when the worker stopped on an
    /// error). The trainer merges all devices' events into the run's
    /// [`hanayo_trace::Trace`].
    pub events: Vec<TraceEvent>,
    /// The invariant violation that stopped this worker, if any.
    pub error: Option<WorkerError>,
}

/// Interpret the device's action list for `data.len()` iterations.
pub fn run_worker(mut cfg: WorkerConfig, mut mailbox: Mailbox, fabric: Fabric) -> WorkerReport {
    let device = cfg.device;
    let mut losses = Vec::new();
    let mut peak_stash = 0usize;
    let mut events = Vec::new();
    let mut stats = WorkerStats::default();

    // A panic below the typed-error layer (a shape assert in the math
    // kernels, say) must not poison the trainer's join: catch it here and
    // report it as a root-cause WorkerError naming this device, so the
    // abort latch still trips and peers unwind instead of deadlocking.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_action_lists(
            &mut cfg,
            &mut mailbox,
            &fabric,
            &mut losses,
            &mut peak_stash,
            &mut events,
            &mut stats,
        )
    }));
    let error = match outcome {
        Ok(result) => result.err(),
        Err(payload) => {
            Some(WorkerError::Panicked { device, message: panic_message(payload.as_ref()) })
        }
    };
    if let Some(e) = &error {
        // Wake peers blocked on messages or collectives this worker will
        // never complete. Cascades re-trip harmlessly.
        cfg.abort.trip();
        if let Some((_, hub)) = &cfg.dp {
            hub.abort();
        }
        debug_assert!(e.device() == device);
    }
    stats.flush(device, peak_stash, mailbox.parked_peak());

    WorkerReport {
        device,
        modules: std::mem::take(&mut cfg.modules),
        losses,
        peak_stash_bytes: peak_stash,
        peak_mailbox_parked: mailbox.parked_peak(),
        events,
        error,
    }
}

fn run_action_lists(
    cfg: &mut WorkerConfig,
    mailbox: &mut Mailbox,
    fabric: &Fabric,
    losses: &mut Vec<f32>,
    peak_stash: &mut usize,
    events: &mut Vec<TraceEvent>,
    stats: &mut WorkerStats,
) -> Result<(), WorkerError> {
    let schedule = Arc::clone(&cfg.schedule);
    let device = cfg.device;
    let stages = schedule.stage_map.stages;
    let micro_batches = schedule.config.micro_batches;
    let actions = &schedule.lists[device.idx()].actions;
    let data_arc = Arc::clone(&cfg.data);
    let mut cur_stash = 0usize;

    // Span instrumentation: `tick()` reads the shared-origin clock only
    // when tracing (the untraced path never touches it); `span` records a
    // completed op.
    let tracing = cfg.trace;
    let origin = cfg.origin;
    let tick = || -> f64 {
        if tracing {
            origin.elapsed().as_secs_f64()
        } else {
            0.0
        }
    };
    let dev = device.0;
    let span = |events: &mut Vec<TraceEvent>, kind, mb: Option<u32>, stage: Option<u32>, t0, t1| {
        if tracing {
            events.push(TraceEvent { device: dev, kind, mb, stage, t_start: t0, t_end: t1 });
        }
    };

    // Metrics gate, read once: flipping the registry mid-run must not
    // change what a single run records. Like `tick`, the disabled path
    // takes no clock readings; the wait probe reads the metrics clock
    // only when enabled, and nothing here is ever read back by the run.
    let metrics_on = hanayo_metrics::enabled();
    let dev_label = device.0.to_string();
    let mwait = |t0_ns: u64| {
        if metrics_on {
            hanayo_metrics::observe(
                "hanayo_worker_mailbox_wait_ns",
                &[("device", dev_label.as_str())],
                hanayo_metrics::NANOS_BUCKETS,
                hanayo_metrics::monotonic_nanos().saturating_sub(t0_ns),
            );
        }
    };
    let mnow = || if metrics_on { hanayo_metrics::monotonic_nanos() } else { 0 };

    // The failure plan speaks global device ranks (`replica · P + local`)
    // and global iterations (`iter_base + local`), so injected faults stay
    // well-defined across data-parallel replicas and resumed segments.
    let failure = cfg.failure;
    let rank_base = cfg.dp.as_ref().map_or(0, |(r, _)| *r as u32 * schedule.lists.len() as u32);
    let global_dev = rank_base + device.0;
    let link_dropped = |peer: DeviceId, global_iter: u32| {
        matches!(failure, FailurePlan::DropLink { src, dst, iteration }
            if global_dev == src && rank_base + peer.0 == dst && global_iter >= iteration)
    };

    for (iter, data) in data_arc.iter().enumerate() {
        let iter = iter as u32;
        let global_iter = cfg.iter_base + iter;
        if let FailurePlan::KillDevice { device: d, iteration } = failure {
            if global_dev == d && global_iter == iteration {
                return Err(WorkerError::Injected { device, iteration: global_iter });
            }
        }
        // In-flight state for this iteration.
        let mut local: HashMap<MsgTag, Tensor> = HashMap::new();
        let mut outbound: HashMap<MsgTag, Tensor> = HashMap::new();
        let mut stash: HashMap<(u32, u32), Stashed> = HashMap::new();
        let mut slots: HashMap<u32, Vec<Option<StageGrads>>> =
            cfg.modules.keys().map(|&s| (s, vec![None; micro_batches as usize])).collect();
        let mut iter_loss = 0.0f32;

        for action in actions {
            match action {
                Action::Forward { mb, stage } => {
                    let t0 = tick();
                    stats.forward += 1;
                    let x = if stage.0 == 0 {
                        data.inputs[mb.idx()].clone()
                    } else {
                        let tag = MsgTag { mb: *mb, stage: *stage, payload: Payload::Activation };
                        local.remove(&tag).ok_or(WorkerError::MissingInput { device, tag })?
                    };
                    let module = cfg
                        .modules
                        .get(&stage.0)
                        .ok_or(WorkerError::MissingModule { device, stage: *stage })?;
                    let (y, st) = module.forward(&x);
                    let entry = match cfg.recompute {
                        Recompute::None => Stashed::Activations(st),
                        // Keep only the boundary; the full stash drops
                        // here and is regenerated at backward time.
                        Recompute::Full => Stashed::Boundary(x),
                    };
                    cur_stash += entry.bytes();
                    *peak_stash = (*peak_stash).max(cur_stash);
                    stash.insert((mb.0, stage.0), entry);
                    if stage.0 + 1 == stages {
                        // Turnaround: loss + gradient, consumed by this
                        // stage's backward under its gradient tag.
                        let (l, dy) = apply_loss(&cfg.loss, &y, data, *mb);
                        iter_loss += l;
                        let tag = MsgTag { mb: *mb, stage: *stage, payload: Payload::Gradient };
                        local.insert(tag, dy);
                    } else {
                        let tag = MsgTag {
                            mb: *mb,
                            stage: StageId(stage.0 + 1),
                            payload: Payload::Activation,
                        };
                        route(&schedule, device, tag, y, &mut local, &mut outbound);
                    }
                    span(events, TraceKind::Fwd, Some(mb.0), Some(stage.0), t0, tick());
                }
                Action::Backward { mb, stage } => {
                    let t0 = tick();
                    stats.backward += 1;
                    let tag = MsgTag { mb: *mb, stage: *stage, payload: Payload::Gradient };
                    let dy =
                        local.remove(&tag).ok_or(WorkerError::MissingGradient { device, tag })?;
                    let entry = stash
                        .remove(&(mb.0, stage.0))
                        .ok_or(WorkerError::MissingStash { device, mb: *mb, stage: *stage })?;
                    cur_stash -= entry.bytes();
                    let module = cfg
                        .modules
                        .get(&stage.0)
                        .ok_or(WorkerError::MissingModule { device, stage: *stage })?;
                    let mut t_replay = None;
                    let st = match entry {
                        Stashed::Activations(st) => st,
                        // Checkpointed: replay the stage forward from the
                        // boundary tensor. Weights have not changed since
                        // the original forward (updates happen only at the
                        // flush), so the regenerated stash — and therefore
                        // every gradient — is bit-identical.
                        Stashed::Boundary(x) => {
                            let st = module.forward(&x).1;
                            t_replay = Some(tick());
                            st
                        }
                    };
                    let (dx, grads) = module.backward(&st, &dy);
                    slots
                        .get_mut(&stage.0)
                        .ok_or(WorkerError::MissingModule { device, stage: *stage })?[mb.idx()] =
                        Some(grads);
                    if stage.0 > 0 {
                        let tag = MsgTag {
                            mb: *mb,
                            stage: StageId(stage.0 - 1),
                            payload: Payload::Gradient,
                        };
                        route(&schedule, device, tag, dx, &mut local, &mut outbound);
                    }
                    // Under checkpointing the replay and the true backward
                    // are separate spans, so calibration can attribute the
                    // extra forward to the right place.
                    let t1 = tick();
                    match t_replay {
                        Some(tr) => {
                            span(events, TraceKind::Recompute, Some(mb.0), Some(stage.0), t0, tr);
                            span(events, TraceKind::Bwd, Some(mb.0), Some(stage.0), tr, t1);
                        }
                        None => span(events, TraceKind::Bwd, Some(mb.0), Some(stage.0), t0, t1),
                    }
                }
                Action::Comm(op) => match op.dir {
                    CommDir::Send => {
                        if link_dropped(op.peer, global_iter) {
                            return Err(WorkerError::LinkDown {
                                device,
                                peer: op.peer,
                                iteration: global_iter,
                            });
                        }
                        let t0 = tick();
                        stats.send += 1;
                        let tensor = outbound
                            .remove(&op.tag)
                            .ok_or(WorkerError::MissingOutbound { device, tag: op.tag })?;
                        fabric.send(op.peer.idx(), Envelope { iter, tag: op.tag, tensor });
                        let (mb, stage) = (op.tag.mb.0, op.tag.stage.0);
                        span(events, TraceKind::Send, Some(mb), Some(stage), t0, tick());
                    }
                    CommDir::Recv => {
                        let t0 = tick();
                        stats.recv += 1;
                        let w0 = mnow();
                        let tensor = mailbox
                            .recv_abortable(iter, op.tag, &cfg.abort)
                            .ok_or(WorkerError::Aborted { device })?;
                        mwait(w0);
                        local.insert(op.tag, tensor);
                        let (mb, stage) = (op.tag.mb.0, op.tag.stage.0);
                        span(events, TraceKind::Recv, Some(mb), Some(stage), t0, tick());
                    }
                },
                Action::BatchedComm(ops) => {
                    // Post all sends first (non-blocking), then drain the
                    // receives — the deadlock-free batch_isend_irecv order.
                    for op in ops.iter().filter(|o| o.dir == CommDir::Send) {
                        if link_dropped(op.peer, global_iter) {
                            return Err(WorkerError::LinkDown {
                                device,
                                peer: op.peer,
                                iteration: global_iter,
                            });
                        }
                        let t0 = tick();
                        stats.send += 1;
                        let tensor = outbound
                            .remove(&op.tag)
                            .ok_or(WorkerError::MissingOutbound { device, tag: op.tag })?;
                        fabric.send(op.peer.idx(), Envelope { iter, tag: op.tag, tensor });
                        span(
                            events,
                            TraceKind::Send,
                            Some(op.tag.mb.0),
                            Some(op.tag.stage.0),
                            t0,
                            tick(),
                        );
                    }
                    for op in ops.iter().filter(|o| o.dir == CommDir::Recv) {
                        let t0 = tick();
                        stats.recv += 1;
                        let w0 = mnow();
                        let tensor = mailbox
                            .recv_abortable(iter, op.tag, &cfg.abort)
                            .ok_or(WorkerError::Aborted { device })?;
                        mwait(w0);
                        local.insert(op.tag, tensor);
                        span(
                            events,
                            TraceKind::Recv,
                            Some(op.tag.mb.0),
                            Some(op.tag.stage.0),
                            t0,
                            tick(),
                        );
                    }
                }
                Action::OptimizerStep => {
                    let mut stage_ids: Vec<u32> = cfg.modules.keys().copied().collect();
                    stage_ids.sort_unstable();
                    for s in stage_ids {
                        stats.optim += 1;
                        // The Optim spans cover only the local
                        // reduce/step work; the blocking all-reduce
                        // rendezvous is its own (comm-kind) span, so the
                        // wait is never double-counted as busy compute.
                        let t0 = tick();
                        let module = cfg
                            .modules
                            .get_mut(&s)
                            .ok_or(WorkerError::MissingModule { device, stage: StageId(s) })?;
                        let mut total = module.zero_grads();
                        let stage_slots =
                            slots.get_mut(&s).ok_or(WorkerError::MissingSlotGradient {
                                device,
                                stage: StageId(s),
                            })?;
                        for slot in stage_slots {
                            let g = slot.take().ok_or(WorkerError::MissingSlotGradient {
                                device,
                                stage: StageId(s),
                            })?;
                            total.accumulate(&g);
                        }
                        let t1 = if let Some((rank, hub)) = &cfg.dp {
                            stats.allreduce += 1;
                            let a0 = tick();
                            span(events, TraceKind::Optim, None, Some(s), t0, a0);
                            total = hub
                                .try_allreduce(iter, s, *rank, total)
                                .ok_or(WorkerError::Aborted { device })?;
                            let a1 = tick();
                            span(events, TraceKind::Allreduce, None, Some(s), a0, a1);
                            a1
                        } else {
                            t0
                        };
                        module.sgd_step(&total, cfg.lr);
                        span(events, TraceKind::Optim, None, Some(s), t1, tick());
                    }
                }
            }
        }

        if !stash.is_empty() {
            return Err(WorkerError::StashNotDrained { device, remaining: stash.len() });
        }
        if !outbound.is_empty() {
            return Err(WorkerError::UnsentOutbound { device, remaining: outbound.len() });
        }
        if holds_last_stage(&schedule, device) {
            losses.push(iter_loss / micro_batches as f32);
        }
        if metrics_on {
            // Heartbeat for fault detection (age = scrape time minus this
            // timestamp) and the live-bytes level at the iteration
            // boundary (nonzero only when a schedule leaks stash).
            let labels: &[(&'static str, &str)] = &[("device", dev_label.as_str())];
            hanayo_metrics::gauge_set(
                "hanayo_worker_heartbeat_ts_ns",
                labels,
                hanayo_metrics::now_nanos() as f64,
            );
            hanayo_metrics::gauge_set("hanayo_worker_stash_bytes_live", labels, cur_stash as f64);
        }
    }
    Ok(())
}

/// Render a caught panic payload (strings are the overwhelmingly common
/// case; anything else is summarised).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Deliver a produced tensor: keep it local when the consumer stage lives
/// on this device, otherwise park it for the upcoming `Send` action.
fn route(
    schedule: &Schedule,
    device: DeviceId,
    tag: MsgTag,
    tensor: Tensor,
    local: &mut HashMap<MsgTag, Tensor>,
    outbound: &mut HashMap<MsgTag, Tensor>,
) {
    if schedule.stage_map.device_of(tag.mb, tag.stage) == device {
        local.insert(tag, tensor);
    } else {
        outbound.insert(tag, tensor);
    }
}

fn apply_loss(loss: &LossKind, y: &Tensor, data: &IterationData, mb: MicroBatch) -> (f32, Tensor) {
    match loss {
        LossKind::Mse => mse(y, &data.targets[mb.idx()]),
        LossKind::CrossEntropy { labels } => softmax_cross_entropy(y, &labels[mb.idx()]),
    }
}

fn holds_last_stage(schedule: &Schedule, device: DeviceId) -> bool {
    let last = StageId(schedule.stage_map.stages - 1);
    schedule.stage_map.device_of(MicroBatch(0), last) == device
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_kinds_apply() {
        let data = IterationData {
            inputs: vec![Tensor::zeros(1, 2)],
            targets: vec![Tensor::from_vec(1, 2, vec![1.0, 0.0])],
        };
        let y = Tensor::from_vec(1, 2, vec![1.0, 0.0]);
        let (l, _) = apply_loss(&LossKind::Mse, &y, &data, MicroBatch(0));
        assert_eq!(l, 0.0);
        let (l2, _) =
            apply_loss(&LossKind::CrossEntropy { labels: vec![vec![0]] }, &y, &data, MicroBatch(0));
        assert!(l2 > 0.0);
    }

    #[test]
    fn worker_error_display_names_device_and_op() {
        let tag = MsgTag { mb: MicroBatch(3), stage: StageId(1), payload: Payload::Activation };
        let e = WorkerError::MissingInput { device: DeviceId(2), tag };
        assert_eq!(e.to_string(), "P2: forward found no input act:mb3@S1");
        assert_eq!(e.device(), DeviceId(2));
        assert!(!e.is_cascade());
        assert!(WorkerError::Aborted { device: DeviceId(0) }.is_cascade());
    }
}
