//! Tag-matching point-to-point fabric.
//!
//! Each device owns one unbounded receiving channel; every peer holds a
//! cloned sender. Sends never block (buffered, like `isend` over NCCL with
//! ample buffers); receives block until a message with the requested tag
//! arrives. Because iterations reuse tags, the match key includes the
//! iteration number.

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use hanayo_core::action::MsgTag;
use hanayo_tensor::Tensor;
use std::collections::HashMap;
use std::time::Duration;

// The cooperative cancellation latch a crashing worker trips so peers
// blocked in [`Mailbox::recv_abortable`] unwind instead of deadlocking.
// It lives in `hanayo-core` (the tuner and the planning service thread
// the same latch through sweep cancellation); re-exported here so every
// existing `runtime::mailbox::AbortFlag` path keeps compiling.
pub use hanayo_core::abort::AbortFlag;

/// One in-flight tensor message.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Training iteration the message belongs to.
    pub iter: u32,
    /// Message identity within the iteration.
    pub tag: MsgTag,
    /// Payload.
    pub tensor: Tensor,
}

/// The receiving half of a device's fabric endpoint, with tag matching.
pub struct Mailbox {
    rx: Receiver<Envelope>,
    /// Early arrivals waiting for their recv to be issued.
    parked: HashMap<(u32, MsgTag), Tensor>,
    /// High-water mark of `parked` over the mailbox's lifetime — the
    /// worker-imbalance signal [`crate::trainer::TrainOutput`] surfaces
    /// per device: a mailbox that parks deeply is a device whose consumer
    /// runs far behind its producers.
    parked_peak: usize,
}

impl Mailbox {
    fn park(&mut self, env: Envelope) {
        self.parked.insert((env.iter, env.tag), env.tensor);
        self.parked_peak = self.parked_peak.max(self.parked.len());
    }

    /// Blocking receive of a specific `(iter, tag)` message. Returns
    /// `None` if the fabric disconnects while the receive is pending —
    /// every sender is gone, so the message can never arrive.
    pub fn recv(&mut self, iter: u32, tag: MsgTag) -> Option<Tensor> {
        if let Some(t) = self.parked.remove(&(iter, tag)) {
            return Some(t);
        }
        loop {
            let Ok(env) = self.rx.recv() else { return None };
            if env.iter == iter && env.tag == tag {
                return Some(env.tensor);
            }
            self.park(env);
        }
    }

    /// Like [`Mailbox::recv`], but gives up — returning `None` — once
    /// `abort` trips or the fabric disconnects, instead of blocking
    /// forever on a message that will never arrive.
    pub fn recv_abortable(&mut self, iter: u32, tag: MsgTag, abort: &AbortFlag) -> Option<Tensor> {
        if let Some(t) = self.parked.remove(&(iter, tag)) {
            return Some(t);
        }
        loop {
            if abort.is_tripped() {
                return None;
            }
            match self.rx.recv_timeout(Duration::from_millis(2)) {
                Ok(env) => {
                    if env.iter == iter && env.tag == tag {
                        return Some(env.tensor);
                    }
                    self.park(env);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return None,
            }
        }
    }

    /// Number of parked (early) messages — useful in tests.
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }

    /// High-water mark of the parked map over this mailbox's lifetime.
    pub fn parked_peak(&self) -> usize {
        self.parked_peak
    }
}

/// Sending endpoints to every device.
#[derive(Clone)]
pub struct Fabric {
    senders: Vec<Sender<Envelope>>,
}

impl Fabric {
    /// Non-blocking send to `device`. A closed peer mailbox means that
    /// worker already exited (failure injection or abort); the message is
    /// dropped — the abort latch, not the fabric, reports such failures.
    pub fn send(&self, device: usize, env: Envelope) {
        let _ = self.senders[device].send(env);
    }

    /// Number of endpoints.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True when the fabric has no endpoints.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }
}

/// Build a fabric of `n` endpoints: the shared sender table plus each
/// device's private mailbox.
pub fn fabric(n: usize) -> (Fabric, Vec<Mailbox>) {
    let mut senders = Vec::with_capacity(n);
    let mut boxes = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        boxes.push(Mailbox { rx, parked: HashMap::new(), parked_peak: 0 });
    }
    (Fabric { senders }, boxes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanayo_core::action::Payload;
    use hanayo_core::ids::{MicroBatch, StageId};

    fn tag(mb: u32, stage: u32) -> MsgTag {
        MsgTag { mb: MicroBatch(mb), stage: StageId(stage), payload: Payload::Activation }
    }

    fn t(v: f32) -> Tensor {
        Tensor::from_vec(1, 1, vec![v])
    }

    #[test]
    fn in_order_delivery() {
        let (fab, mut boxes) = fabric(2);
        fab.send(1, Envelope { iter: 0, tag: tag(0, 1), tensor: t(7.0) });
        let got = boxes[1].recv(0, tag(0, 1)).unwrap();
        assert_eq!(got.data, vec![7.0]);
    }

    #[test]
    fn out_of_order_messages_park() {
        let (fab, mut boxes) = fabric(2);
        fab.send(1, Envelope { iter: 0, tag: tag(1, 1), tensor: t(2.0) });
        fab.send(1, Envelope { iter: 0, tag: tag(0, 1), tensor: t(1.0) });
        // Ask for mb0 first even though mb1 arrived first.
        assert_eq!(boxes[1].recv(0, tag(0, 1)).unwrap().data, vec![1.0]);
        assert_eq!(boxes[1].parked_len(), 1);
        assert_eq!(boxes[1].recv(0, tag(1, 1)).unwrap().data, vec![2.0]);
        assert_eq!(boxes[1].parked_len(), 0);
        // The high-water mark survives the drain.
        assert_eq!(boxes[1].parked_peak(), 1);
    }

    #[test]
    fn iterations_do_not_collide() {
        let (fab, mut boxes) = fabric(2);
        // Same tag, two iterations, sent in reverse order.
        fab.send(1, Envelope { iter: 1, tag: tag(0, 1), tensor: t(11.0) });
        fab.send(1, Envelope { iter: 0, tag: tag(0, 1), tensor: t(10.0) });
        assert_eq!(boxes[1].recv(0, tag(0, 1)).unwrap().data, vec![10.0]);
        assert_eq!(boxes[1].recv(1, tag(0, 1)).unwrap().data, vec![11.0]);
    }

    #[test]
    fn cross_thread_transfer() {
        let (fab, mut boxes) = fabric(2);
        let mut b1 = boxes.remove(1);
        let h = std::thread::spawn(move || b1.recv(0, tag(3, 1)).unwrap().data[0]);
        fab.send(1, Envelope { iter: 0, tag: tag(3, 1), tensor: t(42.0) });
        assert_eq!(h.join().unwrap(), 42.0);
    }
}
