//! Driving a training run: thread-per-device orchestration plus the
//! sequential reference implementation every schedule is checked against.

use crate::collective::AllreduceHub;
use crate::mailbox::{fabric, AbortFlag};
pub use crate::worker::LossKind;
use crate::worker::{
    panic_message, run_worker, IterationData, WorkerConfig, WorkerError, WorkerReport,
};
use hanayo_ckpt::{
    config_fingerprint, Checkpoint, CheckpointPolicy, CkptError, FailurePlan, OptimizerState,
    RngCursor,
};
use hanayo_core::action::Schedule;
use hanayo_core::ids::{DeviceId, MicroBatch};
use hanayo_model::Recompute;
use hanayo_tensor::loss::{mse, softmax_cross_entropy};
use hanayo_tensor::Stage;
use hanayo_trace::Trace;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// A complete pipeline-training job description.
#[derive(Clone)]
pub struct TrainerConfig {
    /// The frozen schedule to execute.
    pub schedule: Schedule,
    /// Global stage modules, `stages[s]` for stage `s`.
    pub stages: Vec<Stage>,
    /// SGD learning rate.
    pub lr: f32,
    /// Loss at the last stage.
    pub loss: LossKind,
    /// Activation stash policy. [`Recompute::Full`] stashes only each
    /// stage's input boundary tensor and replays the stage forward inside
    /// the backward — bit-identical gradients, strictly smaller resident
    /// stash (see [`TrainOutput::peak_stash_bytes`]).
    pub recompute: Recompute,
    /// Record wall-clock spans around every worker op and return them as
    /// [`TrainOutput::trace`]. Off by default: untraced workers take no
    /// clock readings. Tracing never changes losses, weights or peaks —
    /// it only observes.
    pub trace: bool,
    /// Durable-checkpoint cadence for [`try_train_resumable`]: a
    /// [`Checkpoint`] is captured at every iteration boundary the policy
    /// names (including iteration 0), and the latest one rides a
    /// [`FailedRun`] when the run crashes. Off by default; checkpointing
    /// never changes losses, weights or peaks — an interrupted-and-resumed
    /// run is bitwise identical to an uninterrupted one.
    pub checkpoint: CheckpointPolicy,
    /// Deterministic fault to inject ([`FailurePlan::None`] by default).
    /// Injected faults ride the same typed `WorkerError` + abort-latch
    /// machinery as genuine invariant violations.
    pub failure: FailurePlan,
}

impl TrainerConfig {
    /// A job with the default policies: no activation recomputation, no
    /// tracing, no checkpointing, no injected failures. Override fields
    /// with struct-update syntax:
    /// `TrainerConfig { trace: true, ..TrainerConfig::new(...) }`.
    pub fn new(schedule: Schedule, stages: Vec<Stage>, lr: f32, loss: LossKind) -> TrainerConfig {
        TrainerConfig {
            schedule,
            stages,
            lr,
            loss,
            recompute: Recompute::None,
            trace: false,
            checkpoint: CheckpointPolicy::OFF,
            failure: FailurePlan::None,
        }
    }
}

/// The [`hanayo_ckpt::config_fingerprint`] of a trainer configuration
/// replicated `world` ways — what a [`Checkpoint`] produced by this
/// configuration stores, and what a restore must present.
pub fn fingerprint_of(cfg: &TrainerConfig, world: u32) -> u64 {
    config_fingerprint(
        &cfg.schedule,
        world,
        cfg.lr,
        &cfg.loss.fingerprint_token(),
        cfg.recompute,
        &cfg.stages,
    )
}

/// Results of a training run.
#[derive(Debug, Clone)]
pub struct TrainOutput {
    /// Mean loss per iteration.
    pub losses: Vec<f32>,
    /// Updated stage modules.
    pub stages: Vec<Stage>,
    /// Measured peak of each device's live activation-stash bytes (empty
    /// for the sequential reference, which stashes one micro-batch at a
    /// time). Per-device order is the action-list order, so this is
    /// deterministic and — given a cost table probed from the same stages —
    /// exactly equal to the simulator's `peak_mem − weight_mem`.
    pub peak_stash_bytes: Vec<usize>,
    /// High-water mark of each device's mailbox parked map (early
    /// arrivals held until their receive is issued) — the worker-imbalance
    /// signal: a device that parks deeply runs far behind its producers.
    /// Same shape and ordering as [`TrainOutput::peak_stash_bytes`]
    /// (empty for the sequential reference, which has no fabric).
    pub peak_mailbox_parked: Vec<usize>,
    /// The measured execution trace, when [`TrainerConfig::trace`] asked
    /// for one (`None` otherwise, and always `None` for the sequential
    /// reference). Data-parallel runs merge every replica onto global
    /// device ranks (`replica·P + local`) on one shared clock.
    pub trace: Option<Trace>,
}

/// A training run that stopped on a worker-side invariant violation. The
/// root cause names the exact device and operation (and, for data-parallel
/// runs, the replica); cascade entries are peers that unwound because of
/// it.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainError {
    /// The first root-cause failure (never `WorkerError::Aborted` unless
    /// every failure was a cascade).
    pub primary: WorkerError,
    /// Data-parallel replica rank the primary failure came from; `None`
    /// for single-pipeline runs (device ids are replica-local).
    pub replica: Option<usize>,
    /// Every worker-reported failure as `(replica rank, error)` — rank is
    /// 0 for single-pipeline runs.
    pub failures: Vec<(usize, WorkerError)>,
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.replica {
            Some(r) => write!(f, "training failed on replica {r}: {}", self.primary)?,
            None => write!(f, "training failed: {}", self.primary)?,
        }
        let cascades = self.failures.iter().filter(|(_, e)| e.is_cascade()).count();
        if cascades > 0 {
            write!(f, " ({cascades} peer worker(s) unwound)")?;
        }
        Ok(())
    }
}

impl std::error::Error for TrainError {}

/// A resumable run that crashed: the typed failure plus the last durable
/// checkpoint taken before it (if the policy produced one).
#[derive(Debug, Clone)]
pub struct FailedRun {
    /// What stopped the run.
    pub error: TrainError,
    /// The newest checkpoint captured before the failure; resume from it
    /// with [`resume`] / [`resume_data_parallel`]. `None` when the policy
    /// is [`CheckpointPolicy::OFF`].
    pub checkpoint: Option<Checkpoint>,
}

impl fmt::Display for FailedRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.error)?;
        match &self.checkpoint {
            Some(c) => write!(f, " (durable checkpoint at iteration {})", c.iteration),
            None => write!(f, " (no durable checkpoint)"),
        }
    }
}

impl std::error::Error for FailedRun {}

/// Why a [`resume`] could not run (or finish).
#[derive(Debug, Clone)]
pub enum ResumeError {
    /// The checkpoint failed a guard: wrong schema, wrong configuration
    /// fingerprint, or corrupt payload.
    Checkpoint(CkptError),
    /// The checkpoint sits beyond the supplied data (more iterations were
    /// checkpointed than the caller provided).
    BeyondData {
        /// Completed iterations in the checkpoint.
        iteration: u32,
        /// Iterations the caller supplied.
        available: usize,
    },
    /// The resumed run itself crashed (e.g. the failure plan strikes
    /// again later); carries its own newer checkpoint when one exists.
    Run(Box<FailedRun>),
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::Checkpoint(e) => write!(f, "cannot resume: {e}"),
            ResumeError::BeyondData { iteration, available } => write!(
                f,
                "cannot resume: checkpoint has {iteration} completed iteration(s) but only \
                 {available} were supplied"
            ),
            ResumeError::Run(e) => write!(f, "resumed run failed: {e}"),
        }
    }
}

impl std::error::Error for ResumeError {}

/// Fold worker failures into a `TrainError`, preferring a root cause over
/// cascades as the primary. `tag_replica` distinguishes data-parallel runs
/// (where the rank disambiguates replica-local device ids) from
/// single-pipeline runs.
fn train_error(failures: Vec<(usize, WorkerError)>, tag_replica: bool) -> Option<TrainError> {
    if failures.is_empty() {
        return None;
    }
    let (rank, primary) =
        failures.iter().find(|(_, e)| !e.is_cascade()).unwrap_or(&failures[0]).clone();
    let replica = tag_replica.then_some(rank);
    Some(TrainError { primary, replica, failures })
}

fn validate(cfg: &TrainerConfig, data: &[IterationData]) {
    assert_eq!(cfg.stages.len(), cfg.schedule.stage_map.stages as usize, "one module per stage");
    for group in &cfg.schedule.stage_map.groups {
        assert_eq!(
            group.replica.0, 0,
            "the runtime trains single-replica schedules; use the wave \
             transformation for Chimera (the paper does the same)"
        );
    }
    let b = cfg.schedule.config.micro_batches as usize;
    for (i, iteration) in data.iter().enumerate() {
        assert_eq!(iteration.inputs.len(), b, "iteration {i}: one input per micro-batch");
        assert_eq!(iteration.targets.len(), b, "iteration {i}: one target per micro-batch");
    }
}

/// Run the schedule with real math, one OS thread per device. Panics (on
/// the calling thread, with the failing device and operation) if a worker
/// hits an invariant violation; use [`try_train`] to handle that as a
/// value.
pub fn train(cfg: &TrainerConfig, data: &[IterationData]) -> TrainOutput {
    try_train(cfg, data).unwrap_or_else(|e| panic!("{e}"))
}

/// Like [`train`], but worker-side invariant violations (the signature of
/// a corrupt schedule) come back as a typed [`TrainError`] naming the
/// failing device and operation instead of a cross-thread panic.
pub fn try_train(cfg: &TrainerConfig, data: &[IterationData]) -> Result<TrainOutput, TrainError> {
    try_train_with_dp(cfg, data, None, &Arc::new(AbortFlag::new()), Instant::now(), 0)
}

/// Run `dp` identical pipeline replicas, each on its own data shard, with
/// a gradient all-reduce at every flush. `data[g]` is replica `g`'s shard;
/// all shards must have the same iteration count. Panics on worker
/// failure; see [`try_train_data_parallel`].
pub fn train_data_parallel(cfg: &TrainerConfig, data: &[Vec<IterationData>]) -> TrainOutput {
    try_train_data_parallel(cfg, data).unwrap_or_else(|e| panic!("{e}"))
}

/// [`train_data_parallel`] with worker failures surfaced as a
/// [`TrainError`] instead of a panic.
pub fn try_train_data_parallel(
    cfg: &TrainerConfig,
    data: &[Vec<IterationData>],
) -> Result<TrainOutput, TrainError> {
    let views: Vec<&[IterationData]> = data.iter().map(Vec::as_slice).collect();
    try_train_dp_segment(cfg, &views, Instant::now(), 0)
}

/// One data-parallel run segment: `data[g]` is replica `g`'s shard of
/// iterations `iter_base..` (borrowed — the chunked resume engine passes
/// windows of the full shards without copying). All spans land on the
/// shared `origin` clock.
fn try_train_dp_segment(
    cfg: &TrainerConfig,
    data: &[&[IterationData]],
    origin: Instant,
    iter_base: u32,
) -> Result<TrainOutput, TrainError> {
    let dp = data.len();
    assert!(dp >= 1);
    let hub = Arc::new(AllreduceHub::new(dp));
    // One latch across every replica: a failure anywhere must wake workers
    // of *all* replicas (they rendezvous in the shared hub).
    let abort = Arc::new(AbortFlag::new());
    let outputs: Vec<Result<TrainOutput, TrainError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = data
            .iter()
            .enumerate()
            .map(|(rank, shard)| {
                let cfg = cfg.clone();
                let hub = Arc::clone(&hub);
                let abort = Arc::clone(&abort);
                scope.spawn(move || {
                    // A panic above the worker layer (e.g. a validation
                    // assert before workers spawn) must trip the shared
                    // latch *on this thread*: peers of other replicas are
                    // already blocked in the hub, and the main thread may
                    // be joining a different replica — waiting for the
                    // join to surface it would deadlock the run. The panic
                    // is thread-level, so no local device can be named;
                    // the outer fold re-tags the replica rank.
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        try_train_with_dp(
                            &cfg,
                            shard,
                            Some((rank, Arc::clone(&hub))),
                            &abort,
                            origin,
                            iter_base,
                        )
                    }))
                    .unwrap_or_else(|payload| {
                        abort.trip();
                        hub.abort();
                        let w = WorkerError::Panicked {
                            device: DeviceId(0),
                            message: format!(
                                "replica thread (device unknown): {}",
                                panic_message(payload.as_ref())
                            ),
                        };
                        Err(TrainError {
                            primary: w.clone(),
                            replica: None,
                            failures: vec![(0, w)],
                        })
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                // Replica threads catch their own panics above; a join
                // failure would mean a panic escaped the catch (e.g. in
                // the unwind path itself) — fold it into the same typed
                // failure instead of propagating the panic.
                h.join().unwrap_or_else(|payload| {
                    let w = WorkerError::Panicked {
                        device: DeviceId(0),
                        message: format!(
                            "replica thread (device unknown): {}",
                            panic_message(payload.as_ref())
                        ),
                    };
                    Err(TrainError { primary: w.clone(), replica: None, failures: vec![(0, w)] })
                })
            })
            .collect()
    });
    let mut ok = Vec::with_capacity(dp);
    let mut failures = Vec::new();
    for (rank, out) in outputs.into_iter().enumerate() {
        match out {
            Ok(o) => ok.push(o),
            // Re-tag with the replica rank: device ids are replica-local.
            Err(e) => failures.extend(e.failures.into_iter().map(|(_, w)| (rank, w))),
        }
    }
    if let Some(e) = train_error(failures, true) {
        return Err(e);
    }
    // Every replica either succeeded or contributed a failure, and
    // `dp >= 1` is asserted on entry, so at least one success remains
    // after the early return above.
    let Some(first) = ok.first() else {
        let w = WorkerError::Panicked {
            device: DeviceId(0),
            message: "no replica produced output (dp == 0?)".to_string(),
        };
        return Err(TrainError { primary: w.clone(), replica: None, failures: vec![(0, w)] });
    };
    // Replicas end bit-identical; average their reported losses.
    let iters = first.losses.len();
    let losses =
        (0..iters).map(|i| ok.iter().map(|o| o.losses[i]).sum::<f32>() / dp as f32).collect();
    let peak = ok.iter().flat_map(|o| o.peak_stash_bytes.clone()).collect();
    let parked = ok.iter().flat_map(|o| o.peak_mailbox_parked.clone()).collect();
    // Merge replica traces onto global device ranks (`rank·P + local`).
    let trace = cfg.trace.then(|| {
        let p = cfg.schedule.lists.len() as u32;
        let mut merged = Trace::new(p * dp as u32);
        for (rank, out) in ok.iter().enumerate() {
            if let Some(t) = &out.trace {
                merged.merge_offset(t, rank as u32 * p);
            }
        }
        merged
    });
    Ok(TrainOutput {
        losses,
        stages: ok.into_iter().next().map_or_else(Vec::new, |o| o.stages),
        peak_stash_bytes: peak,
        peak_mailbox_parked: parked,
        trace,
    })
}

fn try_train_with_dp(
    cfg: &TrainerConfig,
    data: &[IterationData],
    dp: Option<(usize, Arc<AllreduceHub>)>,
    abort: &Arc<AbortFlag>,
    origin: Instant,
    iter_base: u32,
) -> Result<TrainOutput, TrainError> {
    validate(cfg, data);
    let p = cfg.schedule.lists.len();
    let schedule = Arc::new(cfg.schedule.clone());
    let shared_data = Arc::new(data.to_vec());
    let (fab, mailboxes) = fabric(p);

    let reports: Vec<WorkerReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = mailboxes
            .into_iter()
            .enumerate()
            .map(|(d, mailbox)| {
                let device = DeviceId(d as u32);
                let modules: HashMap<u32, Stage> = schedule
                    .stage_map
                    .modules_on(device)
                    .into_iter()
                    .map(|(_, stage)| (stage.0, cfg.stages[stage.idx()].clone()))
                    .collect();
                let wcfg = WorkerConfig {
                    device,
                    schedule: Arc::clone(&schedule),
                    modules,
                    data: Arc::clone(&shared_data),
                    loss: cfg.loss.clone(),
                    lr: cfg.lr,
                    dp: dp.clone(),
                    recompute: cfg.recompute,
                    abort: Arc::clone(abort),
                    trace: cfg.trace,
                    origin,
                    failure: cfg.failure,
                    iter_base,
                };
                let fab = fab.clone();
                scope.spawn(move || run_worker(wcfg, mailbox, fab))
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(d, h)| {
                // The worker catches its own panics; a join can only fail
                // if report assembly itself blew up. Even then: trip the
                // latch so peers unwind, and report the device by name.
                h.join().unwrap_or_else(|payload| {
                    abort.trip();
                    let device = DeviceId(d as u32);
                    WorkerReport {
                        device,
                        modules: HashMap::new(),
                        losses: Vec::new(),
                        peak_stash_bytes: 0,
                        peak_mailbox_parked: 0,
                        events: Vec::new(),
                        error: Some(WorkerError::Panicked {
                            device,
                            message: panic_message(payload.as_ref()),
                        }),
                    }
                })
            })
            .collect()
    });

    let rank = dp.as_ref().map_or(0, |(r, _)| *r);
    let failures: Vec<(usize, WorkerError)> =
        reports.iter().filter_map(|r| r.error.clone().map(|e| (rank, e))).collect();
    if let Some(e) = train_error(failures, false) {
        return Err(e);
    }

    // Reassemble the global stage vector and find the loss reporter.
    let mut stages = cfg.stages.clone();
    let mut losses = Vec::new();
    let mut peaks = vec![0usize; p];
    let mut parked = vec![0usize; p];
    let mut trace = cfg.trace.then(|| Trace::new(p as u32));
    for report in reports {
        peaks[report.device.idx()] = report.peak_stash_bytes;
        parked[report.device.idx()] = report.peak_mailbox_parked;
        if let Some(trace) = &mut trace {
            trace.events.extend(report.events);
        }
        for (s, module) in report.modules {
            stages[s as usize] = module;
        }
        if !report.losses.is_empty() {
            losses = report.losses;
        }
    }
    if let Some(trace) = &mut trace {
        trace.normalize();
    }
    Ok(TrainOutput { losses, stages, peak_stash_bytes: peaks, peak_mailbox_parked: parked, trace })
}

// ---------------------------------------------------------------------------
// Checkpointed (resumable) training
// ---------------------------------------------------------------------------

/// The data a chunked run draws from: one pipeline, or one shard per
/// data-parallel replica.
enum DataRef<'a> {
    Single(&'a [IterationData]),
    Dp(&'a [&'a [IterationData]]),
}

impl DataRef<'_> {
    fn iterations(&self) -> usize {
        match self {
            DataRef::Single(d) => d.len(),
            DataRef::Dp(shards) => {
                let n = shards.first().map_or(0, |s| s.len());
                assert!(shards.iter().all(|s| s.len() == n), "shards must have equal length");
                n
            }
        }
    }

    fn world(&self) -> u32 {
        match self {
            DataRef::Single(_) => 1,
            DataRef::Dp(shards) => shards.len() as u32,
        }
    }
}

/// Mutable run state carried across chunks (and across a failure/resume
/// boundary — a [`Checkpoint`] is exactly a frozen copy of this).
struct RunState {
    stages: Vec<Stage>,
    losses: Vec<f32>,
    peaks: Vec<usize>,
    /// Per-device mailbox high-water marks, `max` over chunks like
    /// `peaks` (not stored in a checkpoint — a per-run measurement).
    parked: Vec<usize>,
    trace: Option<Trace>,
    last_ckpt: Option<Checkpoint>,
    /// Data-stream cursor of the checkpoint this run resumed from (with
    /// its iteration), so checkpoints re-captured mid-resume keep a
    /// correctly advanced cursor instead of silently dropping it.
    rng_origin: Option<(RngCursor, u32)>,
    /// Plan annotation inherited from the resumed checkpoint.
    plan_json: Option<String>,
}

/// Advance a resumed run's RNG cursor to a new boundary. The per-iteration
/// stride is derived from the origin cursor (`draws / iteration`); when it
/// cannot be derived exactly (an origin at iteration 0 with no stride
/// information), only the origin boundary itself keeps a cursor.
fn cursor_at(origin: &(RngCursor, u32), iteration: u32) -> Option<RngCursor> {
    let (cursor, at) = origin;
    if iteration == *at {
        return Some(*cursor);
    }
    if *at > 0 && cursor.draws.is_multiple_of(*at as u64) {
        let per_iter = cursor.draws / *at as u64;
        return Some(RngCursor { seed: cursor.seed, draws: per_iter * iteration as u64 });
    }
    None
}

fn capture_checkpoint(
    cfg: &TrainerConfig,
    state: &RunState,
    iteration: u32,
    world: u32,
) -> Checkpoint {
    Checkpoint {
        fingerprint: fingerprint_of(cfg, world),
        iteration,
        world,
        schedule: cfg.schedule.clone(),
        stages: state.stages.clone(),
        optimizer: OptimizerState::Sgd { lr: cfg.lr },
        losses: state.losses.clone(),
        peak_stash_bytes: state.peaks.iter().map(|&b| b as u64).collect(),
        rng: state.rng_origin.as_ref().and_then(|o| cursor_at(o, iteration)),
        plan_json: state.plan_json.clone(),
        trace: state.trace.clone(),
    }
}

/// The chunked engine behind every resumable entry point: execute global
/// iterations `start..n` in chunks delimited by the checkpoint policy,
/// capturing a durable [`Checkpoint`] at each boundary. Bitwise identical
/// to a single uninterrupted run — each iteration is a pure function of
/// (weights, its data), the per-device stash peak profile repeats every
/// iteration so `max` over chunks equals `max` over the whole run, and
/// chunk traces share one clock origin (resumed traces are shifted past
/// the pre-failure makespan).
fn run_chunked(
    cfg: &TrainerConfig,
    data: DataRef<'_>,
    start: u32,
    mut state: RunState,
) -> Result<TrainOutput, Box<FailedRun>> {
    let n = data.iterations() as u32;
    let world = data.world();
    let every = cfg.checkpoint.every;
    let origin = Instant::now();
    // Resumed spans continue where the interrupted timeline stopped.
    let shift = state.trace.as_ref().map_or(0.0, Trace::makespan);

    // One reusable chunk config: only the stages change between chunks.
    let mut chunk_cfg = cfg.clone();
    let mut i = start;
    while i < n {
        if cfg.checkpoint.is_boundary(i) {
            state.last_ckpt = Some(capture_checkpoint(cfg, &state, i, world));
        }
        // Next chunk ends at the following policy boundary (or the run's
        // end when checkpointing is off).
        let j = match i.checked_div(every) {
            Some(q) => ((q + 1) * every).min(n),
            None => n,
        };
        chunk_cfg.stages.clone_from(&state.stages);
        let outcome = match data {
            DataRef::Single(d) => try_train_with_dp(
                &chunk_cfg,
                &d[i as usize..j as usize],
                None,
                &Arc::new(AbortFlag::new()),
                origin,
                i,
            ),
            DataRef::Dp(shards) => {
                let windows: Vec<&[IterationData]> =
                    shards.iter().map(|s| &s[i as usize..j as usize]).collect();
                try_train_dp_segment(&chunk_cfg, &windows, origin, i)
            }
        };
        match outcome {
            Ok(out) => {
                state.stages = out.stages;
                state.losses.extend(out.losses);
                for (acc, chunk) in state.peaks.iter_mut().zip(&out.peak_stash_bytes) {
                    *acc = (*acc).max(*chunk);
                }
                for (acc, chunk) in state.parked.iter_mut().zip(&out.peak_mailbox_parked) {
                    *acc = (*acc).max(*chunk);
                }
                if let (Some(t), Some(chunk_t)) = (&mut state.trace, &out.trace) {
                    t.merge_shifted(chunk_t, shift);
                }
            }
            Err(error) => {
                return Err(Box::new(FailedRun { error, checkpoint: state.last_ckpt.take() }))
            }
        }
        i = j;
    }
    Ok(TrainOutput {
        losses: state.losses,
        stages: state.stages,
        peak_stash_bytes: state.peaks,
        peak_mailbox_parked: state.parked,
        trace: state.trace,
    })
}

fn fresh_state(cfg: &TrainerConfig, devices: usize) -> RunState {
    RunState {
        stages: cfg.stages.clone(),
        losses: Vec::new(),
        peaks: vec![0; devices],
        parked: vec![0; devices],
        trace: cfg.trace.then(|| Trace::new(devices as u32)),
        last_ckpt: None,
        rng_origin: None,
        plan_json: None,
    }
}

/// [`try_train`] with durable checkpoints and failure injection: runs
/// under [`TrainerConfig::checkpoint`] / [`TrainerConfig::failure`], and
/// on a crash hands back the typed error *plus* the last durable
/// [`Checkpoint`] so the caller can [`resume`]. A completed run is bitwise
/// identical to [`try_train`] — checkpointing only observes.
pub fn try_train_resumable(
    cfg: &TrainerConfig,
    data: &[IterationData],
) -> Result<TrainOutput, Box<FailedRun>> {
    let p = cfg.schedule.lists.len();
    run_chunked(cfg, DataRef::Single(data), 0, fresh_state(cfg, p))
}

/// [`try_train_data_parallel`] with durable checkpoints and failure
/// injection (see [`try_train_resumable`]). Replicas end bit-identical, so
/// the checkpoint stores one copy of the stages; peaks cover all
/// `world · P` global devices.
pub fn try_train_data_parallel_resumable(
    cfg: &TrainerConfig,
    data: &[Vec<IterationData>],
) -> Result<TrainOutput, Box<FailedRun>> {
    let devices = cfg.schedule.lists.len() * data.len();
    let views: Vec<&[IterationData]> = data.iter().map(Vec::as_slice).collect();
    run_chunked(cfg, DataRef::Dp(&views), 0, fresh_state(cfg, devices))
}

fn resume_state(cfg: &TrainerConfig, ckpt: &Checkpoint, devices: usize) -> RunState {
    RunState {
        stages: ckpt.stages.clone(),
        losses: ckpt.losses.clone(),
        peaks: ckpt.peak_stash_bytes.iter().map(|&b| b as usize).collect(),
        parked: vec![0; devices],
        trace: cfg.trace.then(|| ckpt.trace.clone().unwrap_or_else(|| Trace::new(devices as u32))),
        last_ckpt: Some(ckpt.clone()),
        rng_origin: ckpt.rng.map(|c| (c, ckpt.iteration)),
        plan_json: ckpt.plan_json.clone(),
    }
}

fn guard_resume(
    cfg: &TrainerConfig,
    ckpt: &Checkpoint,
    world: u32,
    available: usize,
) -> Result<(), ResumeError> {
    ckpt.guard(fingerprint_of(cfg, world)).map_err(ResumeError::Checkpoint)?;
    if ckpt.iteration as usize > available {
        return Err(ResumeError::BeyondData { iteration: ckpt.iteration, available });
    }
    Ok(())
}

/// Resume a single-pipeline run from a durable checkpoint: validates the
/// schema/fingerprint guards, then drives the remaining iterations of
/// `data`. The returned [`TrainOutput`] — losses, final weights, and peak
/// stash bytes — is **bitwise identical** to an uninterrupted run over the
/// same `data`; a resumed trace continues on the pre-failure clock.
pub fn resume(
    cfg: &TrainerConfig,
    ckpt: &Checkpoint,
    data: &[IterationData],
) -> Result<TrainOutput, ResumeError> {
    guard_resume(cfg, ckpt, 1, data.len())?;
    let p = cfg.schedule.lists.len();
    run_chunked(cfg, DataRef::Single(data), ckpt.iteration, resume_state(cfg, ckpt, p))
        .map_err(ResumeError::Run)
}

/// [`resume`] for data-parallel runs (`data[g]` is replica `g`'s full
/// shard, exactly as passed to [`try_train_data_parallel_resumable`]).
pub fn resume_data_parallel(
    cfg: &TrainerConfig,
    ckpt: &Checkpoint,
    data: &[Vec<IterationData>],
) -> Result<TrainOutput, ResumeError> {
    let world = data.len() as u32;
    guard_resume(cfg, ckpt, world, data.first().map_or(0, Vec::len))?;
    let devices = cfg.schedule.lists.len() * data.len();
    let views: Vec<&[IterationData]> = data.iter().map(Vec::as_slice).collect();
    run_chunked(cfg, DataRef::Dp(&views), ckpt.iteration, resume_state(cfg, ckpt, devices))
        .map_err(ResumeError::Run)
}

/// Freeze a *completed* run as a checkpoint at iteration `iterations` —
/// what a `--save` style workflow writes after training finishes.
pub fn checkpoint_of(
    cfg: &TrainerConfig,
    out: &TrainOutput,
    iterations: u32,
    world: u32,
) -> Checkpoint {
    let state = RunState {
        stages: out.stages.clone(),
        losses: out.losses.clone(),
        peaks: out.peak_stash_bytes.clone(),
        parked: out.peak_mailbox_parked.clone(),
        trace: out.trace.clone(),
        last_ckpt: None,
        rng_origin: None,
        plan_json: None,
    };
    capture_checkpoint(cfg, &state, iterations, world)
}

/// The ground truth: single-device synchronous training with the same
/// micro-batch semantics (per-micro-batch gradients reduced in order at
/// the flush). Every pipeline schedule must reproduce these bits exactly.
pub fn sequential_reference(
    stages: &[Stage],
    data: &[IterationData],
    lr: f32,
    loss: &LossKind,
) -> TrainOutput {
    let mut stages = stages.to_vec();
    let mut losses = Vec::with_capacity(data.len());
    for iteration in data {
        let b = iteration.inputs.len();
        let mut totals: Vec<_> = stages.iter().map(Stage::zero_grads).collect();
        let mut iter_loss = 0.0f32;
        for mb in 0..b {
            // Forward through the whole chain, stashing per stage.
            let mut x = iteration.inputs[mb].clone();
            let mut stashes = Vec::with_capacity(stages.len());
            for stage in &stages {
                let (y, st) = stage.forward(&x);
                stashes.push(st);
                x = y;
            }
            let (l, mut dy) = match loss {
                LossKind::Mse => mse(&x, &iteration.targets[mb]),
                LossKind::CrossEntropy { labels } => softmax_cross_entropy(&x, &labels[mb]),
            };
            iter_loss += l;
            // Backward in reverse, accumulating into the per-stage totals
            // in micro-batch order (same reduction order as the workers).
            for (s, stage) in stages.iter().enumerate().rev() {
                let (dx, grads) = stage.backward(&stashes[s], &dy);
                totals[s].accumulate(&grads);
                dy = dx;
            }
        }
        for (stage, total) in stages.iter_mut().zip(&totals) {
            stage.sgd_step(total, lr);
        }
        losses.push(iter_loss / b as f32);
    }
    TrainOutput {
        losses,
        stages,
        peak_stash_bytes: Vec::new(),
        peak_mailbox_parked: Vec::new(),
        trace: None,
    }
}

/// Convenience: deterministic random regression data shaped for a pipeline
/// (`B` micro-batches of `rows × width`), reproducible from a seed.
pub fn synthetic_data(
    seed: u64,
    iterations: usize,
    micro_batches: usize,
    rows: usize,
    width: usize,
) -> Vec<IterationData> {
    synthetic_data_at(seed, 0, iterations, micro_batches, rows, width)
}

/// Scalar draws one [`synthetic_data`] iteration consumes from the seeded
/// stream — the unit a checkpoint's [`hanayo_ckpt::RngCursor`] counts in
/// (`draws = iteration · this`).
pub fn synthetic_draws_per_iteration(micro_batches: usize, rows: usize, width: usize) -> u64 {
    2 * (micro_batches * rows * width) as u64
}

/// The tail of a [`synthetic_data`] stream: iterations
/// `start..start + iterations`, drawn from the *same* seeded stream the
/// full run would consume — `synthetic_data(s, n, ..)[k..]` equals
/// `synthetic_data_at(s, k, n - k, ..)` exactly. This is how a resumed run
/// regenerates precisely the data it has not yet trained on.
pub fn synthetic_data_at(
    seed: u64,
    start: usize,
    iterations: usize,
    micro_batches: usize,
    rows: usize,
    width: usize,
) -> Vec<IterationData> {
    use hanayo_tensor::rng::{seeded_at, uniform};
    let skip = start as u64 * synthetic_draws_per_iteration(micro_batches, rows, width);
    let mut rng = seeded_at(seed, skip);
    (0..iterations)
        .map(|_| IterationData {
            inputs: (0..micro_batches).map(|_| uniform(&mut rng, rows, width, 1.0)).collect(),
            targets: (0..micro_batches).map(|_| uniform(&mut rng, rows, width, 0.5)).collect(),
        })
        .collect()
}

/// Which device reports losses (holds the last stage); exposed for tests.
pub fn loss_device(schedule: &Schedule) -> DeviceId {
    let last = hanayo_core::ids::StageId(schedule.stage_map.stages - 1);
    schedule.stage_map.device_of(MicroBatch(0), last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanayo_core::config::{PipelineConfig, Scheme};
    use hanayo_core::schedule::build_schedule;
    use hanayo_model::builders::MicroModel;

    fn job(p: u32, b: u32, scheme: Scheme) -> (TrainerConfig, Vec<IterationData>) {
        let cfg = PipelineConfig::new(p, b, scheme).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let model =
            MicroModel { width: 8, total_blocks: schedule.stage_map.stages as usize, seed: 7 };
        let stages = model.build_stages(schedule.stage_map.stages);
        let data = synthetic_data(3, 2, b as usize, 2, 8);
        let trainer = TrainerConfig::new(schedule, stages, 0.05, LossKind::Mse);
        (trainer, data)
    }

    #[test]
    fn dapple_matches_sequential_bitwise() {
        let (cfg, data) = job(2, 4, Scheme::Dapple);
        let pipe = train(&cfg, &data);
        let seq = sequential_reference(&cfg.stages, &data, cfg.lr, &cfg.loss);
        assert_eq!(pipe.stages, seq.stages, "weights diverged");
        assert_eq!(pipe.losses, seq.losses, "losses diverged");
    }

    #[test]
    fn hanayo_matches_sequential_bitwise() {
        let (cfg, data) = job(2, 4, Scheme::Hanayo { waves: 2 });
        let pipe = train(&cfg, &data);
        let seq = sequential_reference(&cfg.stages, &data, cfg.lr, &cfg.loss);
        assert_eq!(pipe.stages, seq.stages);
        assert_eq!(pipe.losses, seq.losses);
    }

    #[test]
    fn losses_decrease_over_iterations() {
        let cfg = PipelineConfig::new(2, 2, Scheme::Dapple).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let model = MicroModel { width: 8, total_blocks: 2, seed: 1 };
        let stages = model.build_stages(2);
        // Same data every iteration → loss must fall.
        let one = synthetic_data(9, 1, 2, 4, 8).remove(0);
        let data = vec![one.clone(); 8];
        let cfg = TrainerConfig::new(schedule, stages, 0.05, LossKind::Mse);
        let out = train(&cfg, &data);
        assert!(out.losses.last().unwrap() < out.losses.first().unwrap(), "{:?}", out.losses);
    }

    #[test]
    fn full_recompute_is_bit_identical_and_stashes_less() {
        let (cfg, data) = job(2, 4, Scheme::Hanayo { waves: 2 });
        let plain = train(&cfg, &data);
        let ckpt = train(&TrainerConfig { recompute: Recompute::Full, ..cfg.clone() }, &data);
        assert_eq!(plain.stages, ckpt.stages, "checkpointed weights diverged");
        assert_eq!(plain.losses, ckpt.losses, "checkpointed losses diverged");
        for (d, (c, p)) in ckpt.peak_stash_bytes.iter().zip(&plain.peak_stash_bytes).enumerate() {
            assert!(c < p, "device {d}: checkpointed peak {c} !< plain peak {p}");
        }
    }

    #[test]
    fn tracing_observes_without_perturbing() {
        use hanayo_trace::TraceKind;
        let (cfg, data) = job(2, 4, Scheme::Hanayo { waves: 2 });
        let plain = train(&cfg, &data);
        assert!(plain.trace.is_none(), "tracing is opt-in");
        let traced = train(&TrainerConfig { trace: true, ..cfg.clone() }, &data);
        assert_eq!(plain.losses, traced.losses, "tracing changed the losses");
        assert_eq!(plain.stages, traced.stages, "tracing changed the weights");
        let trace = traced.trace.expect("trace requested");
        trace.validate().unwrap();
        assert_eq!(trace.devices, 2);
        // Two iterations of B=4 across every stage: B·S forwards and
        // backwards per iteration, an optimizer step per device per
        // iteration, and the inter-device transfers.
        let ops = 2 * 4 * cfg.schedule.stage_map.stages as usize;
        let count = |k: TraceKind| trace.events.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(TraceKind::Fwd), ops);
        assert_eq!(count(TraceKind::Bwd), ops);
        // One local-work Optim span per stage per iteration (the flush
        // walks each device's stages).
        assert_eq!(count(TraceKind::Optim), 2 * cfg.schedule.stage_map.stages as usize);
        assert!(count(TraceKind::Send) > 0 && count(TraceKind::Recv) > 0);
        assert_eq!(count(TraceKind::Allreduce), 0, "no data parallelism here");
        assert_eq!(count(TraceKind::Recompute), 0, "no checkpointing here");
        assert!(trace.duration() > 0.0);
    }

    #[test]
    fn checkpointed_tracing_splits_replay_from_backward() {
        use hanayo_trace::TraceKind;
        let (cfg, data) = job(2, 2, Scheme::Dapple);
        let cfg = TrainerConfig { recompute: Recompute::Full, trace: true, ..cfg };
        let trace = train(&cfg, &data).trace.unwrap();
        let recomputes = trace.events.iter().filter(|e| e.kind == TraceKind::Recompute).count();
        let backwards = trace.events.iter().filter(|e| e.kind == TraceKind::Bwd).count();
        assert_eq!(recomputes, backwards, "one replay rides every checkpointed backward");
        trace.validate().unwrap();
    }

    #[test]
    fn data_parallel_trace_merges_onto_global_ranks() {
        use hanayo_trace::TraceKind;
        let (cfg, _) = job(2, 2, Scheme::Hanayo { waves: 1 });
        let cfg = TrainerConfig { trace: true, ..cfg };
        let shards = vec![synthetic_data(41, 1, 2, 2, 8), synthetic_data(42, 1, 2, 2, 8)];
        let out = train_data_parallel(&cfg, &shards);
        let trace = out.trace.expect("trace requested");
        trace.validate().unwrap();
        assert_eq!(trace.devices, 4, "2 replicas × 2 devices");
        let devices: std::collections::HashSet<u32> =
            trace.events.iter().map(|e| e.device).collect();
        assert_eq!(devices.len(), 4, "every global rank contributed spans");
        assert!(trace.events.iter().any(|e| e.kind == TraceKind::Allreduce));
        // The blocking all-reduce rendezvous is never inside an Optim
        // span: the wait must count as communication, not busy compute.
        for ar in trace.events.iter().filter(|e| e.kind == TraceKind::Allreduce) {
            for op in
                trace.events.iter().filter(|e| e.kind == TraceKind::Optim && e.device == ar.device)
            {
                assert!(
                    ar.t_end <= op.t_start + 1e-12 || ar.t_start >= op.t_end - 1e-12,
                    "allreduce [{}, {}] overlaps optim [{}, {}] on device {}",
                    ar.t_start,
                    ar.t_end,
                    op.t_start,
                    op.t_end,
                    ar.device
                );
            }
        }
    }

    #[test]
    fn corrupt_schedule_surfaces_typed_error_not_a_poisoned_join() {
        use hanayo_core::action::{Action, CommDir};
        let (mut cfg, data) = job(2, 2, Scheme::Dapple);
        // Drop device 1's first receive: its forward finds no input.
        let list = &mut cfg.schedule.lists[1].actions;
        let pos = list
            .iter()
            .position(|a| matches!(a, Action::Comm(op) if op.dir == CommDir::Recv))
            .expect("device 1 receives activations");
        list.remove(pos);
        let err = try_train(&cfg, &data).unwrap_err();
        assert!(
            matches!(
                err.primary,
                crate::worker::WorkerError::MissingInput { device: DeviceId(1), .. }
            ),
            "unexpected primary: {}",
            err.primary
        );
        // Every reported failure is either the root cause or a cascade,
        // and a single-pipeline run carries no replica tag.
        assert_eq!(err.replica, None);
        assert!(err.failures.iter().all(|(_, e)| e == &err.primary || e.is_cascade()));
    }

    #[test]
    fn data_parallel_failure_names_the_replica() {
        use hanayo_core::action::{Action, CommDir};
        let (mut cfg, _) = job(2, 2, Scheme::Dapple);
        let list = &mut cfg.schedule.lists[1].actions;
        let pos = list
            .iter()
            .position(|a| matches!(a, Action::Comm(op) if op.dir == CommDir::Recv))
            .unwrap();
        list.remove(pos);
        // Both replicas run the same corrupt schedule; the error must say
        // which replica each failure came from (device ids are local).
        let shards = vec![synthetic_data(31, 1, 2, 2, 8), synthetic_data(32, 1, 2, 2, 8)];
        let err = try_train_data_parallel(&cfg, &shards).unwrap_err();
        assert!(err.replica.is_some(), "data-parallel errors carry the replica rank");
        assert!(err.to_string().contains("replica"), "{err}");
        for (rank, _) in &err.failures {
            assert!(*rank < 2);
        }
    }

    #[test]
    fn train_panic_carries_the_typed_message() {
        use hanayo_core::action::{Action, CommDir};
        let (mut cfg, data) = job(2, 2, Scheme::Dapple);
        let list = &mut cfg.schedule.lists[1].actions;
        let pos = list
            .iter()
            .position(|a| matches!(a, Action::Comm(op) if op.dir == CommDir::Recv))
            .unwrap();
        list.remove(pos);
        let result = std::panic::catch_unwind(|| train(&cfg, &data));
        let msg = *result.unwrap_err().downcast::<String>().expect("string panic payload");
        assert!(msg.contains("P1"), "panic must name the device: {msg}");
        assert!(msg.contains("forward found no input"), "panic must name the op: {msg}");
    }

    #[test]
    fn rejects_replicated_schedules() {
        let cfg = PipelineConfig::new(2, 2, Scheme::Chimera).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let model = MicroModel { width: 8, total_blocks: 2, seed: 1 };
        let stages = model.build_stages(2);
        let data = synthetic_data(1, 1, 2, 2, 8);
        let cfg = TrainerConfig::new(schedule, stages, 0.1, LossKind::Mse);
        let result = std::panic::catch_unwind(|| train(&cfg, &data));
        assert!(result.is_err(), "chimera-native must be rejected");
    }

    #[test]
    fn data_parallel_matches_merged_batch_up_to_reassociation() {
        let (cfg, _) = job(2, 2, Scheme::Hanayo { waves: 1 });
        let shards = vec![synthetic_data(11, 2, 2, 2, 8), synthetic_data(12, 2, 2, 2, 8)];
        let out = train_data_parallel(&cfg, &shards);
        // Equivalent sequential run: all micro-batches of both shards,
        // shard-major (rank order), per iteration. The DP hub reduces
        // per-shard sums — a different parenthesisation of the same sum —
        // so the comparison is approximate, not bitwise.
        let merged: Vec<IterationData> = (0..2)
            .map(|i| IterationData {
                inputs: shards.iter().flat_map(|s| s[i].inputs.clone()).collect(),
                targets: shards.iter().flat_map(|s| s[i].targets.clone()).collect(),
            })
            .collect();
        let seq = sequential_reference(&cfg.stages, &merged, cfg.lr, &cfg.loss);
        for (a, b) in out.stages.iter().zip(&seq.stages) {
            let diff = a
                .flat_params()
                .iter()
                .zip(b.flat_params())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max);
            assert!(diff < 1e-5, "DP diverged from merged batch by {diff}");
        }
    }

    #[test]
    fn data_parallel_replicas_end_bit_identical() {
        // Both replicas apply the same reduced gradients to the same
        // initial weights: their final stages must be bit-identical. We
        // verify via the hub determinism test plus re-running: two DP runs
        // must agree exactly.
        let (cfg, _) = job(2, 2, Scheme::Hanayo { waves: 1 });
        let shards = vec![synthetic_data(21, 2, 2, 2, 8), synthetic_data(22, 2, 2, 2, 8)];
        let a = train_data_parallel(&cfg, &shards);
        let b = train_data_parallel(&cfg, &shards);
        assert_eq!(a.stages, b.stages);
        assert_eq!(a.losses, b.losses);
    }

    // -----------------------------------------------------------------
    // Checkpoint / failure-injection / resume
    // -----------------------------------------------------------------

    fn bitwise_equal(a: &TrainOutput, b: &TrainOutput) {
        let bits = |o: &TrainOutput| {
            o.stages.iter().flat_map(Stage::flat_params).map(f32::to_bits).collect::<Vec<_>>()
        };
        assert_eq!(bits(a), bits(b), "weights diverged");
        assert_eq!(
            a.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            b.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            "losses diverged"
        );
        assert_eq!(a.peak_stash_bytes, b.peak_stash_bytes, "stash peaks diverged");
    }

    #[test]
    fn resumable_run_without_failure_matches_plain_train() {
        // Chunked execution is an implementation detail: with the policy
        // on but no failure, the output is bitwise the single-chunk one.
        let (mut cfg, data) = job(2, 4, Scheme::Hanayo { waves: 2 });
        let plain = train(&cfg, &data);
        cfg.checkpoint = CheckpointPolicy::every(1);
        let chunked = try_train_resumable(&cfg, &data).unwrap();
        bitwise_equal(&plain, &chunked);
    }

    #[test]
    fn killed_run_emits_last_durable_checkpoint_and_resumes_bitwise() {
        let (mut cfg, _) = job(2, 4, Scheme::Dapple);
        let data = synthetic_data(3, 4, 4, 2, 8);
        let uninterrupted = train(&cfg, &data);

        cfg.checkpoint = CheckpointPolicy::every(2);
        cfg.failure = FailurePlan::KillDevice { device: 1, iteration: 3 };
        let failed = try_train_resumable(&cfg, &data).unwrap_err();
        assert!(
            matches!(
                failed.error.primary,
                WorkerError::Injected { device: DeviceId(1), iteration: 3 }
            ),
            "unexpected primary: {}",
            failed.error.primary
        );
        let ckpt = failed.checkpoint.expect("a durable checkpoint was taken");
        // Killed at iteration 3 with k = 2: the last boundary is 2.
        assert_eq!(ckpt.iteration, 2);
        assert_eq!(ckpt.losses.len(), 2);

        // Resume (disarming the failure) and land on the exact bits of the
        // uninterrupted run. The checkpoint round-trips through its file
        // format on the way, so on-disk exactness is part of the claim.
        let restored =
            hanayo_ckpt::Checkpoint::from_json(&ckpt.to_json().unwrap()).expect("valid envelope");
        let resume_cfg = TrainerConfig { failure: FailurePlan::None, ..cfg.clone() };
        let resumed = resume(&resume_cfg, &restored, &data).unwrap();
        bitwise_equal(&uninterrupted, &resumed);
    }

    #[test]
    fn kill_before_first_boundary_resumes_from_scratch() {
        let (mut cfg, _) = job(2, 2, Scheme::GPipe);
        let data = synthetic_data(5, 3, 2, 2, 8);
        let uninterrupted = train(&cfg, &data);
        cfg.checkpoint = CheckpointPolicy::every(2);
        cfg.failure = FailurePlan::KillDevice { device: 0, iteration: 1 };
        let failed = try_train_resumable(&cfg, &data).unwrap_err();
        let ckpt = failed.checkpoint.expect("the iteration-0 checkpoint exists");
        assert_eq!(ckpt.iteration, 0);
        let resume_cfg = TrainerConfig { failure: FailurePlan::None, ..cfg.clone() };
        let resumed = resume(&resume_cfg, &ckpt, &data).unwrap();
        bitwise_equal(&uninterrupted, &resumed);
    }

    #[test]
    fn checkpointing_off_means_no_durable_checkpoint() {
        let (mut cfg, data) = job(2, 2, Scheme::Dapple);
        cfg.failure = FailurePlan::KillDevice { device: 0, iteration: 1 };
        let failed = try_train_resumable(&cfg, &data).unwrap_err();
        assert!(failed.checkpoint.is_none());
        assert!(failed.to_string().contains("no durable checkpoint"), "{failed}");
    }

    #[test]
    fn dropped_link_fails_the_sender_with_a_typed_error() {
        let (mut cfg, data) = job(2, 2, Scheme::Dapple);
        cfg.failure = FailurePlan::DropLink { src: 0, dst: 1, iteration: 1 };
        let err = try_train(&cfg, &data).unwrap_err();
        assert!(
            matches!(
                err.primary,
                WorkerError::LinkDown { device: DeviceId(0), peer: DeviceId(1), iteration: 1 }
            ),
            "unexpected primary: {}",
            err.primary
        );
        // Iteration 0 ran before the link died.
        assert!(err.to_string().contains("link to P1 down"), "{err}");
    }

    #[test]
    fn resume_under_a_different_config_is_refused() {
        let (mut cfg, _) = job(2, 2, Scheme::Dapple);
        let data = synthetic_data(3, 3, 2, 2, 8);
        cfg.checkpoint = CheckpointPolicy::every(1);
        cfg.failure = FailurePlan::KillDevice { device: 0, iteration: 2 };
        let ckpt = try_train_resumable(&cfg, &data).unwrap_err().checkpoint.unwrap();
        // A different learning rate is a different program.
        let other = TrainerConfig { lr: 0.01, failure: FailurePlan::None, ..cfg.clone() };
        match resume(&other, &ckpt, &data) {
            Err(ResumeError::Checkpoint(CkptError::Fingerprint { .. })) => {}
            other => panic!("expected a fingerprint refusal, got {other:?}"),
        }
        // And a checkpoint beyond the supplied data cannot resume.
        match resume(
            &TrainerConfig { failure: FailurePlan::None, ..cfg.clone() },
            &ckpt,
            &data[..1],
        ) {
            Err(ResumeError::BeyondData { iteration: 2, available: 1 }) => {}
            other => panic!("expected BeyondData, got {other:?}"),
        }
    }

    #[test]
    fn replica_thread_panic_before_workers_spawn_does_not_hang() {
        // Replica 1's shard is malformed: its validate() assert fires on
        // the replica thread before any worker exists. Replica 0's workers
        // are by then blocked in the shared all-reduce hub — the panicking
        // thread itself must trip the latch, or the run deadlocks.
        let (cfg, _) = job(2, 2, Scheme::Hanayo { waves: 1 });
        let good = synthetic_data(71, 1, 2, 2, 8);
        let mut bad = synthetic_data(72, 1, 2, 2, 8);
        bad[0].inputs.pop(); // one input short of the micro-batch count
        let err = try_train_data_parallel(&cfg, &[good, bad]).unwrap_err();
        assert_eq!(err.replica, Some(1), "the failing replica must be named: {err}");
        assert!(
            matches!(err.primary, WorkerError::Panicked { .. }),
            "expected the typed panic, got {}",
            err.primary
        );
        assert!(err.to_string().contains("one input per micro-batch"), "{err}");
    }

    #[test]
    fn resumed_runs_keep_an_advanced_rng_cursor_on_recapture() {
        use hanayo_ckpt::RngCursor;
        // A resume that fails again must hand back a checkpoint whose RNG
        // cursor advanced with it, not one that silently dropped it.
        let (mut cfg, _) = job(2, 2, Scheme::Dapple);
        let data = synthetic_data(3, 6, 2, 2, 8);
        cfg.checkpoint = CheckpointPolicy::every(2);
        cfg.failure = FailurePlan::KillDevice { device: 0, iteration: 3 };
        let mut ckpt = try_train_resumable(&cfg, &data).unwrap_err().checkpoint.unwrap();
        assert_eq!(ckpt.iteration, 2);
        // Stamp the cursor the way the ckpt binary does (32 draws/iter).
        ckpt.rng = Some(RngCursor { seed: 3, draws: 64 });
        ckpt.plan_json = Some("{\"dp\":1}".to_string());
        // Resume with a *later* failure armed: it crosses the boundary at
        // iteration 4 before dying at 5.
        cfg.failure = FailurePlan::KillDevice { device: 0, iteration: 5 };
        let failed = match resume(&cfg, &ckpt, &data) {
            Err(ResumeError::Run(f)) => f,
            other => panic!("expected the second failure, got {other:?}"),
        };
        let newer = failed.checkpoint.expect("a newer durable checkpoint");
        assert_eq!(newer.iteration, 4);
        assert_eq!(
            newer.rng,
            Some(RngCursor { seed: 3, draws: 128 }),
            "the cursor must advance with the re-captured boundary"
        );
        assert_eq!(newer.plan_json.as_deref(), Some("{\"dp\":1}"));
    }

    #[test]
    fn fingerprint_covers_cross_entropy_labels() {
        // Different label payloads are different programs: the token (and
        // hence the fingerprint) must move even when the kind matches.
        let (cfg, _) = job(2, 2, Scheme::Dapple);
        let with = |labels: Vec<Vec<usize>>| TrainerConfig {
            loss: LossKind::CrossEntropy { labels },
            ..cfg.clone()
        };
        let a = fingerprint_of(&with(vec![vec![0, 1], vec![1, 0]]), 1);
        let b = fingerprint_of(&with(vec![vec![0, 1], vec![1, 1]]), 1);
        assert_ne!(a, b, "label payloads must move the fingerprint");
        assert_eq!(a, fingerprint_of(&with(vec![vec![0, 1], vec![1, 0]]), 1));
        assert_ne!(a, fingerprint_of(&cfg, 1), "kind change must move the fingerprint");
    }

    #[test]
    fn data_parallel_kill_and_resume_is_bitwise_equal() {
        let (mut cfg, _) = job(2, 2, Scheme::Hanayo { waves: 1 });
        let shards = vec![synthetic_data(61, 4, 2, 2, 8), synthetic_data(62, 4, 2, 2, 8)];
        let uninterrupted = train_data_parallel(&cfg, &shards);

        cfg.checkpoint = CheckpointPolicy::every(2);
        // Global rank 3 = replica 1, local device 1.
        cfg.failure = FailurePlan::KillDevice { device: 3, iteration: 2 };
        let failed = try_train_data_parallel_resumable(&cfg, &shards).unwrap_err();
        assert_eq!(failed.error.replica, Some(1), "the replica must be named");
        assert!(matches!(
            failed.error.primary,
            WorkerError::Injected { device: DeviceId(1), iteration: 2 }
        ));
        let ckpt = failed.checkpoint.expect("durable checkpoint");
        assert_eq!(ckpt.iteration, 2);
        assert_eq!(ckpt.world, 2);
        assert_eq!(ckpt.peak_stash_bytes.len(), 4, "peaks cover all global devices");

        let resume_cfg = TrainerConfig { failure: FailurePlan::None, ..cfg.clone() };
        let resumed = resume_data_parallel(&resume_cfg, &ckpt, &shards).unwrap();
        bitwise_equal(&uninterrupted, &resumed);
    }

    #[test]
    fn resumed_trace_continues_on_one_clock() {
        use hanayo_trace::TraceKind;
        let (mut cfg, _) = job(2, 2, Scheme::Dapple);
        let data = synthetic_data(9, 4, 2, 2, 8);
        cfg.trace = true;
        let uninterrupted = train(&cfg, &data);

        cfg.checkpoint = CheckpointPolicy::every(2);
        cfg.failure = FailurePlan::KillDevice { device: 0, iteration: 2 };
        let ckpt = try_train_resumable(&cfg, &data).unwrap_err().checkpoint.unwrap();
        let resume_cfg = TrainerConfig { failure: FailurePlan::None, ..cfg.clone() };
        let resumed = resume(&resume_cfg, &ckpt, &data).unwrap();

        let (a, b) = (uninterrupted.trace.unwrap(), resumed.trace.unwrap());
        b.validate().expect("merged resumed trace stays canonical");
        // Same work, same structure: identical span multiset per kind —
        // wall-clock times differ, the executed ops do not.
        let count =
            |t: &hanayo_trace::Trace, k: TraceKind| t.events.iter().filter(|e| e.kind == k).count();
        for k in
            [TraceKind::Fwd, TraceKind::Bwd, TraceKind::Send, TraceKind::Recv, TraceKind::Optim]
        {
            assert_eq!(count(&a, k), count(&b, k), "{k} span count diverged");
        }
        // The resumed segment starts after the pre-failure makespan.
        let ckpt_makespan = ckpt.trace.as_ref().unwrap().makespan();
        assert!(b.makespan() > ckpt_makespan);
    }

    #[test]
    fn worker_panic_surfaces_as_typed_error_naming_the_device() {
        // A stage whose width disagrees with its input panics inside the
        // math kernels — below the typed-error layer. The trainer must
        // report *which* device died (and peers as cascades), not poison
        // the join.
        let (mut cfg, data) = job(2, 2, Scheme::Dapple);
        let bad = MicroModel { width: 5, total_blocks: 1, seed: 1 }.build_stages(1).remove(0);
        cfg.stages[1] = bad; // stage 1 lives on device 1
        let err = try_train(&cfg, &data).unwrap_err();
        match &err.primary {
            WorkerError::Panicked { device, message } => {
                assert_eq!(*device, DeviceId(1));
                assert!(!message.is_empty(), "the panic payload must ride along");
            }
            other => panic!("expected Panicked, got {other}"),
        }
        assert!(err.failures.iter().all(|(_, e)| e == &err.primary || e.is_cascade()));
        assert!(err.to_string().contains("P1"), "{err}");
    }

    #[test]
    fn checkpoint_of_freezes_a_completed_run() {
        let (cfg, data) = job(2, 2, Scheme::Dapple);
        let out = train(&cfg, &data);
        let ckpt = checkpoint_of(&cfg, &out, data.len() as u32, 1);
        assert_eq!(ckpt.iteration, 2);
        ckpt.guard(fingerprint_of(&cfg, 1)).unwrap();
        // Resuming a finished run is a no-op that returns the same bits.
        let resumed = resume(&cfg, &ckpt, &data).unwrap();
        bitwise_equal(&out, &resumed);
    }

    #[test]
    fn synthetic_data_at_is_the_stream_tail() {
        let full = synthetic_data(7, 5, 3, 2, 4);
        let tail = synthetic_data_at(7, 2, 3, 3, 2, 4);
        for (a, b) in full[2..].iter().zip(&tail) {
            assert_eq!(a.inputs.len(), b.inputs.len());
            for (x, y) in a.inputs.iter().zip(&b.inputs).chain(a.targets.iter().zip(&b.targets)) {
                assert_eq!(x.data, y.data);
            }
        }
        assert_eq!(synthetic_draws_per_iteration(3, 2, 4), 48);
    }
}
