//! Driving a training run: thread-per-device orchestration plus the
//! sequential reference implementation every schedule is checked against.

use crate::collective::AllreduceHub;
use crate::mailbox::{fabric, AbortFlag};
pub use crate::worker::LossKind;
use crate::worker::{run_worker, IterationData, WorkerConfig, WorkerError, WorkerReport};
use hanayo_core::action::Schedule;
use hanayo_core::ids::{DeviceId, MicroBatch};
use hanayo_model::Recompute;
use hanayo_tensor::loss::{mse, softmax_cross_entropy};
use hanayo_tensor::Stage;
use hanayo_trace::Trace;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// A complete pipeline-training job description.
#[derive(Clone)]
pub struct TrainerConfig {
    /// The frozen schedule to execute.
    pub schedule: Schedule,
    /// Global stage modules, `stages[s]` for stage `s`.
    pub stages: Vec<Stage>,
    /// SGD learning rate.
    pub lr: f32,
    /// Loss at the last stage.
    pub loss: LossKind,
    /// Activation stash policy. [`Recompute::Full`] stashes only each
    /// stage's input boundary tensor and replays the stage forward inside
    /// the backward — bit-identical gradients, strictly smaller resident
    /// stash (see [`TrainOutput::peak_stash_bytes`]).
    pub recompute: Recompute,
    /// Record wall-clock spans around every worker op and return them as
    /// [`TrainOutput::trace`]. Off by default: untraced workers take no
    /// clock readings. Tracing never changes losses, weights or peaks —
    /// it only observes.
    pub trace: bool,
}

/// Results of a training run.
#[derive(Debug, Clone)]
pub struct TrainOutput {
    /// Mean loss per iteration.
    pub losses: Vec<f32>,
    /// Updated stage modules.
    pub stages: Vec<Stage>,
    /// Measured peak of each device's live activation-stash bytes (empty
    /// for the sequential reference, which stashes one micro-batch at a
    /// time). Per-device order is the action-list order, so this is
    /// deterministic and — given a cost table probed from the same stages —
    /// exactly equal to the simulator's `peak_mem − weight_mem`.
    pub peak_stash_bytes: Vec<usize>,
    /// The measured execution trace, when [`TrainerConfig::trace`] asked
    /// for one (`None` otherwise, and always `None` for the sequential
    /// reference). Data-parallel runs merge every replica onto global
    /// device ranks (`replica·P + local`) on one shared clock.
    pub trace: Option<Trace>,
}

/// A training run that stopped on a worker-side invariant violation. The
/// root cause names the exact device and operation (and, for data-parallel
/// runs, the replica); cascade entries are peers that unwound because of
/// it.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainError {
    /// The first root-cause failure (never `WorkerError::Aborted` unless
    /// every failure was a cascade).
    pub primary: WorkerError,
    /// Data-parallel replica rank the primary failure came from; `None`
    /// for single-pipeline runs (device ids are replica-local).
    pub replica: Option<usize>,
    /// Every worker-reported failure as `(replica rank, error)` — rank is
    /// 0 for single-pipeline runs.
    pub failures: Vec<(usize, WorkerError)>,
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.replica {
            Some(r) => write!(f, "training failed on replica {r}: {}", self.primary)?,
            None => write!(f, "training failed: {}", self.primary)?,
        }
        let cascades = self.failures.iter().filter(|(_, e)| e.is_cascade()).count();
        if cascades > 0 {
            write!(f, " ({cascades} peer worker(s) unwound)")?;
        }
        Ok(())
    }
}

impl std::error::Error for TrainError {}

/// Fold worker failures into a `TrainError`, preferring a root cause over
/// cascades as the primary. `tag_replica` distinguishes data-parallel runs
/// (where the rank disambiguates replica-local device ids) from
/// single-pipeline runs.
fn train_error(failures: Vec<(usize, WorkerError)>, tag_replica: bool) -> Option<TrainError> {
    if failures.is_empty() {
        return None;
    }
    let (rank, primary) =
        failures.iter().find(|(_, e)| !e.is_cascade()).unwrap_or(&failures[0]).clone();
    let replica = tag_replica.then_some(rank);
    Some(TrainError { primary, replica, failures })
}

fn validate(cfg: &TrainerConfig, data: &[IterationData]) {
    assert_eq!(cfg.stages.len(), cfg.schedule.stage_map.stages as usize, "one module per stage");
    for group in &cfg.schedule.stage_map.groups {
        assert_eq!(
            group.replica.0, 0,
            "the runtime trains single-replica schedules; use the wave \
             transformation for Chimera (the paper does the same)"
        );
    }
    let b = cfg.schedule.config.micro_batches as usize;
    for (i, iteration) in data.iter().enumerate() {
        assert_eq!(iteration.inputs.len(), b, "iteration {i}: one input per micro-batch");
        assert_eq!(iteration.targets.len(), b, "iteration {i}: one target per micro-batch");
    }
}

/// Run the schedule with real math, one OS thread per device. Panics (on
/// the calling thread, with the failing device and operation) if a worker
/// hits an invariant violation; use [`try_train`] to handle that as a
/// value.
pub fn train(cfg: &TrainerConfig, data: &[IterationData]) -> TrainOutput {
    try_train(cfg, data).unwrap_or_else(|e| panic!("{e}"))
}

/// Like [`train`], but worker-side invariant violations (the signature of
/// a corrupt schedule) come back as a typed [`TrainError`] naming the
/// failing device and operation instead of a cross-thread panic.
pub fn try_train(cfg: &TrainerConfig, data: &[IterationData]) -> Result<TrainOutput, TrainError> {
    try_train_with_dp(cfg, data, None, &Arc::new(AbortFlag::new()), Instant::now())
}

/// Run `dp` identical pipeline replicas, each on its own data shard, with
/// a gradient all-reduce at every flush. `data[g]` is replica `g`'s shard;
/// all shards must have the same iteration count. Panics on worker
/// failure; see [`try_train_data_parallel`].
pub fn train_data_parallel(cfg: &TrainerConfig, data: &[Vec<IterationData>]) -> TrainOutput {
    try_train_data_parallel(cfg, data).unwrap_or_else(|e| panic!("{e}"))
}

/// [`train_data_parallel`] with worker failures surfaced as a
/// [`TrainError`] instead of a panic.
pub fn try_train_data_parallel(
    cfg: &TrainerConfig,
    data: &[Vec<IterationData>],
) -> Result<TrainOutput, TrainError> {
    let dp = data.len();
    assert!(dp >= 1);
    let hub = Arc::new(AllreduceHub::new(dp));
    // One latch across every replica: a failure anywhere must wake workers
    // of *all* replicas (they rendezvous in the shared hub).
    let abort = Arc::new(AbortFlag::new());
    // One clock origin across every replica, so merged traces share an axis.
    let origin = Instant::now();
    let outputs: Vec<Result<TrainOutput, TrainError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = data
            .iter()
            .enumerate()
            .map(|(rank, shard)| {
                let cfg = cfg.clone();
                let hub = Arc::clone(&hub);
                let abort = Arc::clone(&abort);
                scope.spawn(move || {
                    try_train_with_dp(&cfg, shard, Some((rank, hub)), &abort, origin)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("replica panicked")).collect()
    });
    let mut ok = Vec::with_capacity(dp);
    let mut failures = Vec::new();
    for (rank, out) in outputs.into_iter().enumerate() {
        match out {
            Ok(o) => ok.push(o),
            // Re-tag with the replica rank: device ids are replica-local.
            Err(e) => failures.extend(e.failures.into_iter().map(|(_, w)| (rank, w))),
        }
    }
    if let Some(e) = train_error(failures, true) {
        return Err(e);
    }
    // Replicas end bit-identical; average their reported losses.
    let iters = ok[0].losses.len();
    let losses =
        (0..iters).map(|i| ok.iter().map(|o| o.losses[i]).sum::<f32>() / dp as f32).collect();
    let peak = ok.iter().flat_map(|o| o.peak_stash_bytes.clone()).collect();
    // Merge replica traces onto global device ranks (`rank·P + local`).
    let trace = cfg.trace.then(|| {
        let p = cfg.schedule.lists.len() as u32;
        let mut merged = Trace::new(p * dp as u32);
        for (rank, out) in ok.iter().enumerate() {
            if let Some(t) = &out.trace {
                merged.merge_offset(t, rank as u32 * p);
            }
        }
        merged
    });
    Ok(TrainOutput {
        losses,
        stages: ok.into_iter().next().expect("dp >= 1").stages,
        peak_stash_bytes: peak,
        trace,
    })
}

fn try_train_with_dp(
    cfg: &TrainerConfig,
    data: &[IterationData],
    dp: Option<(usize, Arc<AllreduceHub>)>,
    abort: &Arc<AbortFlag>,
    origin: Instant,
) -> Result<TrainOutput, TrainError> {
    validate(cfg, data);
    let p = cfg.schedule.lists.len();
    let schedule = Arc::new(cfg.schedule.clone());
    let shared_data = Arc::new(data.to_vec());
    let (fab, mailboxes) = fabric(p);

    let reports: Vec<WorkerReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = mailboxes
            .into_iter()
            .enumerate()
            .map(|(d, mailbox)| {
                let device = DeviceId(d as u32);
                let modules: HashMap<u32, Stage> = schedule
                    .stage_map
                    .modules_on(device)
                    .into_iter()
                    .map(|(_, stage)| (stage.0, cfg.stages[stage.idx()].clone()))
                    .collect();
                let wcfg = WorkerConfig {
                    device,
                    schedule: Arc::clone(&schedule),
                    modules,
                    data: Arc::clone(&shared_data),
                    loss: cfg.loss.clone(),
                    lr: cfg.lr,
                    dp: dp.clone(),
                    recompute: cfg.recompute,
                    abort: Arc::clone(abort),
                    trace: cfg.trace,
                    origin,
                };
                let fab = fab.clone();
                scope.spawn(move || run_worker(wcfg, mailbox, fab))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    let rank = dp.as_ref().map_or(0, |(r, _)| *r);
    let failures: Vec<(usize, WorkerError)> =
        reports.iter().filter_map(|r| r.error.clone().map(|e| (rank, e))).collect();
    if let Some(e) = train_error(failures, false) {
        return Err(e);
    }

    // Reassemble the global stage vector and find the loss reporter.
    let mut stages = cfg.stages.clone();
    let mut losses = Vec::new();
    let mut peaks = vec![0usize; p];
    let mut trace = cfg.trace.then(|| Trace::new(p as u32));
    for report in reports {
        peaks[report.device.idx()] = report.peak_stash_bytes;
        if let Some(trace) = &mut trace {
            trace.events.extend(report.events);
        }
        for (s, module) in report.modules {
            stages[s as usize] = module;
        }
        if !report.losses.is_empty() {
            losses = report.losses;
        }
    }
    if let Some(trace) = &mut trace {
        trace.normalize();
    }
    Ok(TrainOutput { losses, stages, peak_stash_bytes: peaks, trace })
}

/// The ground truth: single-device synchronous training with the same
/// micro-batch semantics (per-micro-batch gradients reduced in order at
/// the flush). Every pipeline schedule must reproduce these bits exactly.
pub fn sequential_reference(
    stages: &[Stage],
    data: &[IterationData],
    lr: f32,
    loss: &LossKind,
) -> TrainOutput {
    let mut stages = stages.to_vec();
    let mut losses = Vec::with_capacity(data.len());
    for iteration in data {
        let b = iteration.inputs.len();
        let mut totals: Vec<_> = stages.iter().map(Stage::zero_grads).collect();
        let mut iter_loss = 0.0f32;
        for mb in 0..b {
            // Forward through the whole chain, stashing per stage.
            let mut x = iteration.inputs[mb].clone();
            let mut stashes = Vec::with_capacity(stages.len());
            for stage in &stages {
                let (y, st) = stage.forward(&x);
                stashes.push(st);
                x = y;
            }
            let (l, mut dy) = match loss {
                LossKind::Mse => mse(&x, &iteration.targets[mb]),
                LossKind::CrossEntropy { labels } => softmax_cross_entropy(&x, &labels[mb]),
            };
            iter_loss += l;
            // Backward in reverse, accumulating into the per-stage totals
            // in micro-batch order (same reduction order as the workers).
            for (s, stage) in stages.iter().enumerate().rev() {
                let (dx, grads) = stage.backward(&stashes[s], &dy);
                totals[s].accumulate(&grads);
                dy = dx;
            }
        }
        for (stage, total) in stages.iter_mut().zip(&totals) {
            stage.sgd_step(total, lr);
        }
        losses.push(iter_loss / b as f32);
    }
    TrainOutput { losses, stages, peak_stash_bytes: Vec::new(), trace: None }
}

/// Convenience: deterministic random regression data shaped for a pipeline
/// (`B` micro-batches of `rows × width`), reproducible from a seed.
pub fn synthetic_data(
    seed: u64,
    iterations: usize,
    micro_batches: usize,
    rows: usize,
    width: usize,
) -> Vec<IterationData> {
    use hanayo_tensor::rng::{seeded, uniform};
    let mut rng = seeded(seed);
    (0..iterations)
        .map(|_| IterationData {
            inputs: (0..micro_batches).map(|_| uniform(&mut rng, rows, width, 1.0)).collect(),
            targets: (0..micro_batches).map(|_| uniform(&mut rng, rows, width, 0.5)).collect(),
        })
        .collect()
}

/// Which device reports losses (holds the last stage); exposed for tests.
pub fn loss_device(schedule: &Schedule) -> DeviceId {
    let last = hanayo_core::ids::StageId(schedule.stage_map.stages - 1);
    schedule.stage_map.device_of(MicroBatch(0), last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanayo_core::config::{PipelineConfig, Scheme};
    use hanayo_core::schedule::build_schedule;
    use hanayo_model::builders::MicroModel;

    fn job(p: u32, b: u32, scheme: Scheme) -> (TrainerConfig, Vec<IterationData>) {
        let cfg = PipelineConfig::new(p, b, scheme).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let model =
            MicroModel { width: 8, total_blocks: schedule.stage_map.stages as usize, seed: 7 };
        let stages = model.build_stages(schedule.stage_map.stages);
        let data = synthetic_data(3, 2, b as usize, 2, 8);
        let trainer = TrainerConfig {
            schedule,
            stages,
            lr: 0.05,
            loss: LossKind::Mse,
            recompute: Recompute::None,
            trace: false,
        };
        (trainer, data)
    }

    #[test]
    fn dapple_matches_sequential_bitwise() {
        let (cfg, data) = job(2, 4, Scheme::Dapple);
        let pipe = train(&cfg, &data);
        let seq = sequential_reference(&cfg.stages, &data, cfg.lr, &cfg.loss);
        assert_eq!(pipe.stages, seq.stages, "weights diverged");
        assert_eq!(pipe.losses, seq.losses, "losses diverged");
    }

    #[test]
    fn hanayo_matches_sequential_bitwise() {
        let (cfg, data) = job(2, 4, Scheme::Hanayo { waves: 2 });
        let pipe = train(&cfg, &data);
        let seq = sequential_reference(&cfg.stages, &data, cfg.lr, &cfg.loss);
        assert_eq!(pipe.stages, seq.stages);
        assert_eq!(pipe.losses, seq.losses);
    }

    #[test]
    fn losses_decrease_over_iterations() {
        let cfg = PipelineConfig::new(2, 2, Scheme::Dapple).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let model = MicroModel { width: 8, total_blocks: 2, seed: 1 };
        let stages = model.build_stages(2);
        // Same data every iteration → loss must fall.
        let one = synthetic_data(9, 1, 2, 4, 8).remove(0);
        let data = vec![one.clone(); 8];
        let cfg = TrainerConfig {
            schedule,
            stages,
            lr: 0.05,
            loss: LossKind::Mse,
            recompute: Recompute::None,
            trace: false,
        };
        let out = train(&cfg, &data);
        assert!(out.losses.last().unwrap() < out.losses.first().unwrap(), "{:?}", out.losses);
    }

    #[test]
    fn full_recompute_is_bit_identical_and_stashes_less() {
        let (cfg, data) = job(2, 4, Scheme::Hanayo { waves: 2 });
        let plain = train(&cfg, &data);
        let ckpt = train(&TrainerConfig { recompute: Recompute::Full, ..cfg.clone() }, &data);
        assert_eq!(plain.stages, ckpt.stages, "checkpointed weights diverged");
        assert_eq!(plain.losses, ckpt.losses, "checkpointed losses diverged");
        for (d, (c, p)) in ckpt.peak_stash_bytes.iter().zip(&plain.peak_stash_bytes).enumerate() {
            assert!(c < p, "device {d}: checkpointed peak {c} !< plain peak {p}");
        }
    }

    #[test]
    fn tracing_observes_without_perturbing() {
        use hanayo_trace::TraceKind;
        let (cfg, data) = job(2, 4, Scheme::Hanayo { waves: 2 });
        let plain = train(&cfg, &data);
        assert!(plain.trace.is_none(), "tracing is opt-in");
        let traced = train(&TrainerConfig { trace: true, ..cfg.clone() }, &data);
        assert_eq!(plain.losses, traced.losses, "tracing changed the losses");
        assert_eq!(plain.stages, traced.stages, "tracing changed the weights");
        let trace = traced.trace.expect("trace requested");
        trace.validate().unwrap();
        assert_eq!(trace.devices, 2);
        // Two iterations of B=4 across every stage: B·S forwards and
        // backwards per iteration, an optimizer step per device per
        // iteration, and the inter-device transfers.
        let ops = 2 * 4 * cfg.schedule.stage_map.stages as usize;
        let count = |k: TraceKind| trace.events.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(TraceKind::Fwd), ops);
        assert_eq!(count(TraceKind::Bwd), ops);
        // One local-work Optim span per stage per iteration (the flush
        // walks each device's stages).
        assert_eq!(count(TraceKind::Optim), 2 * cfg.schedule.stage_map.stages as usize);
        assert!(count(TraceKind::Send) > 0 && count(TraceKind::Recv) > 0);
        assert_eq!(count(TraceKind::Allreduce), 0, "no data parallelism here");
        assert_eq!(count(TraceKind::Recompute), 0, "no checkpointing here");
        assert!(trace.duration() > 0.0);
    }

    #[test]
    fn checkpointed_tracing_splits_replay_from_backward() {
        use hanayo_trace::TraceKind;
        let (cfg, data) = job(2, 2, Scheme::Dapple);
        let cfg = TrainerConfig { recompute: Recompute::Full, trace: true, ..cfg };
        let trace = train(&cfg, &data).trace.unwrap();
        let recomputes = trace.events.iter().filter(|e| e.kind == TraceKind::Recompute).count();
        let backwards = trace.events.iter().filter(|e| e.kind == TraceKind::Bwd).count();
        assert_eq!(recomputes, backwards, "one replay rides every checkpointed backward");
        trace.validate().unwrap();
    }

    #[test]
    fn data_parallel_trace_merges_onto_global_ranks() {
        use hanayo_trace::TraceKind;
        let (cfg, _) = job(2, 2, Scheme::Hanayo { waves: 1 });
        let cfg = TrainerConfig { trace: true, ..cfg };
        let shards = vec![synthetic_data(41, 1, 2, 2, 8), synthetic_data(42, 1, 2, 2, 8)];
        let out = train_data_parallel(&cfg, &shards);
        let trace = out.trace.expect("trace requested");
        trace.validate().unwrap();
        assert_eq!(trace.devices, 4, "2 replicas × 2 devices");
        let devices: std::collections::HashSet<u32> =
            trace.events.iter().map(|e| e.device).collect();
        assert_eq!(devices.len(), 4, "every global rank contributed spans");
        assert!(trace.events.iter().any(|e| e.kind == TraceKind::Allreduce));
        // The blocking all-reduce rendezvous is never inside an Optim
        // span: the wait must count as communication, not busy compute.
        for ar in trace.events.iter().filter(|e| e.kind == TraceKind::Allreduce) {
            for op in
                trace.events.iter().filter(|e| e.kind == TraceKind::Optim && e.device == ar.device)
            {
                assert!(
                    ar.t_end <= op.t_start + 1e-12 || ar.t_start >= op.t_end - 1e-12,
                    "allreduce [{}, {}] overlaps optim [{}, {}] on device {}",
                    ar.t_start,
                    ar.t_end,
                    op.t_start,
                    op.t_end,
                    ar.device
                );
            }
        }
    }

    #[test]
    fn corrupt_schedule_surfaces_typed_error_not_a_poisoned_join() {
        use hanayo_core::action::{Action, CommDir};
        let (mut cfg, data) = job(2, 2, Scheme::Dapple);
        // Drop device 1's first receive: its forward finds no input.
        let list = &mut cfg.schedule.lists[1].actions;
        let pos = list
            .iter()
            .position(|a| matches!(a, Action::Comm(op) if op.dir == CommDir::Recv))
            .expect("device 1 receives activations");
        list.remove(pos);
        let err = try_train(&cfg, &data).unwrap_err();
        assert!(
            matches!(
                err.primary,
                crate::worker::WorkerError::MissingInput { device: DeviceId(1), .. }
            ),
            "unexpected primary: {}",
            err.primary
        );
        // Every reported failure is either the root cause or a cascade,
        // and a single-pipeline run carries no replica tag.
        assert_eq!(err.replica, None);
        assert!(err.failures.iter().all(|(_, e)| e == &err.primary || e.is_cascade()));
    }

    #[test]
    fn data_parallel_failure_names_the_replica() {
        use hanayo_core::action::{Action, CommDir};
        let (mut cfg, _) = job(2, 2, Scheme::Dapple);
        let list = &mut cfg.schedule.lists[1].actions;
        let pos = list
            .iter()
            .position(|a| matches!(a, Action::Comm(op) if op.dir == CommDir::Recv))
            .unwrap();
        list.remove(pos);
        // Both replicas run the same corrupt schedule; the error must say
        // which replica each failure came from (device ids are local).
        let shards = vec![synthetic_data(31, 1, 2, 2, 8), synthetic_data(32, 1, 2, 2, 8)];
        let err = try_train_data_parallel(&cfg, &shards).unwrap_err();
        assert!(err.replica.is_some(), "data-parallel errors carry the replica rank");
        assert!(err.to_string().contains("replica"), "{err}");
        for (rank, _) in &err.failures {
            assert!(*rank < 2);
        }
    }

    #[test]
    fn train_panic_carries_the_typed_message() {
        use hanayo_core::action::{Action, CommDir};
        let (mut cfg, data) = job(2, 2, Scheme::Dapple);
        let list = &mut cfg.schedule.lists[1].actions;
        let pos = list
            .iter()
            .position(|a| matches!(a, Action::Comm(op) if op.dir == CommDir::Recv))
            .unwrap();
        list.remove(pos);
        let result = std::panic::catch_unwind(|| train(&cfg, &data));
        let msg = *result.unwrap_err().downcast::<String>().expect("string panic payload");
        assert!(msg.contains("P1"), "panic must name the device: {msg}");
        assert!(msg.contains("forward found no input"), "panic must name the op: {msg}");
    }

    #[test]
    fn rejects_replicated_schedules() {
        let cfg = PipelineConfig::new(2, 2, Scheme::Chimera).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let model = MicroModel { width: 8, total_blocks: 2, seed: 1 };
        let stages = model.build_stages(2);
        let data = synthetic_data(1, 1, 2, 2, 8);
        let cfg = TrainerConfig {
            schedule,
            stages,
            lr: 0.1,
            loss: LossKind::Mse,
            recompute: Recompute::None,
            trace: false,
        };
        let result = std::panic::catch_unwind(|| train(&cfg, &data));
        assert!(result.is_err(), "chimera-native must be rejected");
    }

    #[test]
    fn data_parallel_matches_merged_batch_up_to_reassociation() {
        let (cfg, _) = job(2, 2, Scheme::Hanayo { waves: 1 });
        let shards = vec![synthetic_data(11, 2, 2, 2, 8), synthetic_data(12, 2, 2, 2, 8)];
        let out = train_data_parallel(&cfg, &shards);
        // Equivalent sequential run: all micro-batches of both shards,
        // shard-major (rank order), per iteration. The DP hub reduces
        // per-shard sums — a different parenthesisation of the same sum —
        // so the comparison is approximate, not bitwise.
        let merged: Vec<IterationData> = (0..2)
            .map(|i| IterationData {
                inputs: shards.iter().flat_map(|s| s[i].inputs.clone()).collect(),
                targets: shards.iter().flat_map(|s| s[i].targets.clone()).collect(),
            })
            .collect();
        let seq = sequential_reference(&cfg.stages, &merged, cfg.lr, &cfg.loss);
        for (a, b) in out.stages.iter().zip(&seq.stages) {
            let diff = a
                .flat_params()
                .iter()
                .zip(b.flat_params())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max);
            assert!(diff < 1e-5, "DP diverged from merged batch by {diff}");
        }
    }

    #[test]
    fn data_parallel_replicas_end_bit_identical() {
        // Both replicas apply the same reduced gradients to the same
        // initial weights: their final stages must be bit-identical. We
        // verify via the hub determinism test plus re-running: two DP runs
        // must agree exactly.
        let (cfg, _) = job(2, 2, Scheme::Hanayo { waves: 1 });
        let shards = vec![synthetic_data(21, 2, 2, 2, 8), synthetic_data(22, 2, 2, 2, 8)];
        let a = train_data_parallel(&cfg, &shards);
        let b = train_data_parallel(&cfg, &shards);
        assert_eq!(a.stages, b.stages);
        assert_eq!(a.losses, b.losses);
    }
}
