//! Property tests for resume-equals-uninterrupted: over random
//! `(scheme, P, B, checkpoint interval, kill site)` shapes, a run that is
//! killed by the failure injector and resumed from its last durable
//! checkpoint must finish with final weights, losses and per-device peak
//! stash bytes **bitwise equal** to a run that never failed. This is the
//! executable form of the checkpoint contract: a checkpoint is complete
//! (nothing a run needs is missing from it) and exact (nothing is
//! approximated on the way through the file format — the checkpoint
//! round-trips through its JSON envelope before resuming).

use hanayo_ckpt::{Checkpoint, CheckpointPolicy, FailurePlan};
use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::schedule::build_schedule;
use hanayo_model::builders::MicroModel;
use hanayo_runtime::trainer::{synthetic_data, train, TrainerConfig};
use hanayo_runtime::worker::WorkerError;
use hanayo_runtime::{resume, try_train_resumable, LossKind};
use proptest::prelude::*;

fn any_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::GPipe),
        Just(Scheme::Dapple),
        (1u32..=2).prop_map(|w| Scheme::Hanayo { waves: w }),
        Just(Scheme::Interleaved { chunks: 2 }),
    ]
}

proptest! {
    // Every case trains three times (uninterrupted, killed, resumed) with
    // P OS threads each; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn kill_and_resume_is_bitwise_equal_to_uninterrupted(
        p in 2u32..=3,
        b in 2u32..=4,
        scheme in any_scheme(),
        every in 1u32..=3,
        kill_device in 0u32..3,
        kill_at in 0u32..4,
        seed in 0u64..1000,
    ) {
        let iterations = 4usize;
        let kill_device = kill_device % p;
        let cfg = PipelineConfig::new(p, b, scheme).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let s = schedule.stage_map.stages;
        let model = MicroModel { width: 6, total_blocks: s as usize, seed };
        let data = synthetic_data(seed.wrapping_add(17), iterations, b as usize, 2, 6);
        let base = TrainerConfig::new(schedule, model.build_stages(s), 0.05, LossKind::Mse);

        let uninterrupted = train(&base, &data);

        let armed = TrainerConfig {
            checkpoint: CheckpointPolicy::every(every),
            failure: FailurePlan::KillDevice { device: kill_device, iteration: kill_at },
            ..base.clone()
        };
        let failed = try_train_resumable(&armed, &data).unwrap_err();
        prop_assert!(
            matches!(failed.error.primary, WorkerError::Injected { .. }),
            "expected the injected kill as root cause, got {}",
            failed.error.primary
        );
        prop_assert_eq!(failed.error.primary.device().0, kill_device);

        let ckpt = failed.checkpoint.expect("a durable checkpoint (boundary 0 always exists)");
        prop_assert!(ckpt.iteration <= kill_at, "checkpoint cannot postdate the kill");
        prop_assert_eq!(ckpt.iteration % every, 0, "checkpoints sit on policy boundaries");

        // Resume through the on-disk format, with the injection disarmed.
        let restored = Checkpoint::from_json(&ckpt.to_json().unwrap()).expect("valid envelope");
        let resumed = resume(
            &TrainerConfig { failure: FailurePlan::None, ..armed },
            &restored,
            &data,
        )
        .expect("resume completes");

        let bits = |stages: &[hanayo_tensor::Stage]| -> Vec<u32> {
            stages.iter().flat_map(|st| st.flat_params()).map(f32::to_bits).collect()
        };
        prop_assert_eq!(
            bits(&uninterrupted.stages),
            bits(&resumed.stages),
            "final weights diverged"
        );
        prop_assert_eq!(
            uninterrupted.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            resumed.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            "losses diverged"
        );
        prop_assert_eq!(
            &uninterrupted.peak_stash_bytes,
            &resumed.peak_stash_bytes,
            "peak stash bytes diverged"
        );
    }
}
