//! Property tests for executed activation recomputation: over random
//! `(model, scheme, P, M)` triples, `Recompute::Full` training must be
//! **bit-identical** in losses and gradients (hence final weights) to
//! `Recompute::None`, while its measured peak activation bytes are
//! strictly lower on every device — each micro-model stage stacks
//! `LayerNorm → Linear → Gelu`, i.e. more than one layer, so the full
//! stash always dominates the boundary tensor.

use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::schedule::build_schedule;
use hanayo_model::builders::MicroModel;
use hanayo_model::Recompute;
use hanayo_runtime::trainer::{synthetic_data, train, TrainerConfig};
use hanayo_runtime::LossKind;
use proptest::prelude::*;

fn any_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::GPipe),
        Just(Scheme::Dapple),
        (1u32..=2).prop_map(|w| Scheme::Hanayo { waves: w }),
        Just(Scheme::Interleaved { chunks: 2 }),
    ]
}

proptest! {
    // Every case spawns 2 × P OS threads; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn full_recompute_is_bitwise_equivalent_and_cheaper_on_memory(
        p in 2u32..=3,
        b in 2u32..=4,
        scheme in any_scheme(),
        blocks_per_stage in 1usize..=2,
        seed in 0u64..1000,
    ) {
        let cfg = PipelineConfig::new(p, b, scheme).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let s = schedule.stage_map.stages;
        let model = MicroModel {
            width: 6,
            total_blocks: s as usize * blocks_per_stage,
            seed,
        };
        let data = synthetic_data(seed.wrapping_add(5), 2, b as usize, 2, 6);
        let run = |recompute| {
            train(
                &TrainerConfig { recompute, ..TrainerConfig::new(schedule.clone(), model.build_stages(s), 0.05, LossKind::Mse) },
                &data,
            )
        };
        let plain = run(Recompute::None);
        let ckpt = run(Recompute::Full);

        // Bit-identical training: the backward-time replay regenerates the
        // exact stash the forward produced.
        prop_assert_eq!(&plain.losses, &ckpt.losses, "losses diverged");
        prop_assert_eq!(&plain.stages, &ckpt.stages, "weights diverged");

        // Strictly lower measured peak on every device: each stage holds
        // >1 layer, so even a single-block stage stashes more activations
        // than its boundary tensor.
        for (d, (&c, &pl)) in
            ckpt.peak_stash_bytes.iter().zip(&plain.peak_stash_bytes).enumerate()
        {
            prop_assert!(c > 0, "device {d} never stashed anything");
            prop_assert!(c < pl, "device {d}: checkpointed {c} !< plain {pl}");
        }
    }
}
