//! # hanayo-repro
//!
//! Regeneration harness for every table and figure in the paper's
//! evaluation. Each `figN` module exposes
//!
//! * a `data()` function returning the structured rows/series, and
//! * a `run()` function rendering them as the text table printed by the
//!   `repro` binary (`cargo run -p hanayo-repro --bin repro -- figN`).
//!
//! Workload parameters (micro-batch counts and sizes) are fixed presets
//! chosen to reproduce the paper's *shapes* — who wins, by what factor,
//! which cells OOM — and are documented per experiment in `EXPERIMENTS.md`.

pub mod common;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod memfig;
pub mod metricsio;

/// A figure's id plus the function that renders its table.
pub type FigureRunner = (&'static str, fn() -> String);

/// All figure ids in order, with their runner.
pub fn all_figures() -> Vec<FigureRunner> {
    vec![
        ("fig1", fig1::run as fn() -> String),
        ("fig2", fig2::run),
        ("fig3", fig3::run),
        ("fig4", fig4::run),
        ("fig5", fig5::run),
        ("fig6", fig6::run),
        ("fig7", fig7::run),
        ("fig8", fig8::run),
        ("fig9", fig9::run),
        ("fig10", fig10::run),
        ("fig11", fig11::run),
        ("fig12", fig12::run),
        // Not a numbered paper figure: the §5.1 memory statistics table
        // (also its own binary, `--bin memfig`).
        ("memfig", memfig::run),
    ]
}
