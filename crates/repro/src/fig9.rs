//! Figure 9: adaptability across the four clusters — throughput of G, D,
//! C, H-2, H-4, H-8 on PC, FC, TACC, TC with 8 GPUs each, under
//! (D=1, P=8) and (D=2, P=4).
//!
//! Workload preset: `B = P` micro-batches per pipeline of 1 sequence each,
//! ZeRO-1-style optimizer accounting (8 bytes/param). The lighter
//! accounting is required for fidelity, not convenience: Chimera-wave at
//! (D=2, P=4) consolidates **half** the 5B-parameter BERT onto each
//! device, which no full-Adam accounting fits into the paper's 32 GB
//! V100s — yet the paper ran exactly that configuration on the Tencent
//! cluster.

use crate::common::{fig9_methods, fmt_outcome, render_table};
use hanayo_cluster::topology::paper_clusters;
use hanayo_cluster::ClusterSpec;
use hanayo_model::{ModelConfig, Recompute};
use hanayo_sim::{evaluate_plan, Method, ParallelPlan, SimOptions};

/// One cell: cluster × (D,P) × method → throughput (None = OOM).
pub struct Cell {
    /// Cluster name.
    pub cluster: String,
    /// Data-parallel width.
    pub dp: u32,
    /// Pipeline width.
    pub pp: u32,
    /// Method.
    pub method: Method,
    /// Sequences/s, `None` on OOM.
    pub throughput: Option<f64>,
}

fn eval(cluster: &ClusterSpec, dp: u32, pp: u32, method: Method) -> Option<f64> {
    let plan = ParallelPlan {
        method,
        dp,
        pp,
        micro_batches: pp,
        micro_batch_size: 1,
        recompute: Recompute::None,
    };
    let model = ModelConfig::bert64().with_train_bytes_per_param(8);
    let r = evaluate_plan(&plan, &model, cluster, SimOptions::default()).ok()?;
    if r.is_oom() {
        None
    } else {
        Some(r.throughput)
    }
}

/// All cells of the figure.
pub fn data() -> Vec<Cell> {
    let mut cells = Vec::new();
    for (dp, pp) in [(1u32, 8u32), (2, 4)] {
        for cluster in paper_clusters(8) {
            for method in fig9_methods() {
                cells.push(Cell {
                    cluster: cluster.name.clone(),
                    dp,
                    pp,
                    method,
                    throughput: eval(&cluster, dp, pp, method),
                });
            }
        }
    }
    cells
}

/// Best Hanayo vs Chimera-wave improvement per (cluster, D, P) setting —
/// the numbers the paper reports as "15.7%, 30.4%, ..." in §5.2.
pub fn hanayo_over_chimera() -> Vec<(String, f64)> {
    let cells = data();
    let mut out = Vec::new();
    for (dp, pp) in [(1u32, 8u32), (2, 4)] {
        for name in ["PC", "FC", "TACC", "TC"] {
            let of = |m: Method| {
                cells
                    .iter()
                    .find(|c| c.cluster == name && c.dp == dp && c.pp == pp && c.method == m)
                    .and_then(|c| c.throughput)
            };
            let chimera = of(Method::ChimeraWave).expect("chimera runs");
            let best_h = [2u32, 4, 8]
                .iter()
                .filter_map(|&w| of(Method::Hanayo { waves: w }))
                .fold(0.0f64, f64::max);
            out.push((format!("{name}(D={dp},P={pp})"), 100.0 * (best_h / chimera - 1.0)));
        }
    }
    out
}

/// Render the figure.
pub fn run() -> String {
    let cells = data();
    let methods = fig9_methods();
    let mut out = String::from(
        "Figure 9: throughput (sequences/s) of the BERT-style model on the four clusters\n\n",
    );
    for (dp, pp) in [(1u32, 8u32), (2, 4)] {
        out.push_str(&format!("setting D={dp}, P={pp}:\n"));
        let headers: Vec<String> = std::iter::once("cluster".to_string())
            .chain(methods.iter().map(|m| m.label()))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = ["PC", "FC", "TACC", "TC"]
            .iter()
            .map(|name| {
                let mut row = vec![name.to_string()];
                for m in &methods {
                    let cell = cells
                        .iter()
                        .find(|c| c.cluster == *name && c.dp == dp && c.pp == pp && c.method == *m)
                        .expect("cell");
                    row.push(fmt_outcome(cell.throughput));
                }
                row
            })
            .collect();
        out.push_str(&render_table(&header_refs, &rows));
        out.push('\n');
    }
    out.push_str("best-Hanayo improvement over Chimera-wave per setting:\n");
    for (setting, pct) in hanayo_over_chimera() {
        out.push_str(&format!("  {setting}: +{pct:.1}%\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hanayo_beats_chimera_everywhere() {
        // The paper's headline: 8.2%–30.4% over Chimera in all eight
        // settings.
        for (setting, pct) in hanayo_over_chimera() {
            assert!(pct > 0.0, "{setting}: {pct}");
        }
    }

    #[test]
    fn improvements_land_in_the_papers_band() {
        // Paper: between +8.2% and +30.4%; allow a wider tolerance band for
        // the simulated substrate while requiring the same order of
        // magnitude.
        for (setting, pct) in hanayo_over_chimera() {
            assert!((3.0..60.0).contains(&pct), "{setting}: {pct}");
        }
    }

    #[test]
    fn gpipe_and_dapple_track_each_other() {
        // §5.2: "GPipe and DAPPLE maintain similar throughput".
        let cells = data();
        for name in ["PC", "FC", "TACC", "TC"] {
            let of = |m: Method| {
                cells
                    .iter()
                    .find(|c| c.cluster == name && c.dp == 1 && c.method == m)
                    .and_then(|c| c.throughput)
                    .unwrap()
            };
            let g = of(Method::GPipe);
            let d = of(Method::Dapple);
            assert!((g - d).abs() / d < 0.05, "{name}: G {g} vs D {d}");
        }
    }

    #[test]
    fn tacc_prefers_fewer_waves_than_fc() {
        // §5.2: "for clusters with poor interconnection, such as TACC, the
        // optimal wave number will be lower".
        let cells = data();
        let best_wave = |name: &str| {
            [2u32, 4, 8]
                .into_iter()
                .max_by(|&a, &b| {
                    let of = |w| {
                        cells
                            .iter()
                            .find(|c| {
                                c.cluster == name
                                    && c.dp == 1
                                    && c.method == Method::Hanayo { waves: w }
                            })
                            .and_then(|c| c.throughput)
                            .unwrap_or(0.0)
                    };
                    of(a).total_cmp(&of(b))
                })
                .unwrap()
        };
        assert!(best_wave("TACC") <= best_wave("FC"));
    }
}
