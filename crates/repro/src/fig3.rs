//! Figure 3: the five synchronous schedules on `P = 4`, `B = 4`, drawn as
//! text Gantt charts with their peak `M_w`/`M_a` unit annotations.

use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::gantt::render_paper_style;
use hanayo_core::memory::{unit_profile, UnitMemoryProfile};
use hanayo_core::schedule::build_compute_schedule;

/// One panel of the figure.
pub struct Panel {
    /// Panel caption (scheme name).
    pub name: String,
    /// Text Gantt chart.
    pub gantt: String,
    /// Unit memory profile.
    pub memory: UnitMemoryProfile,
}

/// The five panels (a)–(e).
pub fn data() -> Vec<Panel> {
    let schemes = [
        ("(a) GPipe", Scheme::GPipe),
        ("(b) DAPPLE", Scheme::Dapple),
        ("(c) Chimera", Scheme::Chimera),
        ("(d) Hanayo with one wave", Scheme::Hanayo { waves: 1 }),
        ("(e) Hanayo with two waves", Scheme::Hanayo { waves: 2 }),
    ];
    schemes
        .into_iter()
        .map(|(name, scheme)| {
            let cfg = PipelineConfig::new(4, 4, scheme).expect("valid");
            let cs = build_compute_schedule(&cfg).expect("schedulable");
            Panel {
                name: name.to_string(),
                gantt: render_paper_style(&cs),
                memory: unit_profile(&cs),
            }
        })
        .collect()
}

/// Render all panels.
pub fn run() -> String {
    let mut out = String::from(
        "Figure 3: synchronous pipeline schedules (P=4, B=4; digits = forward mb, \
         letters = backward mb, '.' = bubble)\n\n",
    );
    for panel in data() {
        out.push_str(&format!("{}\n{}", panel.name, panel.gantt));
        let mw: Vec<String> = panel.memory.mw_units.iter().map(|v| format!("{v:.2}")).collect();
        let ma: Vec<String> =
            panel.memory.ma_peak_units.iter().map(|v| format!("{v:.2}")).collect();
        out.push_str(&format!("  Mw units/device: [{}]\n", mw.join(", ")));
        out.push_str(&format!("  Ma peak units/device: [{}]\n\n", ma.join(", ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_panels() {
        assert_eq!(data().len(), 5);
    }

    #[test]
    fn chimera_is_the_only_doubled_mw() {
        for panel in data() {
            let max_mw = panel.memory.mw_units.iter().cloned().fold(0.0, f64::max);
            if panel.name.contains("Chimera") {
                assert_eq!(max_mw, 2.0);
            } else {
                assert!((max_mw - 1.0).abs() < 1e-9, "{}: {max_mw}", panel.name);
            }
        }
    }

    #[test]
    fn gpipe_panel_shows_all_forwards_first() {
        let panels = data();
        let gpipe = &panels[0].gantt;
        let first_line = gpipe.lines().next().unwrap();
        // Device 0 runs forwards 0123 consecutively.
        assert!(first_line.contains("0123"), "{first_line}");
    }
}
