//! Shared plumbing for the figure harnesses: table rendering, method
//! rosters, and the workload presets documented in `EXPERIMENTS.md`.

use hanayo_sim::Method;

/// The method roster of Figs. 8–12 (Chimera measured as Chimera-wave, as
/// in the paper's evaluation).
pub fn eval_methods() -> Vec<Method> {
    vec![Method::GPipe, Method::Dapple, Method::ChimeraWave, Method::Hanayo { waves: 2 }]
}

/// The extended roster of Fig. 9 (Hanayo at several wave counts).
pub fn fig9_methods() -> Vec<Method> {
    vec![
        Method::GPipe,
        Method::Dapple,
        Method::ChimeraWave,
        Method::Hanayo { waves: 2 },
        Method::Hanayo { waves: 4 },
        Method::Hanayo { waves: 8 },
    ]
}

/// Wave counts searched when a figure reports "the best wave number".
pub const WAVE_SEARCH: [u32; 4] = [1, 2, 4, 8];

/// Render rows as a fixed-width text table. `headers.len()` must match
/// every row's cell count.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Format a throughput / OOM outcome.
pub fn fmt_outcome(result: Option<f64>) -> String {
    match result {
        Some(t) => format!("{t:.2}"),
        None => "OOM".to_string(),
    }
}

/// Percentage improvement of `a` over `b`.
pub fn pct_over(a: f64, b: f64) -> f64 {
    100.0 * (a / b - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["name", "value"],
            &[vec!["a".into(), "1.0".into()], vec!["longer".into(), "2.25".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn outcome_formatting() {
        assert_eq!(fmt_outcome(Some(1.234)), "1.23");
        assert_eq!(fmt_outcome(None), "OOM");
    }

    #[test]
    fn pct_over_basics() {
        assert!((pct_over(1.304, 1.0) - 30.4).abs() < 1e-9);
    }
}
