//! Figure 1: theoretical bubble ratio of synchronous pipeline schemes at
//! 8 and 32 devices (`B = P`, `T_B = 2 T_F`, `T_C = 0`).

use crate::common::render_table;
use hanayo_core::analysis::bubble::figure1_rows;

/// Series per device count: `(scheme label, bubble ratio)`.
pub fn data() -> Vec<(u32, Vec<(&'static str, f64)>)> {
    [8u32, 32].iter().map(|&p| (p, figure1_rows(p))).collect()
}

/// Render the figure as a table.
pub fn run() -> String {
    let data = data();
    let headers: Vec<&str> = std::iter::once("scheme")
        .chain(data.iter().map(|(p, _)| if *p == 8 { "devices=8" } else { "devices=32" }))
        .collect();
    let schemes: Vec<&str> = data[0].1.iter().map(|(n, _)| *n).collect();
    let rows: Vec<Vec<String>> = schemes
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let mut row = vec![name.to_string()];
            for (_, series) in &data {
                row.push(format!("{:.1}%", 100.0 * series[i].1));
            }
            row
        })
        .collect();
    format!(
        "Figure 1: theoretical bubble ratio of synchronous pipeline schemes\n{}",
        render_table(&headers, &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_both_device_counts_and_six_schemes() {
        let d = data();
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|(_, s)| s.len() == 6));
    }

    #[test]
    fn hanayo_bars_drop_sharply() {
        // "a sharp drop in Hanayo's bubble ratio with an increased number
        // of waves" (§3.4).
        for (_, series) in data() {
            let chimera = series[3].1;
            let h4 = series[5].1;
            assert!(h4 < 0.6 * chimera, "H-4 {h4} vs Chimera {chimera}");
        }
    }

    #[test]
    fn renders_with_percentages() {
        let text = run();
        assert!(text.contains("Hanayo (wave=4)"));
        assert!(text.contains('%'));
    }
}
