//! Figure 10: the configuration search — for each method, throughput over
//! the (P, D) grid {(8,4), (16,2), (32,1)} at two global batch sizes on
//! 32 Lonestar6 GPUs, with OOM cells, plus the winning configuration.
//!
//! For Hanayo every cell reports the best wave count in {1, 2, 4, 8}
//! (the paper: "we searched for the best wave number under each
//! parallelism configuration"). Workload: micro-batches of 3 sequences,
//! ZeRO-1-style 8 bytes/param (as in Figs. 9/12); the large-batch rows
//! are where GPipe's stash-everything policy hits the 40 GB ceiling.

use crate::common::{fmt_outcome, render_table, WAVE_SEARCH};
use hanayo_cluster::topology::lonestar6;
use hanayo_model::{ModelConfig, Recompute};
use hanayo_sim::{evaluate_plan, Method, ParallelPlan, PlanResult, SimOptions};
use rayon::prelude::*;

/// One search cell.
#[derive(Debug, Clone)]
pub struct SearchCell {
    /// Model name.
    pub model: String,
    /// Method label (Hanayo annotated with the winning wave count).
    pub method: String,
    /// Pipeline width.
    pub pp: u32,
    /// Data-parallel width.
    pub dp: u32,
    /// Global batch in micro-batches (across all replicas).
    pub global_batch: u32,
    /// Throughput, `None` on OOM.
    pub throughput: Option<f64>,
}

fn try_plan(model: &ModelConfig, plan: ParallelPlan) -> Option<PlanResult> {
    let cluster = lonestar6(32);
    let r = evaluate_plan(&plan, model, &cluster, SimOptions::default()).ok()?;
    if r.is_oom() {
        None
    } else {
        Some(r)
    }
}

/// Evaluate the whole grid (parallelised with rayon — this is the largest
/// sweep in the harness).
pub fn data() -> Vec<SearchCell> {
    let grid: Vec<(ModelConfig, u32, (u32, u32))> = [
        ModelConfig::bert64().with_train_bytes_per_param(8),
        ModelConfig::gpt128().with_train_bytes_per_param(8),
    ]
    .into_iter()
    .flat_map(|m| {
        [32u32, 64].into_iter().flat_map(move |gb| {
            let m = m.clone();
            [(8u32, 4u32), (16, 2), (32, 1)].into_iter().map(move |pd| (m.clone(), gb, pd))
        })
    })
    .collect();

    grid.par_iter()
        .flat_map(|(model, global_batch, (pp, dp))| {
            let b = global_batch / dp;
            let mut cells = Vec::new();
            for method in [Method::GPipe, Method::Dapple, Method::ChimeraWave] {
                let plan = ParallelPlan {
                    method,
                    dp: *dp,
                    pp: *pp,
                    micro_batches: b,
                    micro_batch_size: 3,
                    recompute: Recompute::None,
                };
                cells.push(SearchCell {
                    model: model.name.clone(),
                    method: method.label(),
                    pp: *pp,
                    dp: *dp,
                    global_batch: *global_batch,
                    throughput: try_plan(model, plan).map(|r| r.throughput),
                });
            }
            // Hanayo: best wave count for this cell.
            let best = WAVE_SEARCH
                .iter()
                .filter_map(|&w| {
                    let plan = ParallelPlan {
                        method: Method::Hanayo { waves: w },
                        dp: *dp,
                        pp: *pp,
                        micro_batches: b,
                        micro_batch_size: 3,
                        recompute: Recompute::None,
                    };
                    try_plan(model, plan).map(|r| (w, r.throughput))
                })
                .max_by(|a, b| a.1.total_cmp(&b.1));
            cells.push(SearchCell {
                model: model.name.clone(),
                method: best.map(|(w, _)| format!("H-{w}")).unwrap_or_else(|| "H".to_string()),
                pp: *pp,
                dp: *dp,
                global_batch: *global_batch,
                throughput: best.map(|(_, t)| t),
            });
            cells
        })
        .collect()
}

/// The best configuration per (model, method family).
pub fn best_configs(cells: &[SearchCell]) -> Vec<(String, String, u32, u32, f64)> {
    let mut out = Vec::new();
    for model in ["Bert-64L", "GPT-128L"] {
        for fam in ["G", "D", "C", "H"] {
            let best = cells
                .iter()
                .filter(|c| c.model == model && c.method.starts_with(fam))
                .filter_map(|c| c.throughput.map(|t| (c, t)))
                .max_by(|a, b| a.1.total_cmp(&b.1));
            if let Some((c, t)) = best {
                out.push((model.to_string(), c.method.clone(), c.pp, c.dp, t));
            }
        }
    }
    out
}

/// Render the figure.
pub fn run() -> String {
    let cells = data();
    let mut out = String::from(
        "Figure 10: configuration search on 32 Lonestar6 GPUs (throughput in sequences/s)\n\n",
    );
    for model in ["Bert-64L", "GPT-128L"] {
        for gb in [32u32, 64] {
            out.push_str(&format!("{model}, global batch = {gb} micro-batches:\n"));
            let rows: Vec<Vec<String>> = [(8u32, 4u32), (16, 2), (32, 1)]
                .iter()
                .map(|(pp, dp)| {
                    let mut row = vec![format!("(P={pp}, D={dp})")];
                    for fam in ["G", "D", "C", "H"] {
                        let cell = cells
                            .iter()
                            .find(|c| {
                                c.model == model
                                    && c.global_batch == gb
                                    && c.pp == *pp
                                    && c.dp == *dp
                                    && c.method.starts_with(fam)
                            })
                            .expect("cell present");
                        let label = if fam == "H" {
                            format!("{} ({})", fmt_outcome(cell.throughput), cell.method)
                        } else {
                            fmt_outcome(cell.throughput)
                        };
                        row.push(label);
                    }
                    row
                })
                .collect();
            out.push_str(&render_table(
                &["config", "GPipe", "DAPPLE", "Chimera", "Hanayo (best W)"],
                &rows,
            ));
            out.push('\n');
        }
    }
    out.push_str("best configuration per method:\n");
    for (model, method, pp, dp, t) in best_configs(&cells) {
        out.push_str(&format!("  {model:<9} {method:<4} -> (P={pp}, D={dp}) at {t:.2} seq/s\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_complete() {
        let cells = data();
        // 2 models × 2 batches × 3 grid points × 4 methods.
        assert_eq!(cells.len(), 48);
    }

    #[test]
    fn some_gpipe_cells_oom() {
        // "The absence of data in certain areas indicates ... OOM" —
        // GPipe must hit at least one OOM cell on the 40 GB parts.
        let cells = data();
        assert!(cells.iter().any(|c| c.method == "G" && c.throughput.is_none()));
    }

    #[test]
    fn hanayo_never_ooms_and_stays_on_top() {
        let cells = data();
        for c in cells.iter().filter(|c| c.method.starts_with("H")) {
            assert!(c.throughput.is_some(), "Hanayo OOM at P={} D={}", c.pp, c.dp);
        }
        // Hanayo strictly wins the paper's chosen shallow-pipe cells; in
        // the deeper pipes the wave subdivision turns communication-bound
        // on Lonestar6's interconnect (especially for the small-hidden GPT
        // model) and straight pipes can edge ahead, so there we only
        // require Hanayo within 10% (P=16) / 15% (P=32). The paper keeps
        // only the per-config *best*, which test
        // `hanayos_best_config_is_the_papers_choice_and_wins_overall`
        // pins down strictly.
        for model in ["Bert-64L", "GPT-128L"] {
            for gb in [32u32, 64] {
                for (pp, dp) in [(8u32, 4u32), (16, 2), (32, 1)] {
                    let of = |fam: &str| {
                        cells
                            .iter()
                            .find(|c| {
                                c.model == model
                                    && c.global_batch == gb
                                    && c.pp == pp
                                    && c.dp == dp
                                    && c.method.starts_with(fam)
                            })
                            .and_then(|c| c.throughput)
                    };
                    let h = of("H").expect("hanayo runs");
                    let slack = match pp {
                        32 => 0.85,
                        16 => 0.90,
                        _ => 1.0,
                    };
                    for fam in ["G", "D", "C"] {
                        if let Some(t) = of(fam) {
                            assert!(
                                h > t * slack,
                                "{model} gb={gb} (P={pp},D={dp}): H {h} vs {fam} {t}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn hanayos_best_config_is_the_papers_choice_and_wins_overall() {
        // The paper settles on (D=4, P=8) with Hanayo on top. Require that
        // for Hanayo and Chimera (the contenders); GPipe/DAPPLE are
        // bubble-bound, not search-bound, so only their presence matters.
        let cells = data();
        let best = best_configs(&cells);
        for (model, method, pp, dp, _) in &best {
            if method.starts_with('H') || method.starts_with('C') {
                assert_eq!((*pp, *dp), (8, 4), "{model}/{method} best config");
            }
        }
        for model in ["Bert-64L", "GPT-128L"] {
            let best_h = best
                .iter()
                .find(|(m, meth, ..)| m == model && meth.starts_with('H'))
                .map(|(.., t)| *t)
                .unwrap();
            for fam in ["G", "D", "C"] {
                if let Some((.., t)) =
                    best.iter().find(|(m, meth, ..)| m == model && meth.starts_with(fam))
                {
                    assert!(best_h > *t, "{model}: H best {best_h} vs {fam} {t}");
                }
            }
        }
    }
}
