//! Shared `--metrics <path>` plumbing for the long-running binaries.
//!
//! Every binary that accepts the flag does the same three things: switch
//! the registry on before any instrumented work runs, do its job, and
//! render one snapshot to the requested file on the way out. The format
//! is chosen by extension — `.prom` gets the Prometheus text exposition,
//! anything else the `hanayo-metrics-v1` JSON document — so a scrape
//! config and a jq pipeline can share one flag.

use std::path::Path;

/// Turn the metrics registry on. Call before the instrumented work so
/// the run's first event is counted like its last.
pub fn enable_metrics() {
    hanayo_metrics::set_enabled(true);
}

/// The seeded scenario behind the `metrics` binary and the golden
/// exposition test: one pass through every instrumented layer, fully
/// deterministic under a [`hanayo_metrics::ClockMode::Fixed`] clock.
///
/// * a `P = 8`, `M = 8` Hanayo (2-wave) **simulation** on the NVSwitch
///   box — engine event and rendezvous-stall counters;
/// * a **serial sweep** over the same cluster — candidate verdicts and
///   `SweepCaches` hit/miss counters (serial so the hit/miss split is a
///   pure function of the candidate order, not thread interleaving);
/// * an 8-device micro-model **training run** of the same schedule —
///   worker op counters, GEMM dispatch counters, mailbox-wait
///   histograms, stash/parked peak gauges, heartbeats;
/// * a **checkpoint** of that run, saved and loaded back — write/resume
///   counters, byte totals and the CRC-verify histogram;
/// * one synthetic **calibration validation attempt** at exactly 10%
///   relative error — the attempt counter and error-percentage
///   histogram.
///
/// Every counter below is a pure function of this workload; the fixed
/// clock collapses every duration histogram into its first bucket. The
/// golden test pins the resulting exposition byte-for-byte.
pub fn demo_scenario() -> Result<(), String> {
    use hanayo_cluster::topology::fc_full_nvlink;
    use hanayo_core::config::{PipelineConfig, Scheme};
    use hanayo_core::schedule::build_schedule;
    use hanayo_model::builders::MicroModel;
    use hanayo_model::{CostTable, ModelConfig};
    use hanayo_runtime::trainer::synthetic_data;
    use hanayo_runtime::{train, LossKind, TrainerConfig};
    use hanayo_sim::tuner::{tune_serial, TuneOptions};
    use hanayo_sim::{simulate, SimOptions};

    hanayo_metrics::log::event(
        hanayo_metrics::log::Level::Info,
        "metrics",
        "demo scenario start",
        &[
            ("pipeline", hanayo_metrics::log::Field::Str("hanayo-2w")),
            ("devices", hanayo_metrics::log::Field::U64(8)),
        ],
    );

    // Simulation layer.
    let cfg = PipelineConfig::new(8, 8, Scheme::Hanayo { waves: 2 })
        .map_err(|e| format!("pipeline config: {e}"))?;
    let schedule = build_schedule(&cfg).map_err(|e| format!("schedule: {e}"))?;
    let cluster = fc_full_nvlink(8);
    let cost = CostTable::build(&ModelConfig::bert64(), cfg.stages(), 1);
    let report = simulate(&schedule, &cost, &cluster, SimOptions::default());
    // `<=` (not a negated `>`) so a NaN makespan also trips the guard.
    if report.iteration_time <= 0.0 || report.iteration_time.is_nan() {
        return Err("simulation produced a zero makespan".to_string());
    }

    // Tuner layer (serial: deterministic cache hit/miss split).
    let opts = TuneOptions { waves: vec![1, 2], min_pp: 4, ..Default::default() };
    let tuning = tune_serial(&ModelConfig::bert64(), &cluster, 8, 1, &opts);
    if tuning.best().is_none() {
        return Err("sweep ranked no candidate".to_string());
    }

    // Runtime layer: the same 8-device schedule with real math.
    let stages = MicroModel { width: 8, total_blocks: cfg.stages() as usize, seed: 7 }
        .build_stages(cfg.stages());
    let data = synthetic_data(3, 2, 8, 2, 8);
    let trainer = TrainerConfig::new(schedule, stages, 0.05, LossKind::Mse);
    let out = train(&trainer, &data);

    // Checkpoint layer: freeze, save, load back.
    let ckpt = hanayo_runtime::checkpoint_of(&trainer, &out, data.len() as u32, 1);
    let path = std::env::temp_dir().join("hanayo-metrics-demo.ckpt.json");
    ckpt.save(&path).map_err(|e| format!("checkpoint save: {e}"))?;
    hanayo_ckpt::Checkpoint::load(&path).map_err(|e| format!("checkpoint load: {e}"))?;
    let _ = std::fs::remove_file(&path);

    // Calibration validation: a synthetic attempt at exactly 10% error.
    let rel = hanayo_trace::record_validation_attempt(0, 1.1, 1.0, 0.4);
    if (rel - 0.1).abs() > 1e-12 {
        return Err(format!("synthetic attempt scored {rel}, expected 0.1"));
    }
    Ok(())
}

/// Drop the series whose values depend on thread scheduling, leaving a
/// snapshot that is a pure function of the workload. Exactly one metric
/// qualifies today: `hanayo_worker_mailbox_parked_peak` — how deeply a
/// mailbox parks depends on whether a producer ran ahead of its
/// consumer's receive, which the OS scheduler decides. Everything else
/// (op counts, cache verdicts under a serial sweep, fixed-clock
/// histograms, stash peaks) is deterministic; the golden exposition
/// test pins the scrubbed document byte-for-byte.
pub fn scrub_scheduling_dependent(snap: &mut hanayo_metrics::Snapshot) {
    snap.series.retain(|s| s.name != "hanayo_worker_mailbox_parked_peak");
}

/// Render the current registry contents to `path` (`.prom` → Prometheus
/// text, otherwise JSON). Returns the number of series written.
pub fn write_metrics(path: &str) -> Result<usize, String> {
    let snap = hanayo_metrics::snapshot();
    let n = snap.series.len();
    let text = if Path::new(path).extension().is_some_and(|e| e == "prom") {
        hanayo_metrics::expo::prometheus(&snap)
    } else {
        hanayo_metrics::expo::json(&snap)
    };
    std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
    Ok(n)
}
