//! Figure 11: weak scaling of the BERT-style model on Lonestar6 — devices
//! 8 → 16 → 32 with the batch growing proportionally.
//!
//! Following the paper's §5.3 configuration choice (the search of Fig. 10
//! settles on P = 8 pipelines), scale comes from data parallelism: at
//! `n` devices we run `D = n/8` replicas of a P = 8 pipeline with `B = 8`
//! micro-batches of 2 sequences each, so per-device work stays constant
//! while the global batch grows 1→2→4×.

use crate::common::{eval_methods, fmt_outcome, render_table, WAVE_SEARCH};
use hanayo_cluster::topology::lonestar6;
use hanayo_model::{ModelConfig, Recompute};
use hanayo_sim::{evaluate_plan, Method, ParallelPlan, SimOptions};

/// One bar: device count × method.
pub struct Bar {
    /// Devices.
    pub devices: u32,
    /// Method label.
    pub method: String,
    /// Sequences/s, `None` on OOM.
    pub throughput: Option<f64>,
}

fn eval(devices: u32, method: Method) -> Option<f64> {
    let cluster = lonestar6(devices as usize);
    let plan = ParallelPlan {
        method,
        dp: devices / 8,
        pp: 8,
        micro_batches: 8,
        micro_batch_size: 2,
        recompute: Recompute::None,
    };
    let r = evaluate_plan(&plan, &ModelConfig::bert64(), &cluster, SimOptions::default()).ok()?;
    if r.is_oom() {
        None
    } else {
        Some(r.throughput)
    }
}

/// All bars, with Hanayo at its per-scale best wave count.
pub fn data() -> Vec<Bar> {
    let mut bars = Vec::new();
    for devices in [8u32, 16, 32] {
        for method in eval_methods() {
            match method {
                Method::Hanayo { .. } => {
                    let best = WAVE_SEARCH
                        .iter()
                        .filter_map(|&w| eval(devices, Method::Hanayo { waves: w }).map(|t| (w, t)))
                        .max_by(|a, b| a.1.total_cmp(&b.1));
                    bars.push(Bar {
                        devices,
                        method: best
                            .map(|(w, _)| format!("Hanayo (H-{w})"))
                            .unwrap_or_else(|| "Hanayo".into()),
                        throughput: best.map(|(_, t)| t),
                    });
                }
                m => {
                    bars.push(Bar { devices, method: m.to_string(), throughput: eval(devices, m) })
                }
            }
        }
    }
    bars
}

/// Parallel efficiency of Hanayo: `thr(P) / (thr(8) · P/8)`.
pub fn hanayo_efficiency(bars: &[Bar]) -> Vec<(u32, f64)> {
    let of = |p: u32| {
        bars.iter()
            .find(|b| b.devices == p && b.method.starts_with("Hanayo"))
            .and_then(|b| b.throughput)
            .expect("hanayo runs")
    };
    let base = of(8);
    [16u32, 32].iter().map(|&p| (p, of(p) / (base * p as f64 / 8.0))).collect()
}

/// Render the figure.
pub fn run() -> String {
    let bars = data();
    let mut out =
        String::from("Figure 11: weak scaling, BERT-style model on Lonestar6 (P = 8 pipelines, D = devices/8, B = 8)\n\n");
    let rows: Vec<Vec<String>> = [8u32, 16, 32]
        .iter()
        .map(|&p| {
            let mut row = vec![format!("devices={p}")];
            for fam in ["GPipe", "DAPPLE", "Chimera", "Hanayo"] {
                let bar = bars
                    .iter()
                    .find(|b| b.devices == p && b.method.starts_with(fam))
                    .expect("bar present");
                row.push(fmt_outcome(bar.throughput));
            }
            row
        })
        .collect();
    out.push_str(&render_table(&["scale", "GPipe", "DAPPLE", "Chimera-wave", "Hanayo"], &rows));
    out.push_str("\nHanayo parallel efficiency vs 8 devices:\n");
    for (p, eff) in hanayo_efficiency(&bars) {
        out.push_str(&format!("  {p} devices: {:.1}%\n", 100.0 * eff));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hanayo_wins_at_every_scale() {
        let bars = data();
        for p in [8u32, 16, 32] {
            let of = |fam: &str| {
                bars.iter()
                    .find(|b| b.devices == p && b.method.starts_with(fam))
                    .and_then(|b| b.throughput)
            };
            let h = of("Hanayo").expect("hanayo runs");
            for fam in ["GPipe", "DAPPLE", "Chimera"] {
                if let Some(t) = of(fam) {
                    assert!(h > t, "P={p}: Hanayo {h} vs {fam} {t}");
                }
            }
        }
    }

    #[test]
    fn hanayo_beats_chimera_by_single_digit_to_teens() {
        // Paper: 8.19%, 8.11%, 8.13%. Require the same ballpark (3%-45%).
        let bars = data();
        for p in [8u32, 16, 32] {
            let of = |fam: &str| {
                bars.iter()
                    .find(|b| b.devices == p && b.method.starts_with(fam))
                    .and_then(|b| b.throughput)
                    .unwrap()
            };
            let pct = 100.0 * (of("Hanayo") / of("Chimera") - 1.0);
            assert!((3.0..45.0).contains(&pct), "P={p}: {pct}%");
        }
    }

    #[test]
    fn weak_scaling_efficiency_stays_high() {
        // Paper: 100.1% and 99.8%. Ours must stay above 85%.
        let bars = data();
        for (p, eff) in hanayo_efficiency(&bars) {
            assert!(eff > 0.85, "P={p}: efficiency {eff}");
        }
    }
}
