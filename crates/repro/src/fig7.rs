//! Figure 7: the four bubble types of a Hanayo iteration — analytic
//! single-bubble sizes (§3.4) next to the idle time measured from the
//! replayed schedule, classified per zone.

use hanayo_core::analysis::zones::{analytic_zones, measure_zones, ZoneMeasurement, ZoneSizes};
use hanayo_core::analysis::CostTerms;
use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::gantt::replay_timeline;
use hanayo_core::schedule::build_compute_schedule;

/// Analytic and measured zone data at the figure's size (`P=4`, `W=1`).
pub fn data() -> (ZoneSizes, ZoneMeasurement) {
    let analytic = analytic_zones(4, 1, &CostTerms::paper_default());
    let cfg = PipelineConfig::new(4, 4, Scheme::Hanayo { waves: 1 }).expect("valid");
    let cs = build_compute_schedule(&cfg).expect("schedulable");
    let tl = replay_timeline(&cs, 1, 2, 0);
    (analytic, measure_zones(&tl))
}

/// Render the taxonomy.
pub fn run() -> String {
    let (a, m) = data();
    let zone_b: Vec<String> = a.zone_b.iter().map(|v| format!("{v:.2}")).collect();
    format!(
        "Figure 7: bubble taxonomy of a Hanayo wave pipeline (P=4, W=1, T_F=1, T_B=2)\n\n\
         analytic single-bubble sizes:\n\
           zone A (awaiting forward activation): {:.2}\n\
           zone B (fwd/bwd turnaround, by local rank): [{}]\n\
           zone C (awaiting peer backward): {:.2} / {:.2}\n\
           cross-communication term: {:.2}\n\n\
         measured idle (ticks, replayed schedule):\n\
           zone A: {}   zone B: {}   zone C: {}   total: {}\n",
        a.zone_a,
        zone_b.join(", "),
        a.zone_c.0,
        a.zone_c.1,
        a.cross_comm,
        m.zone_a,
        m.zone_b,
        m.zone_c,
        m.total()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_zones_nonzero() {
        let (_, m) = data();
        assert!(m.total() > 0);
        assert!(m.zone_a > 0);
    }

    #[test]
    fn analytic_sizes_positive_without_comm() {
        let (a, _) = data();
        assert!(a.zone_a > 0.0);
        assert!(a.zone_b.iter().all(|&v| v > 0.0));
        assert_eq!(a.cross_comm, 0.0, "T_C = 0 in the drawing convention");
    }
}
