//! Figure 2: side-by-side comparison of bubble ratio and memory for the
//! SOTA approaches (rendered numerically at `P = 8`, `B = 8`, `W = 2`).

use hanayo_core::analysis::formulas::{comparison_table, render_table, ComparisonRow};

/// The comparison rows at the figure's reference point.
pub fn data() -> Vec<ComparisonRow> {
    comparison_table(8, 8, 2).expect("the reference shapes are valid for all four schemes")
}

/// Render the figure.
pub fn run() -> String {
    format!(
        "Figure 2: comparison of SOTA approaches (P=8, B=8, Hanayo W=2)\n{}",
        render_table(&data())
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_schemes_compared() {
        assert_eq!(data().len(), 4);
    }

    #[test]
    fn hanayo_row_has_no_replica_cost() {
        let rows = data();
        let h = rows.iter().find(|r| r.scheme.contains("Hanayo")).unwrap();
        let c = rows.iter().find(|r| r.scheme.contains("Chimera")).unwrap();
        assert_eq!(h.mw_units, 1.0);
        assert_eq!(c.mw_units, 2.0);
        assert!(h.bubble_ratio <= c.bubble_ratio + 1e-9);
    }
}
