//! The memory figure: §5.1's "highest peak memory" and per-device
//! variance statistics for every scheme, under both activation
//! stash policies, in both Fig. 3 units and concrete BERT bytes.
//!
//! The paper's memory argument is two numbers per scheme: the *highest*
//! per-device peak (which decides whether a configuration fits a cluster
//! at all) and the *variance* of per-device peaks (which quantifies the
//! imbalance DAPPLE suffers and Hanayo's waves smooth out). This module
//! computes both twice — once by replaying the compute schedule in Fig. 3
//! units ([`hanayo_core::memory::unit_profile_with`]) and once by running
//! the discrete-event simulator against the BERT-64L cost table — and for
//! each of the two [`Recompute`] modes, producing the table the `memfig`
//! binary emits as JSON.

use hanayo_cluster::topology::fc_full_nvlink;
use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::memory::unit_profile_with;
use hanayo_core::schedule::{build_compute_schedule, build_schedule};
use hanayo_model::{costs, CostTable, ModelConfig, Recompute};
use hanayo_sim::{simulate, SimOptions};
use serde::Serialize;

/// Pipeline width of the figure.
pub const DEVICES: u32 = 8;
/// Micro-batches per iteration.
pub const MICRO_BATCHES: u32 = 8;

/// One row of the table: one scheme under one stash policy.
#[derive(Debug, Clone, Serialize)]
pub struct MemRow {
    /// Scheme display name.
    pub scheme: String,
    /// Figure label (`G`, `D`, `C2`, `H-2`, ...).
    pub label: String,
    /// Stash policy (`none` / `full`).
    pub recompute: String,
    /// Largest per-device weight share, Fig. 3 units (Chimera: 2).
    pub max_weight_units: f64,
    /// Highest per-device peak (`Mw + Ma`), Fig. 3 units.
    pub highest_peak_units: f64,
    /// Population variance of per-device peak totals, units².
    pub variance_units: f64,
    /// Highest per-device peak in GB, BERT-64L on the simulator.
    pub highest_peak_gb: f64,
    /// Population variance of per-device peaks, GB².
    pub variance_gb2: f64,
}

/// The document the `memfig` binary prints.
#[derive(Debug, Clone, Serialize)]
pub struct MemTable {
    /// Model driving the byte columns.
    pub model: String,
    /// Pipeline width.
    pub devices: u32,
    /// Micro-batches per iteration.
    pub micro_batches: u32,
    /// One row per scheme × recompute mode.
    pub rows: Vec<MemRow>,
}

/// The schemes of the figure: Hanayo w ∈ {1, 2, 4} vs the baselines.
fn schemes() -> Vec<(&'static str, Scheme)> {
    vec![
        ("GPipe", Scheme::GPipe),
        ("DAPPLE", Scheme::Dapple),
        ("Chimera", Scheme::Chimera),
        ("Hanayo(W=1)", Scheme::Hanayo { waves: 1 }),
        ("Hanayo(W=2)", Scheme::Hanayo { waves: 2 }),
        ("Hanayo(W=4)", Scheme::Hanayo { waves: 4 }),
    ]
}

fn label_of(scheme: Scheme) -> String {
    match scheme {
        Scheme::GPipe => "G".into(),
        Scheme::Dapple => "D".into(),
        Scheme::Chimera => "C2".into(),
        Scheme::Hanayo { waves } => format!("H-{waves}"),
        other => format!("{other}"),
    }
}

/// Weight of one stage stash in Fig. 3 activation units for `model` under
/// `mode`. One activation unit is the stash of one micro-batch across
/// `model/P` worth of layers; a checkpointed stage keeps only its input
/// boundary tensor, which for a real transformer is a tiny fraction of a
/// unit.
pub fn stash_units(model: &ModelConfig, devices: u32, stages: u32, mode: Recompute) -> f64 {
    match mode {
        Recompute::None => devices as f64 / stages as f64,
        Recompute::Full => {
            let unit_bytes =
                costs::act_bytes_per_layer(model, 1) as f64 * model.layers as f64 / devices as f64;
            costs::boundary_bytes(model, 1) as f64 / unit_bytes
        }
    }
}

/// All rows: 6 schemes × 2 recompute modes.
pub fn data() -> MemTable {
    let model = ModelConfig::bert64();
    let cluster = fc_full_nvlink(DEVICES as usize);
    let mut rows = Vec::new();
    for (name, scheme) in schemes() {
        let cfg = PipelineConfig::new(DEVICES, MICRO_BATCHES, scheme).expect("valid");
        let cs = build_compute_schedule(&cfg).expect("schedulable");
        let schedule = build_schedule(&cfg).expect("schedulable");
        for mode in Recompute::ALL {
            let units = stash_units(&model, DEVICES, cfg.stages(), mode);
            let prof = unit_profile_with(&cs, units);
            let cost = CostTable::build_with(&model, cfg.stages(), 1, mode);
            let report = simulate(&schedule, &cost, &cluster, SimOptions::default());
            rows.push(MemRow {
                scheme: name.to_string(),
                label: label_of(scheme),
                recompute: mode.label().to_string(),
                max_weight_units: prof.mw_units.iter().cloned().fold(0.0, f64::max),
                highest_peak_units: prof.highest_peak().expect("non-empty profile"),
                variance_units: prof.variance_total,
                highest_peak_gb: report.highest_peak() as f64 / 1e9,
                variance_gb2: report.peak_variance_gb2(),
            });
        }
    }
    MemTable { model: model.name.clone(), devices: DEVICES, micro_batches: MICRO_BATCHES, rows }
}

/// Render the table as pretty JSON (the `memfig` binary's output).
pub fn run() -> String {
    serde_json::to_string_pretty(&data()).expect("table serialises")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_rows_cover_the_grid() {
        let t = data();
        assert_eq!(t.rows.len(), 12);
        for (name, _) in schemes() {
            for mode in Recompute::ALL {
                assert!(
                    t.rows.iter().any(|r| r.scheme == name && r.recompute == mode.label()),
                    "missing {name}/{mode}"
                );
            }
        }
    }

    #[test]
    fn checkpointing_lowers_every_scheme_peak() {
        let t = data();
        for (name, _) in schemes() {
            let of = |mode: &str| {
                t.rows.iter().find(|r| r.scheme == name && r.recompute == mode).unwrap()
            };
            let (none, full) = (of("none"), of("full"));
            assert!(
                full.highest_peak_gb < none.highest_peak_gb,
                "{name}: {} !< {}",
                full.highest_peak_gb,
                none.highest_peak_gb
            );
            assert!(full.highest_peak_units < none.highest_peak_units, "{name} units");
            // Weights are untouched by the stash policy.
            assert_eq!(full.max_weight_units, none.max_weight_units);
        }
    }

    #[test]
    fn chimera_is_the_only_doubled_weight_row() {
        for r in data().rows {
            if r.scheme == "Chimera" {
                assert_eq!(r.max_weight_units, 2.0);
            } else {
                assert!(
                    (r.max_weight_units - 1.0).abs() < 1e-9,
                    "{}: {}",
                    r.scheme,
                    r.max_weight_units
                );
            }
        }
    }

    #[test]
    fn hanayo_balances_what_dapple_skews() {
        // §5.1's variance claim, visible in both unit and byte statistics.
        let t = data();
        let of =
            |name: &str| t.rows.iter().find(|r| r.scheme == name && r.recompute == "none").unwrap();
        assert!(of("Hanayo(W=2)").variance_units < of("DAPPLE").variance_units);
        assert!(of("Hanayo(W=2)").variance_gb2 < of("DAPPLE").variance_gb2);
    }

    #[test]
    fn output_is_json_with_the_documented_keys() {
        let text = run();
        for key in [
            "\"model\"",
            "\"rows\"",
            "\"recompute\"",
            "\"highest_peak_units\"",
            "\"variance_units\"",
            "\"highest_peak_gb\"",
            "\"variance_gb2\"",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }
}
