//! Figure 12: strong scaling — a fixed batch (16 micro-batches of 3
//! sequences, sized to press against Lonestar6's 40 GB ceiling) trained
//! on 8, 16 and 32 GPUs with a single pipeline. GPipe's stash-everything
//! policy OOMs at 8 GPUs; Hanayo leads everywhere.
//!
//! Divergence from the paper, recorded in EXPERIMENTS.md: the paper also
//! reports DAPPLE OOM at 8 GPUs, but under the unit accounting of its own
//! Fig. 3 a 1F1B head device and a Hanayo device stash the *same* number
//! of activation units, so any workload that OOMs DAPPLE here would OOM
//! Hanayo too. We keep DAPPLE alive and reproduce the figure's remaining
//! claims exactly.

use crate::common::{eval_methods, fmt_outcome, render_table, WAVE_SEARCH};
use hanayo_cluster::topology::lonestar6;
use hanayo_model::{ModelConfig, Recompute};
use hanayo_sim::{evaluate_plan, Method, ParallelPlan, SimOptions};

/// Fixed global batch: 16 micro-batches.
pub const MICRO_BATCHES: u32 = 16;
/// Sequences per micro-batch.
pub const MICRO_BATCH_SIZE: u32 = 3;

/// One bar: device count × method.
pub struct Bar {
    /// Devices.
    pub devices: u32,
    /// Method label.
    pub method: String,
    /// Sequences/s, `None` on OOM.
    pub throughput: Option<f64>,
}

/// Evaluate a method at a device count, searching the (P, D) grid with
/// `P·D = devices` and splitting the fixed batch across replicas — the
/// paper's §5.3 protocol ("all throughput data were selected using the
/// approach described in the previous section").
fn eval(devices: u32, method: Method) -> Option<f64> {
    let cluster = lonestar6(devices as usize);
    // Same ZeRO-1-style accounting as Fig. 9 (required to fit
    // Chimera-wave's consolidated weights at small P).
    let model = ModelConfig::bert64().with_train_bytes_per_param(8);
    [8u32, 16, 32]
        .into_iter()
        .filter(|&pp| pp <= devices && devices.is_multiple_of(pp))
        .filter_map(|pp| {
            let dp = devices / pp;
            if !MICRO_BATCHES.is_multiple_of(dp) {
                return None;
            }
            let plan = ParallelPlan {
                method,
                dp,
                pp,
                micro_batches: MICRO_BATCHES / dp,
                micro_batch_size: MICRO_BATCH_SIZE,
                recompute: Recompute::None,
            };
            let r = evaluate_plan(&plan, &model, &cluster, SimOptions::default()).ok()?;
            if r.is_oom() {
                None
            } else {
                Some(r.throughput)
            }
        })
        .fold(None, |acc: Option<f64>, t| Some(acc.map_or(t, |a| a.max(t))))
}

/// All bars, with Hanayo at its per-scale best wave count.
pub fn data() -> Vec<Bar> {
    let mut bars = Vec::new();
    for devices in [8u32, 16, 32] {
        for method in eval_methods() {
            match method {
                Method::Hanayo { .. } => {
                    let best = WAVE_SEARCH
                        .iter()
                        .filter_map(|&w| eval(devices, Method::Hanayo { waves: w }).map(|t| (w, t)))
                        .max_by(|a, b| a.1.total_cmp(&b.1));
                    bars.push(Bar {
                        devices,
                        method: best
                            .map(|(w, _)| format!("Hanayo (H-{w})"))
                            .unwrap_or_else(|| "Hanayo".into()),
                        throughput: best.map(|(_, t)| t),
                    });
                }
                m => {
                    bars.push(Bar { devices, method: m.to_string(), throughput: eval(devices, m) })
                }
            }
        }
    }
    bars
}

/// Hanayo's speedup when scaling 8 → 16 → 32 devices (paper: 188.4% and
/// 337.5%).
pub fn hanayo_speedups(bars: &[Bar]) -> Vec<(u32, f64)> {
    let of = |p: u32| {
        bars.iter()
            .find(|b| b.devices == p && b.method.starts_with("Hanayo"))
            .and_then(|b| b.throughput)
            .expect("hanayo runs")
    };
    let base = of(8);
    [16u32, 32].iter().map(|&p| (p, 100.0 * of(p) / base)).collect()
}

/// Render the figure.
pub fn run() -> String {
    let bars = data();
    let mut out = String::from(
        "Figure 12: strong scaling, BERT-style model on Lonestar6 \
         (fixed batch: 16 micro-batches x 3 sequences)\n\n",
    );
    let rows: Vec<Vec<String>> = [8u32, 16, 32]
        .iter()
        .map(|&p| {
            let mut row = vec![format!("devices={p}")];
            for fam in ["GPipe", "DAPPLE", "Chimera", "Hanayo"] {
                let bar = bars
                    .iter()
                    .find(|b| b.devices == p && b.method.starts_with(fam))
                    .expect("bar present");
                row.push(fmt_outcome(bar.throughput));
            }
            row
        })
        .collect();
    out.push_str(&render_table(&["scale", "GPipe", "DAPPLE", "Chimera", "Hanayo"], &rows));
    out.push_str("\nHanayo speedup vs 8 devices:\n");
    for (p, pct) in hanayo_speedups(&bars) {
        out.push_str(&format!("  {p} devices: {pct:.1}%\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpipe_ooms_only_at_eight_gpus() {
        let bars = data();
        let of = |p: u32| {
            bars.iter()
                .find(|b| b.devices == p && b.method.starts_with("GPipe"))
                .unwrap()
                .throughput
        };
        assert!(of(8).is_none(), "GPipe must OOM at 8 GPUs");
        assert!(of(16).is_some(), "GPipe must fit at 16 GPUs");
        assert!(of(32).is_some(), "GPipe must fit at 32 GPUs");
    }

    #[test]
    fn dapple_survives_with_its_1f1b_budget() {
        // Documented divergence: the paper reports DAPPLE OOM at 8 GPUs;
        // under Fig. 3's own unit accounting DAPPLE's head stash equals
        // Hanayo's, so here it survives exactly where Hanayo does.
        let bars = data();
        for p in [8u32, 16, 32] {
            let bar =
                bars.iter().find(|b| b.devices == p && b.method.starts_with("DAPPLE")).unwrap();
            assert!(bar.throughput.is_some(), "DAPPLE at {p}");
        }
    }

    #[test]
    fn hanayo_and_chimera_fit_everywhere() {
        let bars = data();
        for fam in ["Chimera", "Hanayo"] {
            for p in [8u32, 16, 32] {
                let bar =
                    bars.iter().find(|b| b.devices == p && b.method.starts_with(fam)).unwrap();
                assert!(bar.throughput.is_some(), "{fam} at {p}");
            }
        }
    }

    #[test]
    fn hanayo_highest_throughput_in_all_three_cases() {
        let bars = data();
        for p in [8u32, 16, 32] {
            let of = |fam: &str| {
                bars.iter()
                    .find(|b| b.devices == p && b.method.starts_with(fam))
                    .and_then(|b| b.throughput)
            };
            let h = of("Hanayo").unwrap();
            for fam in ["GPipe", "DAPPLE", "Chimera"] {
                if let Some(t) = of(fam) {
                    assert!(h > t, "P={p}: {fam}");
                }
            }
        }
    }

    #[test]
    fn more_gpus_accelerate_the_fixed_batch() {
        // Paper: 188.4% at 16 (ours lands within a few points) and 337.5%
        // at 32 — our fixed 16-micro-batch budget saturates a 32-device
        // allocation earlier, so we require monotone scaling with >150%
        // at 16 and >180% at 32 and record the delta in EXPERIMENTS.md.
        let bars = data();
        let speedups = hanayo_speedups(&bars);
        assert!(speedups[0].1 > 150.0, "16-GPU speedup {}", speedups[0].1);
        assert!(speedups[1].1 > 180.0, "32-GPU speedup {}", speedups[1].1);
        assert!(speedups[1].1 > speedups[0].1);
    }
}
