//! Figure 6: scaling Hanayo to more devices and waves — `W=2` on 8
//! devices, and `W=2` vs `W=4` on 4 devices.

use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::gantt::{render_paper_style, replay_timeline};
use hanayo_core::schedule::build_compute_schedule;

/// `(caption, gantt, bubble ratio)` per panel.
pub fn data() -> Vec<(String, String, f64)> {
    [(8u32, 2u32), (4, 2), (4, 4)]
        .into_iter()
        .map(|(p, w)| {
            let cfg = PipelineConfig::new(p, p, Scheme::Hanayo { waves: w }).expect("valid");
            let cs = build_compute_schedule(&cfg).expect("schedulable");
            let bubble = replay_timeline(&cs, 1, 2, 0).bubble_ratio();
            (format!("wave={w}, devices={p}"), render_paper_style(&cs), bubble)
        })
        .collect()
}

/// Render the panels.
pub fn run() -> String {
    let mut out = String::from("Figure 6: scaling Hanayo to more devices and waves\n\n");
    for (caption, gantt, bubble) in data() {
        out.push_str(&format!("{caption} (bubble {:.1}%)\n{gantt}\n", 100.0 * bubble));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_panels() {
        assert_eq!(data().len(), 3);
    }

    #[test]
    fn doubling_waves_cuts_bubbles_on_four_devices() {
        let d = data();
        let w2 = d[1].2;
        let w4 = d[2].2;
        assert!(w4 < w2, "W=4 {w4} vs W=2 {w2}");
    }

    #[test]
    fn eight_device_panel_has_eight_rows() {
        let d = data();
        assert_eq!(d[0].1.lines().count(), 8);
    }
}
