//! Figure 8: peak-memory distribution over 32 Lonestar6 GPUs for BERT and
//! GPT under (P=8, D=4) and (P=16, D=2), four schemes each, plus the §5.1
//! balance variances.
//!
//! Workload preset: micro-batch size 2 sequences, `B = 5P/2` micro-batches
//! per pipeline (the stash-heavy regime where GPipe's keep-everything
//! policy breaks 40 GB on the BERT model while the 1F1B-family schemes
//! stay inside — the paper's "GPipe caused OOM errors in two settings").

use crate::common::{eval_methods, render_table};
use hanayo_cluster::topology::lonestar6;
use hanayo_model::{ModelConfig, Recompute};
use hanayo_sim::{evaluate_plan, Method, ParallelPlan, SimOptions};

/// One panel: a model × parallelism setting.
pub struct Panel {
    /// Caption, e.g. `Bert (P=8, D=4, B=20)`.
    pub caption: String,
    /// Per-method results.
    pub methods: Vec<MethodMemory>,
}

/// Memory outcome of one method in one panel.
pub struct MethodMemory {
    /// The method.
    pub method: Method,
    /// Peak bytes per global device (all 32).
    pub peak_mem: Vec<u64>,
    /// Highest per-device peak, GB.
    pub highest_gb: f64,
    /// Variance of per-device peaks, GB².
    pub variance_gb2: f64,
    /// Did it exceed 40 GB?
    pub oom: bool,
}

fn micro_batches(p: u32) -> u32 {
    5 * p / 2
}

/// Evaluate all four panels.
pub fn data() -> Vec<Panel> {
    let cluster = lonestar6(32);
    let mut panels = Vec::new();
    for model in [ModelConfig::bert64(), ModelConfig::gpt128()] {
        for (p, d) in [(8u32, 4u32), (16, 2)] {
            let b = micro_batches(p);
            let methods = eval_methods()
                .into_iter()
                .map(|method| {
                    let plan = ParallelPlan {
                        method,
                        dp: d,
                        pp: p,
                        micro_batches: b,
                        micro_batch_size: 2,
                        recompute: Recompute::None,
                    };
                    let r = evaluate_plan(&plan, &model, &cluster, SimOptions::default())
                        .expect("plan fits the cluster");
                    let gb: Vec<f64> = r.peak_mem.iter().map(|&x| x as f64 / 1e9).collect();
                    let mean = gb.iter().sum::<f64>() / gb.len() as f64;
                    let var =
                        gb.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / gb.len() as f64;
                    MethodMemory {
                        method,
                        highest_gb: gb.iter().cloned().fold(0.0, f64::max),
                        variance_gb2: var,
                        oom: r.is_oom(),
                        peak_mem: r.peak_mem,
                    }
                })
                .collect();
            panels.push(Panel {
                caption: format!("{} (P={p}, D={d}, B={b}, mb=2)", model.name),
                methods,
            });
        }
    }
    panels
}

/// Render the figure.
pub fn run() -> String {
    let mut out = String::from(
        "Figure 8: peak memory distribution across 32 GPUs (TACC Lonestar6, A100-40GB)\n\n",
    );
    for panel in data() {
        out.push_str(&format!("{}\n", panel.caption));
        let rows: Vec<Vec<String>> = panel
            .methods
            .iter()
            .map(|m| {
                vec![
                    m.method.label(),
                    format!("{:.1}", m.highest_gb),
                    format!("{:.2}", m.variance_gb2),
                    if m.oom { "OOM".into() } else { "ok".into() },
                ]
            })
            .collect();
        out.push_str(&render_table(
            &["method", "highest peak (GB)", "variance (GB^2)", "fits 40GB?"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpipe_ooms_in_exactly_the_bert_panels() {
        let panels = data();
        for panel in &panels {
            let gpipe = &panel.methods[0];
            assert_eq!(gpipe.method, Method::GPipe);
            if panel.caption.contains("Bert") {
                assert!(gpipe.oom, "{}: GPipe should OOM", panel.caption);
            } else {
                assert!(!gpipe.oom, "{}: GPipe should fit", panel.caption);
            }
        }
    }

    #[test]
    fn non_gpipe_methods_always_fit() {
        for panel in data() {
            for m in &panel.methods[1..] {
                assert!(!m.oom, "{}: {} OOMed", panel.caption, m.method);
            }
        }
    }

    #[test]
    fn dapple_is_least_balanced_hanayo_among_most_balanced() {
        // §5.1: DAPPLE variance 16.85 dwarfs GPipe 1.33, Chimera 2.86,
        // Hanayo 1.44 — our shape requirement: DAPPLE's variance is the
        // largest and Hanayo's is below Chimera's and DAPPLE's.
        for panel in data() {
            let by = |m: Method| panel.methods.iter().find(|x| x.method == m).unwrap().variance_gb2;
            let dapple = by(Method::Dapple);
            let hanayo = by(Method::Hanayo { waves: 2 });
            assert!(
                dapple >= panel.methods.iter().map(|m| m.variance_gb2).fold(0.0, f64::max) - 1e-9,
                "{}: DAPPLE must be the most imbalanced",
                panel.caption
            );
            assert!(hanayo < dapple, "{}", panel.caption);
        }
    }

    #[test]
    fn every_device_is_accounted() {
        for panel in data() {
            for m in &panel.methods {
                assert_eq!(m.peak_mem.len(), 32);
                assert!(m.peak_mem.iter().all(|&x| x > 0));
            }
        }
    }
}
