//! `trace` — run a schedule under either engine, export the execution
//! trace as Chrome `trace_event` JSON, and print the analysis.
//!
//! The measure → calibrate → predict workflow from the command line:
//!
//! ```text
//! # Simulate a 2-wave Hanayo pipeline and open the timeline in Perfetto:
//! cargo run --release -p hanayo-repro --bin trace -- \
//!     --engine sim --scheme hanayo2 --chrome /tmp/sim.json
//!
//! # Trace a real threaded training run, calibrate a cost table from the
//! # measured spans, and report how well the simulator predicts it:
//! cargo run --release -p hanayo-repro --bin trace -- \
//!     --engine runtime --scheme dapple --devices 4 --calibrate
//!
//! # Validate any Chrome-trace export (CI runs this on the smoke output):
//! cargo run --release -p hanayo-repro --bin trace -- --validate /tmp/sim.json
//! ```
//!
//! See the README's "Execution tracing" section for the event schema and
//! Perfetto loading instructions.

use hanayo_cluster::topology::{fc_full_nvlink, lonestar6, pc_partial_nvlink, tencent_v100};
use hanayo_cluster::ClusterSpec;
use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::schedule::build_schedule;
use hanayo_model::builders::{micro_cost_table, MicroModel};
use hanayo_model::{CostTable, ModelConfig, Recompute};
use hanayo_runtime::trainer::{synthetic_data, train, TrainerConfig};
use hanayo_runtime::LossKind;
use hanayo_sim::{simulate, simulate_traced, SimOptions};
use hanayo_trace::{analyze, calibrate, chrome_trace_json, validate_chrome_json, Trace};
use serde::Serialize;
use std::process::ExitCode;

const USAGE: &str = "\
trace — unified execution tracing: run, export Chrome JSON, analyze, calibrate

USAGE: trace [FLAGS]
       trace --validate <file>

FLAGS (all optional):
  --engine <sim|runtime>      which engine executes the schedule  [sim]
  --scheme <name>             gpipe|dapple|interleaved2|chimera|
                              hanayo1|hanayo2|hanayo4             [hanayo2]
  --devices <P>               pipeline width                      [8 sim, 4 runtime]
  --micro-batches <B>         micro-batches per iteration         [8]
  --cluster <pc|fc|tacc|tc>   sim cluster model                   [fc]
  --model <bert64|gpt128>     sim cost model                      [bert64]
  --recompute <none|full>     activation checkpointing mode       [none]
  --iterations <N>            runtime training iterations         [1]
  --calibrate                 runtime only: fit a cost table from the
                              measured trace, re-simulate, and report
                              predicted vs measured makespan
  --chrome <path>             write Chrome trace_event JSON (loadable in
                              ui.perfetto.dev / chrome://tracing)
  --gantt <width>             include an ASCII Gantt of the trace
  --compact                   single-line JSON (default pretty)
  --validate <file>           parse a Chrome-trace export back, verify the
                              ph/ts/dur/pid/tid fields, exit non-zero on
                              any violation (prints the event count)
  --metrics <path>            enable the metrics registry and write its
                              exposition there on exit (.prom selects
                              Prometheus text, anything else JSON)
  --help                      this text
";

#[derive(Debug)]
struct Args {
    engine: String,
    scheme: String,
    devices: Option<u32>,
    micro_batches: u32,
    cluster: String,
    model: String,
    recompute: Recompute,
    iterations: usize,
    calibrate: bool,
    chrome: Option<String>,
    gantt: Option<usize>,
    compact: bool,
    validate: Option<String>,
    metrics: Option<String>,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            engine: "sim".into(),
            scheme: "hanayo2".into(),
            devices: None,
            micro_batches: 8,
            cluster: "fc".into(),
            model: "bert64".into(),
            recompute: Recompute::None,
            iterations: 1,
            calibrate: false,
            chrome: None,
            gantt: None,
            compact: false,
            validate: None,
            metrics: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--engine" => args.engine = value("--engine")?,
            "--scheme" => args.scheme = value("--scheme")?,
            "--devices" => {
                args.devices =
                    Some(value("--devices")?.parse().map_err(|e| format!("--devices: {e}"))?)
            }
            "--micro-batches" => {
                args.micro_batches = value("--micro-batches")?
                    .parse()
                    .map_err(|e| format!("--micro-batches: {e}"))?
            }
            "--cluster" => args.cluster = value("--cluster")?,
            "--model" => args.model = value("--model")?,
            "--recompute" => {
                let m = value("--recompute")?;
                args.recompute = Recompute::ALL
                    .into_iter()
                    .find(|mode| mode.label() == m)
                    .ok_or_else(|| format!("--recompute: unknown mode {m}"))?
            }
            "--iterations" => {
                args.iterations =
                    value("--iterations")?.parse().map_err(|e| format!("--iterations: {e}"))?
            }
            "--calibrate" => args.calibrate = true,
            "--chrome" => args.chrome = Some(value("--chrome")?),
            "--gantt" => {
                args.gantt = Some(value("--gantt")?.parse().map_err(|e| format!("--gantt: {e}"))?)
            }
            "--compact" => args.compact = true,
            "--validate" => args.validate = Some(value("--validate")?),
            "--metrics" => args.metrics = Some(value("--metrics")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn scheme_for(name: &str) -> Result<Scheme, String> {
    match name {
        "gpipe" => Ok(Scheme::GPipe),
        "dapple" => Ok(Scheme::Dapple),
        "interleaved2" => Ok(Scheme::Interleaved { chunks: 2 }),
        "chimera" => Ok(Scheme::Chimera),
        "hanayo1" => Ok(Scheme::Hanayo { waves: 1 }),
        "hanayo2" => Ok(Scheme::Hanayo { waves: 2 }),
        "hanayo4" => Ok(Scheme::Hanayo { waves: 4 }),
        other => Err(format!(
            "unknown scheme {other} (expected gpipe, dapple, interleaved2, chimera, hanayo1, hanayo2 or hanayo4)"
        )),
    }
}

fn cluster_for(name: &str, gpus: usize) -> Result<ClusterSpec, String> {
    match name {
        "pc" => Ok(pc_partial_nvlink(gpus)),
        "fc" => Ok(fc_full_nvlink(gpus)),
        "tacc" => Ok(lonestar6(gpus)),
        "tc" => Ok(tencent_v100(gpus)),
        other => Err(format!("unknown cluster {other} (expected pc, fc, tacc or tc)")),
    }
}

/// The calibration loop's summary: how well the calibrated simulator
/// predicts the runtime it measured.
#[derive(Debug, Serialize)]
struct CalibrationReport {
    t_fwd_s: Vec<f64>,
    t_bwd_s: Vec<f64>,
    t_link_s: f64,
    measured_makespan_s: f64,
    predicted_makespan_s: f64,
    relative_error: f64,
}

/// The document this binary prints.
#[derive(Debug, Serialize)]
struct TraceDoc {
    engine: String,
    scheme: String,
    devices: u32,
    micro_batches: u32,
    stages: u32,
    recompute: String,
    events: usize,
    analysis: hanayo_trace::TraceAnalysis,
    calibration: Option<CalibrationReport>,
    gantt: Option<String>,
    chrome_path: Option<String>,
}

fn run(args: &Args) -> Result<TraceDoc, String> {
    let scheme = scheme_for(&args.scheme)?;
    let b = args.micro_batches;
    let runtime = match args.engine.as_str() {
        "sim" => false,
        "runtime" => true,
        other => return Err(format!("unknown engine {other} (expected sim or runtime)")),
    };
    let p = args.devices.unwrap_or(if runtime { 4 } else { 8 });
    let cfg = PipelineConfig::new(p, b, scheme).map_err(|e| e.to_string())?;
    let schedule = build_schedule(&cfg).map_err(|e| e.to_string())?;

    let (trace, calibration): (Trace, Option<CalibrationReport>) = if runtime {
        if scheme == Scheme::Chimera {
            return Err("the threaded runtime rejects replicated (chimera) schedules".into());
        }
        let s = cfg.stages();
        // Heavy enough micro-batches (64×96 rows through width-96 blocks)
        // that per-op compute dominates thread wake-up noise even in a
        // release build — the regime where calibration is meaningful.
        let model = MicroModel { width: 96, total_blocks: s as usize * 2, seed: 23 };
        let stages = model.build_stages(s);
        let trainer = TrainerConfig {
            recompute: args.recompute,
            trace: true,
            ..TrainerConfig::new(schedule.clone(), stages.clone(), 0.05, LossKind::Mse)
        };
        let data = synthetic_data(17, args.iterations, b as usize, 64, 96);
        let trace = train(&trainer, &data).trace.expect("trace requested");
        let calibration = if args.calibrate {
            let cluster = fc_full_nvlink(p as usize);
            let cal = calibrate(&trace, s as usize).map_err(|e| e.to_string())?;
            let bytes = micro_cost_table(&stages, 64, 96, args.recompute);
            let table = cal.cost_table(&bytes, &cluster).map_err(|e| e.to_string())?;
            let report = simulate(&schedule, &table, &cluster, SimOptions::default());
            // One iteration's measured span (the trace covers them all).
            let measured = trace.duration() / args.iterations as f64;
            let predicted = report.iteration_time;
            Some(CalibrationReport {
                t_fwd_s: cal.t_fwd.clone(),
                t_bwd_s: cal.t_bwd.clone(),
                t_link_s: cal.t_link,
                measured_makespan_s: measured,
                predicted_makespan_s: predicted,
                relative_error: (predicted - measured).abs() / measured,
            })
        } else {
            None
        };
        (trace, calibration)
    } else {
        if args.calibrate {
            return Err("--calibrate needs --engine runtime (it fits measured spans)".into());
        }
        let model = match args.model.as_str() {
            "bert64" => ModelConfig::bert64(),
            "gpt128" => ModelConfig::gpt128(),
            other => return Err(format!("unknown model {other} (expected bert64 or gpt128)")),
        };
        let cluster = cluster_for(&args.cluster, p as usize)?;
        let cost = CostTable::build_with(&model, cfg.stages(), 1, args.recompute);
        let (_, trace) = simulate_traced(
            &schedule,
            &cost,
            &cluster,
            SimOptions { trace: true, ..Default::default() },
        );
        (trace.expect("trace requested"), None)
    };

    let chrome_path = match &args.chrome {
        Some(path) => {
            std::fs::write(path, chrome_trace_json(&trace)?)
                .map_err(|e| format!("writing {path}: {e}"))?;
            Some(path.clone())
        }
        None => None,
    };

    Ok(TraceDoc {
        engine: args.engine.clone(),
        scheme: args.scheme.clone(),
        devices: p,
        micro_batches: b,
        stages: cfg.stages(),
        recompute: args.recompute.label().to_string(),
        events: trace.events.len(),
        analysis: analyze(&trace),
        calibration,
        gantt: args.gantt.map(|w| hanayo_trace::gantt::render(&trace, w)),
        chrome_path,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) if msg.is_empty() => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    // Validation mode: parse an export back and verify the viewer fields.
    if let Some(path) = &args.validate {
        let json = match std::fs::read_to_string(path) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: reading {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match validate_chrome_json(&json) {
            Ok(n) => {
                println!("{path}: valid Chrome trace with {n} events");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if args.metrics.is_some() {
        hanayo_repro::metricsio::enable_metrics();
    }
    let doc = match run(&args) {
        Ok(doc) => doc,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.metrics {
        match hanayo_repro::metricsio::write_metrics(path) {
            Ok(n) => eprintln!("metrics: wrote {n} series to {path}"),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    let json =
        if args.compact { serde_json::to_string(&doc) } else { serde_json::to_string_pretty(&doc) };
    match json {
        Ok(s) => {
            println!("{s}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: serialising the report failed: {e}");
            ExitCode::FAILURE
        }
    }
}
