//! `search` — schedule-space search over tabular schedule IR, scored by
//! the compiled simulator.
//!
//! Simulates the seven named schemes at `(P, B)`, seeds a
//! [`hanayo_core::schedule::table::ScheduleTable`] from the best of them,
//! hill-climbs with swap/shift/insert-idle moves, and prints the searched
//! schedule beside its baselines as JSON (with a human-readable rendering
//! of the table's rows embedded).
//!
//! ```text
//! cargo run --release -p hanayo-repro --bin search -- \
//!     --model bert64 --cluster pc --gpus 4 --micro-batches 6
//! ```
//!
//! `--validate <file>` re-reads a previously emitted document, re-runs the
//! standalone validity checker on the embedded table, and re-simulates it,
//! requiring *exact* f64 equality with the recorded iteration time — the
//! CI smoke check. See the README's "Schedule tables & search" section.

use hanayo_cluster::topology::{fc_full_nvlink, lonestar6, pc_partial_nvlink, tencent_v100};
use hanayo_cluster::ClusterSpec;
use hanayo_core::comm;
use hanayo_core::schedule::table::check_table;
use hanayo_model::{CostTable, ModelConfig, Recompute};
use hanayo_sim::{
    search_schedule, try_simulate, ScheduleSearchOptions, SearchedSchedule, SimOptions,
};
use serde::{Deserialize, Serialize};
use std::process::ExitCode;

#[derive(Debug)]
struct Args {
    model: String,
    cluster: String,
    gpus: usize,
    micro_batches: u32,
    micro_batch_size: u32,
    recompute: Recompute,
    seed: u64,
    rounds: usize,
    moves_per_round: usize,
    patience: usize,
    compact: bool,
    validate: Option<String>,
}

impl Default for Args {
    fn default() -> Args {
        let opts = ScheduleSearchOptions::default();
        Args {
            model: "bert64".to_string(),
            cluster: "pc".to_string(),
            gpus: 4,
            micro_batches: 6,
            micro_batch_size: 1,
            recompute: Recompute::None,
            seed: opts.seed,
            rounds: opts.max_rounds,
            moves_per_round: opts.moves_per_round,
            patience: opts.patience,
            compact: false,
            validate: None,
        }
    }
}

const USAGE: &str = "\
search — schedule-space search scored by the compiled simulator

USAGE: search [FLAGS]
       search --validate <file>

FLAGS (all optional):
  --model <bert64|gpt128>        architecture to schedule       [bert64]
  --cluster <pc|fc|tacc|tc>      hardware environment           [pc]
  --gpus <N>                     cluster size = pipeline width  [4]
  --micro-batches <B>            micro-batches per iteration    [6]
  --micro-batch-size <S>         sequences per micro-batch      [1]
  --recompute <none|full>        activation recomputation       [none]
  --seed <N>                     search RNG seed
  --rounds <N>                   max improvement rounds
  --moves-per-round <N>          candidate moves sampled/round
  --patience <N>                 dry rounds before giving up
  --compact                      single-line JSON (default pretty)
  --validate <file>              re-check + re-simulate a previously
                                 emitted document instead of searching
  --help                         this text
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--model" => args.model = value("--model")?,
            "--cluster" => args.cluster = value("--cluster")?,
            "--gpus" => args.gpus = value("--gpus")?.parse().map_err(|e| format!("--gpus: {e}"))?,
            "--micro-batches" => {
                args.micro_batches = value("--micro-batches")?
                    .parse()
                    .map_err(|e| format!("--micro-batches: {e}"))?
            }
            "--micro-batch-size" => {
                args.micro_batch_size = value("--micro-batch-size")?
                    .parse()
                    .map_err(|e| format!("--micro-batch-size: {e}"))?
            }
            "--recompute" => {
                let m = value("--recompute")?;
                args.recompute = Recompute::ALL
                    .into_iter()
                    .find(|mode| mode.label() == m)
                    .ok_or_else(|| format!("--recompute: unknown mode {m}"))?
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--rounds" => {
                args.rounds = value("--rounds")?.parse().map_err(|e| format!("--rounds: {e}"))?
            }
            "--moves-per-round" => {
                args.moves_per_round = value("--moves-per-round")?
                    .parse()
                    .map_err(|e| format!("--moves-per-round: {e}"))?
            }
            "--patience" => {
                args.patience =
                    value("--patience")?.parse().map_err(|e| format!("--patience: {e}"))?
            }
            "--compact" => args.compact = true,
            "--validate" => args.validate = Some(value("--validate")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn model_for(name: &str) -> Result<ModelConfig, String> {
    match name {
        "bert64" => Ok(ModelConfig::bert64()),
        "gpt128" => Ok(ModelConfig::gpt128()),
        other => Err(format!("unknown model {other} (expected bert64 or gpt128)")),
    }
}

fn cluster_for(name: &str, gpus: usize) -> Result<ClusterSpec, String> {
    match name {
        "pc" => Ok(pc_partial_nvlink(gpus)),
        "fc" => Ok(fc_full_nvlink(gpus)),
        "tacc" => Ok(lonestar6(gpus)),
        "tc" => Ok(tencent_v100(gpus)),
        other => Err(format!("unknown cluster {other} (expected pc, fc, tacc or tc)")),
    }
}

/// The document this binary prints (and re-validates).
#[derive(Debug, Serialize, Deserialize)]
struct SearchDoc {
    /// Model name as accepted by `--model` (rebuilds the cost model).
    model: String,
    /// Cluster name as accepted by `--cluster`.
    cluster: String,
    /// Cluster size (= pipeline width).
    gpus: usize,
    /// Search knobs the result is a pure function of.
    options: ScheduleSearchOptions,
    /// The searched schedule and its named baselines.
    result: SearchedSchedule,
    /// Human-readable rendering of the table, one row per device.
    rendered: Vec<String>,
}

/// Re-simulate a document's table from scratch and return the iteration
/// time; used both when validating and when cross-checking fresh output.
fn resimulate(doc: &SearchDoc) -> Result<f64, String> {
    let model = model_for(&doc.model)?;
    let cluster = cluster_for(&doc.cluster, doc.gpus)?;
    let cost = CostTable::build_with(
        &model,
        doc.result.table.config.stages(),
        doc.result.micro_batch_size,
        doc.result.recompute,
    );
    let schedule = comm::lower(&doc.result.table.to_compute());
    try_simulate(&schedule, &cost, &cluster, SimOptions::default())
        .map(|r| r.iteration_time)
        .map_err(|e| format!("re-simulation rejected the table: {e}"))
}

/// `--validate` mode: the embedded table must pass the standalone checker
/// and re-simulate to *exactly* the recorded iteration time.
fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc: SearchDoc = serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    check_table(&doc.result.table).map_err(|e| format!("table fails the checker: {e}"))?;
    let time = resimulate(&doc)?;
    if time != doc.result.iteration_time_s {
        return Err(format!(
            "recorded iteration time {} != re-simulated {time}",
            doc.result.iteration_time_s
        ));
    }
    if doc.result.iteration_time_s > doc.result.baseline_iteration_time_s {
        return Err(format!(
            "searched time {} is worse than the best named baseline {}",
            doc.result.iteration_time_s, doc.result.baseline_iteration_time_s
        ));
    }
    println!(
        "ok: {} on {} (P={}, B={}) — searched {:.6}s vs best named {:.6}s ({:+.2}%)",
        doc.model,
        doc.cluster,
        doc.result.devices,
        doc.result.micro_batches,
        doc.result.iteration_time_s,
        doc.result.baseline_iteration_time_s,
        -doc.result.improvement_pct,
    );
    Ok(())
}

fn run(args: &Args) -> Result<String, String> {
    let model = model_for(&args.model)?;
    let cluster = cluster_for(&args.cluster, args.gpus)?;
    let opts = ScheduleSearchOptions {
        seed: args.seed,
        max_rounds: args.rounds,
        moves_per_round: args.moves_per_round,
        patience: args.patience,
    };
    let result = search_schedule(
        &model,
        &cluster,
        args.gpus as u32,
        args.micro_batches,
        args.micro_batch_size,
        args.recompute,
        SimOptions::default(),
        &opts,
    )
    .map_err(|e| e.to_string())?;
    let rendered = result.table.render().lines().map(str::to_string).collect();
    let doc = SearchDoc {
        model: args.model.clone(),
        cluster: args.cluster.clone(),
        gpus: args.gpus,
        options: opts,
        result,
        rendered,
    };
    if args.compact { serde_json::to_string(&doc) } else { serde_json::to_string_pretty(&doc) }
        .map_err(|e| format!("serialising the document failed: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) if msg.is_empty() => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match &args.validate {
        Some(path) => validate(path),
        None => run(&args).map(|json| println!("{json}")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
