//! `analyze` — static schedule verification as a command-line report.
//!
//! Builds one named scheme at `(P, B)`, runs the full static analysis
//! (happens-before DAG, deadlock freedom, communication well-formedness,
//! exact per-device memory peaks, critical-path lower bound) and prints
//! the [`hanayo_analyze::AnalysisReport`] as JSON — no simulation is run.
//!
//! ```text
//! cargo run --release -p hanayo-repro --bin analyze -- \
//!     --model bert64 --cluster fc --gpus 8 --micro-batches 8 --scheme hanayo_w2
//! ```
//!
//! The document is built by [`hanayo_serve::schema::run_analyze`] — the
//! same code path the resident planning service's `POST /v1/analyze`
//! endpoint answers with, so `--compact` stdout is byte-identical to a
//! served response for the equivalent request.
//!
//! `--validate <file>` re-reads a previously emitted document, re-derives
//! the report from scratch, and then *simulates* the schedule to check
//! every static claim against the engine: the simulation must complete
//! (deadlock verdict), the static peaks must equal the measured peaks
//! exactly, and the critical path must lower-bound the measured iteration
//! time — the CI smoke check. See the README's "Static schedule analysis"
//! section.

use hanayo_analyze::analyze;
use hanayo_model::Recompute;
use hanayo_serve::schema::{rebuild_analyze, run_analyze, AnalyzeDoc, AnalyzeRequest, RunError};
use hanayo_sim::{try_simulate, SimOptions};
use std::process::ExitCode;

#[derive(Debug)]
struct Args {
    request: AnalyzeRequest,
    compact: bool,
    validate: Option<String>,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            request: AnalyzeRequest {
                model: "bert64".to_string(),
                cluster: "fc".to_string(),
                gpus: 8,
                scheme: "hanayo_w2".to_string(),
                micro_batches: 8,
                micro_batch_size: 1,
                recompute: Recompute::None,
            },
            compact: false,
            validate: None,
        }
    }
}

const USAGE: &str = "\
analyze — static schedule verification (no simulation)

USAGE: analyze [FLAGS]
       analyze --validate <file>

FLAGS (all optional):
  --model <bert64|gpt128>        architecture to schedule       [bert64]
  --cluster <pc|fc|tacc|tc>      hardware environment           [fc]
  --gpus <N>                     cluster size = pipeline width  [8]
  --micro-batches <B>            micro-batches per iteration    [8]
  --micro-batch-size <S>         sequences per micro-batch      [1]
  --scheme <NAME>                gpipe, dapple, chimera, pipedream,
                                 interleaved<C> or hanayo_w<W>  [hanayo_w2]
  --recompute <none|full>        activation recomputation       [none]
  --compact                      single-line JSON (default pretty)
  --validate <file>              re-analyze a previously emitted document
                                 and check every static claim against a
                                 fresh simulation
  --help                         this text
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let req = &mut args.request;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--model" => req.model = value("--model")?,
            "--cluster" => req.cluster = value("--cluster")?,
            "--gpus" => req.gpus = value("--gpus")?.parse().map_err(|e| format!("--gpus: {e}"))?,
            "--micro-batches" => {
                req.micro_batches = value("--micro-batches")?
                    .parse()
                    .map_err(|e| format!("--micro-batches: {e}"))?
            }
            "--micro-batch-size" => {
                req.micro_batch_size = value("--micro-batch-size")?
                    .parse()
                    .map_err(|e| format!("--micro-batch-size: {e}"))?
            }
            "--scheme" => req.scheme = value("--scheme")?,
            "--recompute" => {
                let m = value("--recompute")?;
                req.recompute = Recompute::ALL
                    .into_iter()
                    .find(|mode| mode.label() == m)
                    .ok_or_else(|| format!("--recompute: unknown mode {m}"))?
            }
            "--compact" => args.compact = true,
            "--validate" => args.validate = Some(value("--validate")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// `--validate` mode: re-derive the report from scratch, then simulate and
/// require the engine to confirm every static claim — completion (the
/// deadlock verdict), *exact* peak-memory equality, and the critical path
/// lower-bounding the measured iteration time.
fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc: AnalyzeDoc =
        serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    let (schedule, cost, cluster) = rebuild_analyze(&doc)?;

    let fresh = analyze(&schedule, &cost, &cluster)
        .map_err(|e| format!("re-analysis rejected the schedule: {e}"))?;
    if fresh != doc.report {
        return Err("recorded report differs from a fresh analysis".to_string());
    }

    let sim = try_simulate(&schedule, &cost, &cluster, SimOptions::default())
        .map_err(|e| format!("the simulator refutes the deadlock-freedom verdict: {e}"))?;
    if doc.report.peak_mem != sim.peak_mem {
        return Err(format!(
            "static peak_mem {:?} != simulated {:?}",
            doc.report.peak_mem, sim.peak_mem
        ));
    }
    if doc.report.weight_mem != sim.weight_mem {
        return Err(format!(
            "static weight_mem {:?} != simulated {:?}",
            doc.report.weight_mem, sim.weight_mem
        ));
    }
    if doc.report.critical_path_s > sim.iteration_time * (1.0 + 1e-9) {
        return Err(format!(
            "critical-path bound {} exceeds the simulated iteration time {}",
            doc.report.critical_path_s, sim.iteration_time
        ));
    }
    println!(
        "ok: {} {} on {} (P={}, B={}) — bound {:.6}s ≤ simulated {:.6}s ({:.2}% tight), \
         peaks exact on {} devices",
        doc.scheme,
        doc.model,
        doc.cluster,
        doc.gpus,
        doc.micro_batches,
        doc.report.critical_path_s,
        sim.iteration_time,
        100.0 * doc.report.critical_path_s / sim.iteration_time,
        doc.report.peak_mem.len(),
    );
    Ok(())
}

fn run(args: &Args) -> Result<String, String> {
    let doc = run_analyze(&args.request).map_err(|e| match e {
        RunError::BadRequest(msg) => msg,
        other => other.to_string(),
    })?;
    if args.compact { serde_json::to_string(&doc) } else { serde_json::to_string_pretty(&doc) }
        .map_err(|e| format!("serialising the document failed: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) if msg.is_empty() => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match &args.validate {
        Some(path) => validate(path),
        None => run(&args).map(|json| println!("{json}")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
