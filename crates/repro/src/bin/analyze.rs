//! `analyze` — static schedule verification as a command-line report.
//!
//! Builds one named scheme at `(P, B)`, runs the full static analysis
//! (happens-before DAG, deadlock freedom, communication well-formedness,
//! exact per-device memory peaks, critical-path lower bound) and prints
//! the [`hanayo_analyze::AnalysisReport`] as JSON — no simulation is run.
//!
//! ```text
//! cargo run --release -p hanayo-repro --bin analyze -- \
//!     --model bert64 --cluster fc --gpus 8 --micro-batches 8 --scheme hanayo_w2
//! ```
//!
//! `--validate <file>` re-reads a previously emitted document, re-derives
//! the report from scratch, and then *simulates* the schedule to check
//! every static claim against the engine: the simulation must complete
//! (deadlock verdict), the static peaks must equal the measured peaks
//! exactly, and the critical path must lower-bound the measured iteration
//! time — the CI smoke check. See the README's "Static schedule analysis"
//! section.

use hanayo_analyze::{analyze, AnalysisReport};
use hanayo_cluster::topology::{fc_full_nvlink, lonestar6, pc_partial_nvlink, tencent_v100};
use hanayo_cluster::ClusterSpec;
use hanayo_core::action::Schedule;
use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::schedule::build_schedule;
use hanayo_model::{CostTable, ModelConfig, Recompute};
use hanayo_sim::{try_simulate, SimOptions};
use serde::{Deserialize, Serialize};
use std::process::ExitCode;

#[derive(Debug)]
struct Args {
    model: String,
    cluster: String,
    gpus: usize,
    micro_batches: u32,
    micro_batch_size: u32,
    scheme: String,
    recompute: Recompute,
    compact: bool,
    validate: Option<String>,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            model: "bert64".to_string(),
            cluster: "fc".to_string(),
            gpus: 8,
            micro_batches: 8,
            micro_batch_size: 1,
            scheme: "hanayo_w2".to_string(),
            recompute: Recompute::None,
            compact: false,
            validate: None,
        }
    }
}

const USAGE: &str = "\
analyze — static schedule verification (no simulation)

USAGE: analyze [FLAGS]
       analyze --validate <file>

FLAGS (all optional):
  --model <bert64|gpt128>        architecture to schedule       [bert64]
  --cluster <pc|fc|tacc|tc>      hardware environment           [fc]
  --gpus <N>                     cluster size = pipeline width  [8]
  --micro-batches <B>            micro-batches per iteration    [8]
  --micro-batch-size <S>         sequences per micro-batch      [1]
  --scheme <NAME>                gpipe, dapple, chimera, pipedream,
                                 interleaved<C> or hanayo_w<W>  [hanayo_w2]
  --recompute <none|full>        activation recomputation       [none]
  --compact                      single-line JSON (default pretty)
  --validate <file>              re-analyze a previously emitted document
                                 and check every static claim against a
                                 fresh simulation
  --help                         this text
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--model" => args.model = value("--model")?,
            "--cluster" => args.cluster = value("--cluster")?,
            "--gpus" => args.gpus = value("--gpus")?.parse().map_err(|e| format!("--gpus: {e}"))?,
            "--micro-batches" => {
                args.micro_batches = value("--micro-batches")?
                    .parse()
                    .map_err(|e| format!("--micro-batches: {e}"))?
            }
            "--micro-batch-size" => {
                args.micro_batch_size = value("--micro-batch-size")?
                    .parse()
                    .map_err(|e| format!("--micro-batch-size: {e}"))?
            }
            "--scheme" => args.scheme = value("--scheme")?,
            "--recompute" => {
                let m = value("--recompute")?;
                args.recompute = Recompute::ALL
                    .into_iter()
                    .find(|mode| mode.label() == m)
                    .ok_or_else(|| format!("--recompute: unknown mode {m}"))?
            }
            "--compact" => args.compact = true,
            "--validate" => args.validate = Some(value("--validate")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn model_for(name: &str) -> Result<ModelConfig, String> {
    match name {
        "bert64" => Ok(ModelConfig::bert64()),
        "gpt128" => Ok(ModelConfig::gpt128()),
        other => Err(format!("unknown model {other} (expected bert64 or gpt128)")),
    }
}

fn cluster_for(name: &str, gpus: usize) -> Result<ClusterSpec, String> {
    match name {
        "pc" => Ok(pc_partial_nvlink(gpus)),
        "fc" => Ok(fc_full_nvlink(gpus)),
        "tacc" => Ok(lonestar6(gpus)),
        "tc" => Ok(tencent_v100(gpus)),
        other => Err(format!("unknown cluster {other} (expected pc, fc, tacc or tc)")),
    }
}

fn scheme_for(name: &str) -> Result<Scheme, String> {
    if let Some(waves) = name.strip_prefix("hanayo_w") {
        let waves = waves.parse().map_err(|e| format!("--scheme {name}: {e}"))?;
        return Ok(Scheme::Hanayo { waves });
    }
    if let Some(chunks) = name.strip_prefix("interleaved") {
        let chunks = chunks.parse().map_err(|e| format!("--scheme {name}: {e}"))?;
        return Ok(Scheme::Interleaved { chunks });
    }
    match name {
        "gpipe" => Ok(Scheme::GPipe),
        "dapple" => Ok(Scheme::Dapple),
        "chimera" => Ok(Scheme::Chimera),
        "pipedream" => Ok(Scheme::AsyncPipeDream),
        other => Err(format!(
            "unknown scheme {other} (expected gpipe, dapple, chimera, pipedream, \
             interleaved<C> or hanayo_w<W>)"
        )),
    }
}

/// The document this binary prints (and re-validates).
#[derive(Debug, Serialize, Deserialize)]
struct AnalyzeDoc {
    /// Model name as accepted by `--model` (rebuilds the cost model).
    model: String,
    /// Cluster name as accepted by `--cluster`.
    cluster: String,
    /// Cluster size (= pipeline width).
    gpus: usize,
    /// Scheme name as accepted by `--scheme`.
    scheme: String,
    /// Micro-batches per iteration.
    micro_batches: u32,
    /// Sequences per micro-batch.
    micro_batch_size: u32,
    /// Activation recomputation mode the cost table was built with.
    recompute: Recompute,
    /// The full static-analysis report the claims below are read from.
    report: AnalysisReport,
}

/// Rebuild the schedule, cost table and cluster a document describes —
/// the report must be a pure function of these three.
fn rebuild(doc: &AnalyzeDoc) -> Result<(Schedule, CostTable, ClusterSpec), String> {
    let model = model_for(&doc.model)?;
    let cluster = cluster_for(&doc.cluster, doc.gpus)?;
    let scheme = scheme_for(&doc.scheme)?;
    let cfg = PipelineConfig::new(doc.gpus as u32, doc.micro_batches, scheme)
        .map_err(|e| format!("invalid pipeline shape: {e}"))?;
    let schedule = build_schedule(&cfg).map_err(|e| format!("building {}: {e}", doc.scheme))?;
    let cost = CostTable::build_with(&model, cfg.stages(), doc.micro_batch_size, doc.recompute);
    Ok((schedule, cost, cluster))
}

/// `--validate` mode: re-derive the report from scratch, then simulate and
/// require the engine to confirm every static claim — completion (the
/// deadlock verdict), *exact* peak-memory equality, and the critical path
/// lower-bounding the measured iteration time.
fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc: AnalyzeDoc =
        serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    let (schedule, cost, cluster) = rebuild(&doc)?;

    let fresh = analyze(&schedule, &cost, &cluster)
        .map_err(|e| format!("re-analysis rejected the schedule: {e}"))?;
    if fresh != doc.report {
        return Err("recorded report differs from a fresh analysis".to_string());
    }

    let sim = try_simulate(&schedule, &cost, &cluster, SimOptions::default())
        .map_err(|e| format!("the simulator refutes the deadlock-freedom verdict: {e}"))?;
    if doc.report.peak_mem != sim.peak_mem {
        return Err(format!(
            "static peak_mem {:?} != simulated {:?}",
            doc.report.peak_mem, sim.peak_mem
        ));
    }
    if doc.report.weight_mem != sim.weight_mem {
        return Err(format!(
            "static weight_mem {:?} != simulated {:?}",
            doc.report.weight_mem, sim.weight_mem
        ));
    }
    if doc.report.critical_path_s > sim.iteration_time * (1.0 + 1e-9) {
        return Err(format!(
            "critical-path bound {} exceeds the simulated iteration time {}",
            doc.report.critical_path_s, sim.iteration_time
        ));
    }
    println!(
        "ok: {} {} on {} (P={}, B={}) — bound {:.6}s ≤ simulated {:.6}s ({:.2}% tight), \
         peaks exact on {} devices",
        doc.scheme,
        doc.model,
        doc.cluster,
        doc.gpus,
        doc.micro_batches,
        doc.report.critical_path_s,
        sim.iteration_time,
        100.0 * doc.report.critical_path_s / sim.iteration_time,
        doc.report.peak_mem.len(),
    );
    Ok(())
}

fn run(args: &Args) -> Result<String, String> {
    let model = model_for(&args.model)?;
    let cluster = cluster_for(&args.cluster, args.gpus)?;
    let scheme = scheme_for(&args.scheme)?;
    let cfg = PipelineConfig::new(args.gpus as u32, args.micro_batches, scheme)
        .map_err(|e| format!("invalid pipeline shape: {e}"))?;
    let schedule = build_schedule(&cfg).map_err(|e| format!("building {}: {e}", args.scheme))?;
    let cost = CostTable::build_with(&model, cfg.stages(), args.micro_batch_size, args.recompute);
    let report = analyze(&schedule, &cost, &cluster)
        .map_err(|e| format!("static analysis rejected {}: {e}", args.scheme))?;
    let doc = AnalyzeDoc {
        model: args.model.clone(),
        cluster: args.cluster.clone(),
        gpus: args.gpus,
        scheme: args.scheme.clone(),
        micro_batches: args.micro_batches,
        micro_batch_size: args.micro_batch_size,
        recompute: args.recompute,
        report,
    };
    if args.compact { serde_json::to_string(&doc) } else { serde_json::to_string_pretty(&doc) }
        .map_err(|e| format!("serialising the document failed: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) if msg.is_empty() => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match &args.validate {
        Some(path) => validate(path),
        None => run(&args).map(|json| println!("{json}")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
