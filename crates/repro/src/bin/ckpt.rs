//! `ckpt` — fault tolerance end to end from the command line: train with a
//! checkpoint policy, inject a deterministic failure, inspect the durable
//! checkpoint, resume and *prove* bit-equality with the uninterrupted run,
//! and price checkpoint intervals by goodput.
//!
//! ```text
//! # Train 6 iterations, checkpoint every 2, kill device 1 at iteration 3;
//! # the last durable checkpoint lands in /tmp/ckpt.json:
//! cargo run --release -p hanayo-repro --bin ckpt -- \
//!     --mode run --scheme hanayo2 --devices 2 --micro-batches 4 \
//!     --iterations 6 --every 2 --kill-device 1 --kill-at 3 --out /tmp/ckpt.json
//!
//! # Resume it and verify the final weights/losses are bitwise identical
//! # to a run that never failed:
//! cargo run --release -p hanayo-repro --bin ckpt -- \
//!     --mode resume --ckpt /tmp/ckpt.json --verify
//!
//! # Rank checkpoint intervals by goodput on TACC with a 1-day MTBF:
//! cargo run --release -p hanayo-repro --bin ckpt -- \
//!     --mode goodput --cluster tacc --mtbf-hours 24 --intervals 4,16
//! ```
//!
//! See the README's "Fault tolerance & checkpointing" section for the JSON
//! schemas.

use hanayo_ckpt::recovery::{young_daly_interval_s, RecoveryOptions};
use hanayo_ckpt::{Checkpoint, CheckpointPolicy, FailurePlan, RngCursor};
use hanayo_cluster::topology::{fc_full_nvlink, lonestar6, pc_partial_nvlink, tencent_v100};
use hanayo_cluster::ClusterSpec;
use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::schedule::build_schedule;
use hanayo_model::builders::MicroModel;
use hanayo_model::{ModelConfig, Recompute};
use hanayo_runtime::trainer::{
    resume, synthetic_data, synthetic_data_at, synthetic_draws_per_iteration, train,
    try_train_resumable, TrainOutput, TrainerConfig,
};
use hanayo_runtime::{checkpoint_of, LossKind};
use hanayo_sim::plan::{evaluate_plan, Method, ParallelPlan};
use hanayo_sim::tuner::plan_recovery_eval;
use hanayo_sim::SimOptions;
use hanayo_tensor::Stage;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::process::ExitCode;

#[derive(Debug)]
struct Args {
    mode: String,
    scheme: String,
    devices: u32,
    micro_batches: u32,
    iterations: u32,
    every: u32,
    seed: u64,
    lr: f32,
    width: usize,
    rows: usize,
    kill_device: Option<u32>,
    kill_at: Option<u32>,
    drop_link: Option<(u32, u32)>,
    drop_at: Option<u32>,
    out: Option<String>,
    ckpt: Option<String>,
    verify: bool,
    cluster: String,
    gpus: usize,
    model: String,
    batch: u32,
    mtbf_hours: Option<f64>,
    restart_s: f64,
    intervals: Vec<u32>,
    compact: bool,
    metrics: Option<String>,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            mode: "run".to_string(),
            scheme: "hanayo2".to_string(),
            devices: 2,
            micro_batches: 4,
            iterations: 6,
            every: 2,
            seed: 7,
            lr: 0.05,
            width: 8,
            rows: 2,
            kill_device: None,
            kill_at: None,
            drop_link: None,
            drop_at: None,
            out: None,
            ckpt: None,
            verify: false,
            cluster: "tacc".to_string(),
            gpus: 8,
            model: "bert64".to_string(),
            batch: 8,
            mtbf_hours: None,
            restart_s: 30.0,
            intervals: vec![4, 16],
            compact: false,
            metrics: None,
        }
    }
}

const USAGE: &str = "\
ckpt — deterministic checkpoint/restore, failure injection and goodput planning

USAGE: ckpt --mode <run|inspect|resume|goodput|validate-goodput> [FLAGS]

MODES:
  run               train with a checkpoint policy (and optionally an injected
                    failure); writes the final — or last durable — checkpoint
  inspect           print a checkpoint file's metadata as JSON
  resume            load a checkpoint, regenerate the remaining data from the
                    stored RNG cursor, finish the run; --verify additionally
                    re-runs uninterrupted and asserts bitwise equality
  goodput           evaluate checkpoint intervals for the six benchmark
                    schemes and print the goodput table as JSON
  validate-goodput  re-parse a goodput table export and verify its schema

TRAINING FLAGS (run / resume; resume must repeat the run's values):
  --scheme <name>        gpipe|dapple|interleaved2|hanayo1|hanayo2|hanayo4
                                                             [hanayo2]
  --devices <P>          pipeline width                      [2]
  --micro-batches <B>    micro-batches per iteration         [4]
  --iterations <N>       training iterations                 [6]
  --every <K>            checkpoint every K iterations, 0=off [2]
  --seed <S>             model/data seed                     [7]
  --lr <LR>              SGD learning rate                   [0.05]
  --width <W> --rows <R> micro-model tensor shape            [8, 2]
  --kill-device <D> --kill-at <I>     inject: kill device D at iteration I
  --drop-link <SRC,DST> --drop-at <I> inject: link down from iteration I
  --out <path>           (run) checkpoint file to write
  --ckpt <path>          (inspect/resume/validate-goodput) input file
  --verify               (resume) assert bit-equality with uninterrupted run

GOODPUT FLAGS:
  --cluster <pc|fc|tacc|tc>   hardware environment           [tacc]
  --gpus <N>                  cluster size                   [8]
  --model <bert64|gpt128>     cost model                     [bert64]
  --batch <B>                 micro-batches per iteration    [8]
  --mtbf-hours <H>            override per-device MTBF
  --restart-s <R>             fixed job-restart latency      [30]
  --intervals <csv>           checkpoint intervals to price  [4,16]

  --compact                   single-line JSON (default pretty)
  --metrics <path>            enable the metrics registry and write its
                              exposition there on exit (.prom selects
                              Prometheus text, anything else JSON)
  --help                      this text
";

fn parse<T: std::str::FromStr>(v: String, name: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    v.parse().map_err(|e| format!("{name}: {e}"))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--mode" => args.mode = value("--mode")?,
            "--scheme" => args.scheme = value("--scheme")?,
            "--devices" => args.devices = parse(value("--devices")?, "--devices")?,
            "--micro-batches" => {
                args.micro_batches = parse(value("--micro-batches")?, "--micro-batches")?
            }
            "--iterations" => args.iterations = parse(value("--iterations")?, "--iterations")?,
            "--every" => args.every = parse(value("--every")?, "--every")?,
            "--seed" => args.seed = parse(value("--seed")?, "--seed")?,
            "--lr" => args.lr = parse(value("--lr")?, "--lr")?,
            "--width" => args.width = parse(value("--width")?, "--width")?,
            "--rows" => args.rows = parse(value("--rows")?, "--rows")?,
            "--kill-device" => {
                args.kill_device = Some(parse(value("--kill-device")?, "--kill-device")?)
            }
            "--kill-at" => args.kill_at = Some(parse(value("--kill-at")?, "--kill-at")?),
            "--drop-link" => {
                let v = value("--drop-link")?;
                let (a, b) = v
                    .split_once(',')
                    .ok_or_else(|| format!("--drop-link expects SRC,DST, got {v}"))?;
                args.drop_link = Some((
                    a.trim().parse().map_err(|e| format!("--drop-link src: {e}"))?,
                    b.trim().parse().map_err(|e| format!("--drop-link dst: {e}"))?,
                ));
            }
            "--drop-at" => args.drop_at = Some(parse(value("--drop-at")?, "--drop-at")?),
            "--out" => args.out = Some(value("--out")?),
            "--ckpt" => args.ckpt = Some(value("--ckpt")?),
            "--verify" => args.verify = true,
            "--cluster" => args.cluster = value("--cluster")?,
            "--gpus" => args.gpus = parse(value("--gpus")?, "--gpus")?,
            "--model" => args.model = value("--model")?,
            "--batch" => args.batch = parse(value("--batch")?, "--batch")?,
            "--mtbf-hours" => {
                args.mtbf_hours = Some(parse(value("--mtbf-hours")?, "--mtbf-hours")?)
            }
            "--restart-s" => args.restart_s = parse(value("--restart-s")?, "--restart-s")?,
            "--intervals" => {
                args.intervals = value("--intervals")?
                    .split(',')
                    .map(|k| k.trim().parse().map_err(|e| format!("--intervals: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--compact" => args.compact = true,
            "--metrics" => args.metrics = Some(value("--metrics")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn scheme_for(name: &str) -> Result<Scheme, String> {
    match name {
        "gpipe" => Ok(Scheme::GPipe),
        "dapple" => Ok(Scheme::Dapple),
        "interleaved2" => Ok(Scheme::Interleaved { chunks: 2 }),
        "hanayo1" => Ok(Scheme::Hanayo { waves: 1 }),
        "hanayo2" => Ok(Scheme::Hanayo { waves: 2 }),
        "hanayo4" => Ok(Scheme::Hanayo { waves: 4 }),
        other => Err(format!(
            "unknown scheme {other} (expected gpipe, dapple, interleaved2, hanayo1, hanayo2 or \
             hanayo4 — chimera-native replicates weights, which the threaded runtime rejects)"
        )),
    }
}

fn cluster_for(name: &str, gpus: usize) -> Result<ClusterSpec, String> {
    match name {
        "pc" => Ok(pc_partial_nvlink(gpus)),
        "fc" => Ok(fc_full_nvlink(gpus)),
        "tacc" => Ok(lonestar6(gpus)),
        "tc" => Ok(tencent_v100(gpus)),
        other => Err(format!("unknown cluster {other} (expected pc, fc, tacc or tc)")),
    }
}

fn model_for(name: &str) -> Result<ModelConfig, String> {
    match name {
        "bert64" => Ok(ModelConfig::bert64()),
        "gpt128" => Ok(ModelConfig::gpt128()),
        other => Err(format!("unknown model {other} (expected bert64 or gpt128)")),
    }
}

/// Build the training job the flags describe. The data stream's seed is
/// `seed + 1` (the model uses `seed`), recorded in the checkpoint's RNG
/// cursor.
fn job_for(args: &Args) -> Result<(TrainerConfig, Vec<Stage>, u64), String> {
    let scheme = scheme_for(&args.scheme)?;
    let cfg =
        PipelineConfig::new(args.devices, args.micro_batches, scheme).map_err(|e| e.to_string())?;
    let schedule = build_schedule(&cfg).map_err(|e| e.to_string())?;
    let s = schedule.stage_map.stages;
    let model = MicroModel { width: args.width, total_blocks: s as usize, seed: args.seed };
    let stages = model.build_stages(s);
    let failure = match (args.kill_device, args.kill_at, args.drop_link, args.drop_at) {
        (Some(device), Some(iteration), _, _) => FailurePlan::KillDevice { device, iteration },
        (_, _, Some((src, dst)), Some(iteration)) => FailurePlan::DropLink { src, dst, iteration },
        (Some(_), None, _, _) | (None, Some(_), _, _) => {
            return Err("--kill-device and --kill-at must be given together".to_string())
        }
        (_, _, Some(_), None) | (_, _, None, Some(_)) => {
            return Err("--drop-link and --drop-at must be given together".to_string())
        }
        _ => FailurePlan::None,
    };
    let trainer = TrainerConfig {
        checkpoint: CheckpointPolicy::every(args.every),
        failure,
        ..TrainerConfig::new(schedule, stages.clone(), args.lr, LossKind::Mse)
    };
    Ok((trainer, stages, args.seed + 1))
}

// ---------------------------------------------------------------------------
// JSON documents
// ---------------------------------------------------------------------------

/// What `--mode run` and `--mode resume` print.
#[derive(Debug, Serialize)]
struct RunSummary {
    mode: String,
    scheme: String,
    devices: u32,
    micro_batches: u32,
    iterations: u32,
    checkpoint_every: u32,
    completed: bool,
    error: Option<String>,
    checkpoint_iteration: Option<u32>,
    checkpoint_path: Option<String>,
    losses: Vec<f32>,
    peak_stash_bytes: Vec<usize>,
    verified_bitwise: Option<bool>,
}

/// What `--mode inspect` prints.
#[derive(Debug, Serialize)]
struct Inspection {
    schema_version: u32,
    fingerprint_hex: String,
    iteration: u32,
    world: u32,
    devices: usize,
    stages: usize,
    params: usize,
    state_bytes: u64,
    losses: Vec<f32>,
    peak_stash_bytes: Vec<u64>,
    rng_seed: Option<u64>,
    rng_draws: Option<u64>,
    has_trace: bool,
    plan_json: Option<String>,
}

/// One `(scheme, interval)` row of the goodput table.
#[derive(Debug, Serialize, Deserialize)]
struct GoodputRow {
    method: String,
    label: String,
    interval_iterations: u32,
    iteration_time_s: f64,
    throughput_seq_per_s: f64,
    checkpoint_write_s: f64,
    restart_s: f64,
    cluster_mtbf_s: f64,
    efficiency: f64,
    goodput_seq_per_s: f64,
    young_daly_interval_s: f64,
}

/// The document `--mode goodput` prints.
#[derive(Debug, Serialize, Deserialize)]
struct GoodputTable {
    model: String,
    cluster: String,
    devices: usize,
    micro_batches: u32,
    device_mtbf_s: f64,
    restart_latency_s: f64,
    intervals: Vec<u32>,
    rows: Vec<GoodputRow>,
}

fn emit<T: Serialize>(doc: &T, compact: bool) -> Result<(), String> {
    let json = if compact { serde_json::to_string(doc) } else { serde_json::to_string_pretty(doc) };
    println!("{}", json.map_err(|e| e.to_string())?);
    Ok(())
}

// ---------------------------------------------------------------------------
// Modes
// ---------------------------------------------------------------------------

fn mode_run(args: &Args) -> Result<(), String> {
    let (trainer, _, data_seed) = job_for(args)?;
    let n = args.iterations as usize;
    let data = synthetic_data(data_seed, n, args.micro_batches as usize, args.rows, args.width);
    let per_iter =
        synthetic_draws_per_iteration(args.micro_batches as usize, args.rows, args.width);
    let cursor_at = |i: u32| Some(RngCursor { seed: data_seed, draws: i as u64 * per_iter });

    let mut summary = RunSummary {
        mode: "run".to_string(),
        scheme: args.scheme.clone(),
        devices: args.devices,
        micro_batches: args.micro_batches,
        iterations: args.iterations,
        checkpoint_every: args.every,
        completed: false,
        error: None,
        checkpoint_iteration: None,
        checkpoint_path: None,
        losses: Vec::new(),
        peak_stash_bytes: Vec::new(),
        verified_bitwise: None,
    };

    let checkpoint = match try_train_resumable(&trainer, &data) {
        Ok(out) => {
            summary.completed = true;
            summary.losses = out.losses.clone();
            summary.peak_stash_bytes = out.peak_stash_bytes.clone();
            let mut c = checkpoint_of(&trainer, &out, args.iterations, 1);
            c.rng = cursor_at(args.iterations);
            c
        }
        Err(failed) => {
            summary.error = Some(failed.error.to_string());
            let mut c = failed.checkpoint.ok_or_else(|| {
                format!("run failed with no durable checkpoint: {}", failed.error)
            })?;
            summary.checkpoint_iteration = Some(c.iteration);
            c.rng = cursor_at(c.iteration);
            c
        }
    };
    if let Some(out) = &args.out {
        checkpoint.save(Path::new(out)).map_err(|e| e.to_string())?;
        summary.checkpoint_path = Some(out.clone());
        summary.checkpoint_iteration = Some(checkpoint.iteration);
    }
    emit(&summary, args.compact)
}

fn mode_inspect(args: &Args) -> Result<(), String> {
    let path = args.ckpt.as_ref().ok_or("--mode inspect needs --ckpt <path>")?;
    let c = Checkpoint::load(Path::new(path)).map_err(|e| e.to_string())?;
    let doc = Inspection {
        schema_version: hanayo_ckpt::SCHEMA_VERSION,
        fingerprint_hex: format!("{:#018x}", c.fingerprint),
        iteration: c.iteration,
        world: c.world,
        devices: c.schedule.lists.len(),
        stages: c.stages.len(),
        params: c.stages.iter().map(Stage::param_count).sum(),
        state_bytes: c.state_bytes(),
        losses: c.losses.clone(),
        peak_stash_bytes: c.peak_stash_bytes.clone(),
        rng_seed: c.rng.map(|r| r.seed),
        rng_draws: c.rng.map(|r| r.draws),
        has_trace: c.trace.is_some(),
        plan_json: c.plan_json.clone(),
    };
    emit(&doc, args.compact)
}

fn bitwise_equal(a: &TrainOutput, b: &TrainOutput) -> bool {
    let bits = |o: &TrainOutput| -> Vec<u32> {
        o.stages.iter().flat_map(Stage::flat_params).map(f32::to_bits).collect()
    };
    bits(a) == bits(b)
        && a.losses.iter().map(|l| l.to_bits()).eq(b.losses.iter().map(|l| l.to_bits()))
        && a.peak_stash_bytes == b.peak_stash_bytes
}

fn mode_resume(args: &Args) -> Result<(), String> {
    let path = args.ckpt.as_ref().ok_or("--mode resume needs --ckpt <path>")?;
    let ckpt = Checkpoint::load(Path::new(path)).map_err(|e| e.to_string())?;
    let cursor = ckpt.rng.ok_or("checkpoint carries no RNG cursor; cannot regenerate data")?;
    let (trainer, initial_stages, data_seed) = job_for(args)?;
    // Disarm any injection flags for the resumed leg.
    let trainer = TrainerConfig { failure: FailurePlan::None, ..trainer };
    if data_seed != cursor.seed {
        return Err(format!(
            "--seed mismatch: checkpoint's data stream is seed {}, flags give {}",
            cursor.seed, data_seed
        ));
    }
    let n = args.iterations as usize;
    let b = args.micro_batches as usize;
    let done = ckpt.iteration as usize;
    // The cursor's draw count must agree with the data shape the flags
    // describe; a --micro-batches/--rows/--width mismatch would silently
    // resume on a different stream (and --verify would re-run on the same
    // wrong data, reporting a hollow success).
    let expected_draws = done as u64 * synthetic_draws_per_iteration(b, args.rows, args.width);
    if cursor.draws != expected_draws {
        return Err(format!(
            "RNG cursor mismatch: checkpoint stores {} draws but {done} iterations of this \
             shape consume {expected_draws} — resume must repeat the run's --micro-batches, \
             --rows and --width",
            cursor.draws
        ));
    }
    // The fingerprint does not cover --iterations, so guard the horizon
    // here: a checkpoint past the requested run length has nothing to
    // resume (resume() itself would also refuse, but only after data
    // generation — which must not be asked for `n - done < 0` iterations).
    if done > n {
        return Err(format!(
            "checkpoint has {done} completed iteration(s) but --iterations is only {n}"
        ));
    }
    // The head is only consulted for shape validation; the tail — the data
    // the resumed run actually trains on — comes straight off the stored
    // stream position.
    let mut data = synthetic_data(cursor.seed, done, b, args.rows, args.width);
    data.extend(synthetic_data_at(cursor.seed, done, n - done, b, args.rows, args.width));

    let out = resume(&trainer, &ckpt, &data).map_err(|e| e.to_string())?;
    let mut summary = RunSummary {
        mode: "resume".to_string(),
        scheme: args.scheme.clone(),
        devices: args.devices,
        micro_batches: args.micro_batches,
        iterations: args.iterations,
        checkpoint_every: args.every,
        completed: true,
        error: None,
        checkpoint_iteration: Some(ckpt.iteration),
        checkpoint_path: Some(path.clone()),
        losses: out.losses.clone(),
        peak_stash_bytes: out.peak_stash_bytes.clone(),
        verified_bitwise: None,
    };
    if args.verify {
        let uninterrupted =
            train(&TrainerConfig { stages: initial_stages, ..trainer.clone() }, &data);
        let equal = bitwise_equal(&uninterrupted, &out);
        summary.verified_bitwise = Some(equal);
        emit(&summary, args.compact)?;
        if !equal {
            return Err("resumed run is NOT bitwise equal to the uninterrupted run".to_string());
        }
        return Ok(());
    }
    emit(&summary, args.compact)
}

/// The six benchmark schemes of the memory figure, as cluster-level plans.
fn goodput_methods() -> Vec<Method> {
    vec![
        Method::GPipe,
        Method::Dapple,
        Method::ChimeraNative,
        Method::Hanayo { waves: 1 },
        Method::Hanayo { waves: 2 },
        Method::Hanayo { waves: 4 },
    ]
}

fn goodput_table(args: &Args) -> Result<GoodputTable, String> {
    let model = model_for(&args.model)?;
    let mut cluster = cluster_for(&args.cluster, args.gpus)?;
    if let Some(hours) = args.mtbf_hours {
        cluster.device_mtbf_s = hours * 3600.0;
    }
    let intervals: Vec<u32> = args.intervals.iter().copied().filter(|&k| k > 0).collect();
    if intervals.is_empty() {
        return Err("--intervals needs at least one positive interval".to_string());
    }
    let opts = RecoveryOptions { restart_latency_s: args.restart_s, device_mtbf_s: None };
    let mut rows = Vec::new();
    for method in goodput_methods() {
        let plan = ParallelPlan {
            method,
            dp: 1,
            pp: args.gpus as u32,
            micro_batches: args.batch,
            micro_batch_size: 1,
            recompute: Recompute::None,
        };
        let result = evaluate_plan(&plan, &model, &cluster, SimOptions::default())
            .map_err(|e| format!("{method}: {e}"))?;
        for &k in &intervals {
            let eval = plan_recovery_eval(&result, &cluster, k, &opts);
            rows.push(GoodputRow {
                method: method.to_string(),
                label: method.label(),
                interval_iterations: k,
                iteration_time_s: result.iteration_time,
                throughput_seq_per_s: result.throughput,
                checkpoint_write_s: eval.checkpoint_write_s,
                restart_s: eval.restart_s,
                cluster_mtbf_s: eval.cluster_mtbf_s,
                efficiency: eval.efficiency,
                goodput_seq_per_s: eval.goodput_seq_per_s,
                young_daly_interval_s: young_daly_interval_s(
                    eval.checkpoint_write_s,
                    eval.cluster_mtbf_s,
                    eval.restart_s,
                ),
            });
        }
    }
    Ok(GoodputTable {
        model: model.name.clone(),
        cluster: cluster.name.clone(),
        devices: cluster.len(),
        micro_batches: args.batch,
        device_mtbf_s: cluster.device_mtbf_s,
        restart_latency_s: args.restart_s,
        intervals,
        rows,
    })
}

fn mode_goodput(args: &Args) -> Result<(), String> {
    emit(&goodput_table(args)?, args.compact)
}

fn mode_validate_goodput(args: &Args) -> Result<(), String> {
    let path = args.ckpt.as_ref().ok_or("--mode validate-goodput needs --ckpt <path>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let table: GoodputTable = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    if table.rows.is_empty() {
        return Err("goodput table has no rows".to_string());
    }
    let expected = table.intervals.len() * goodput_methods().len();
    if table.rows.len() != expected {
        return Err(format!(
            "expected {} rows (methods × intervals), found {}",
            expected,
            table.rows.len()
        ));
    }
    for row in &table.rows {
        if !(0.0..=1.0).contains(&row.efficiency) {
            return Err(format!(
                "{}@{}: efficiency outside [0, 1]",
                row.label, row.interval_iterations
            ));
        }
        if row.goodput_seq_per_s > row.throughput_seq_per_s {
            return Err(format!(
                "{}@{}: goodput exceeds failure-free throughput",
                row.label, row.interval_iterations
            ));
        }
        if !row.checkpoint_write_s.is_finite() || row.checkpoint_write_s < 0.0 {
            return Err(format!("{}@{}: bad checkpoint stall", row.label, row.interval_iterations));
        }
    }
    println!("ok: {} rows, schema valid", table.rows.len());
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) if msg.is_empty() => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.metrics.is_some() {
        hanayo_repro::metricsio::enable_metrics();
    }
    let outcome = match args.mode.as_str() {
        "run" => mode_run(&args),
        "inspect" => mode_inspect(&args),
        "resume" => mode_resume(&args),
        "goodput" => mode_goodput(&args),
        "validate-goodput" => mode_validate_goodput(&args),
        other => Err(format!("unknown mode {other}")),
    };
    let outcome = outcome.and_then(|()| {
        let Some(path) = &args.metrics else { return Ok(()) };
        let n = hanayo_repro::metricsio::write_metrics(path)?;
        eprintln!("metrics: wrote {n} series to {path}");
        Ok(())
    });
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
