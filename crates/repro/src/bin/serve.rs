//! `serve` — the resident planning service as a binary: host mode, a
//! thin one-shot client, and the load-test/bench driver behind
//! `BENCH_SERVE.json`.
//!
//! ```text
//! # Host (ctrl-c / SIGTERM drains and exits 0):
//! cargo run --release -p hanayo-repro --bin serve -- --addr 127.0.0.1:7411
//!
//! # One-shot client (reads the JSON request from a file or stdin):
//! cargo run --release -p hanayo-repro --bin serve -- \
//!     --mode client --addr 127.0.0.1:7411 --endpoint tune --body req.json
//!
//! # Load test against an in-process server; record the pr10 entry:
//! cargo run --release -p hanayo-repro --bin serve -- \
//!     --mode loadtest --requests 1000 --record pr10
//!
//! # Re-check the committed trajectory's schema and bounds:
//! cargo run --release -p hanayo-repro --bin serve -- --mode loadtest --validate
//! ```
//!
//! The load test drives ≥ 1000 concurrent mixed `plan`/`tune`/`simulate`
//! requests, asserts p50/p99 latency bounds and a cache hit-rate floor
//! on the repeated-request phase, and proves every response byte-identical
//! to the corresponding one-shot CLI output (both are built by
//! [`hanayo_serve::schema`]).

use hanayo_model::Recompute;
use hanayo_serve::schema::{
    run_plan, run_simulate, run_tune, PlanRequest, SimulateRequest, TuneRequest,
};
use hanayo_serve::{serve, signal, Client};
use hanayo_sim::TuneContext;
use serde::{Deserialize, Serialize};
use std::io::Read;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant, SystemTime};

const USAGE: &str = "\
serve — resident planning service (host, client, load test)

USAGE: serve [--addr HOST:PORT] [--drain-secs N]
       serve --mode client --addr HOST:PORT --endpoint <plan|tune|simulate|analyze> [--body FILE]
       serve --mode loadtest [--requests N] [--concurrency C]
                             [--record LABEL | --validate] [--bench-file PATH]

FLAGS:
  --mode <serve|client|loadtest> what to run                    [serve]
  --addr <HOST:PORT>             bind (serve) / target (client)
                                 address; port 0 picks a free
                                 port and prints it             [127.0.0.1:7411]
  --drain-secs <N>               shutdown drain deadline        [10]
  --endpoint <NAME>              client: endpoint to POST to
  --body <FILE>                  client: JSON request body file
                                 (default: read stdin)
  --requests <N>                 loadtest: total requests       [1000]
  --concurrency <C>              loadtest: client threads       [32]
  --record <LABEL>               loadtest: append the measured
                                 entry to the bench trajectory
  --validate                     loadtest: only schema-check the
                                 committed trajectory, run nothing
  --bench-file <PATH>            trajectory file                [BENCH_SERVE.json]
  --help                         this text
";

#[derive(Debug)]
struct Args {
    mode: String,
    addr: String,
    drain_secs: u64,
    endpoint: Option<String>,
    body: Option<String>,
    requests: usize,
    concurrency: usize,
    record: Option<String>,
    validate: bool,
    bench_file: String,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            mode: "serve".to_string(),
            addr: "127.0.0.1:7411".to_string(),
            drain_secs: 10,
            endpoint: None,
            body: None,
            requests: 1000,
            concurrency: 32,
            record: None,
            validate: false,
            bench_file: "BENCH_SERVE.json".to_string(),
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--mode" => args.mode = value("--mode")?,
            "--addr" => args.addr = value("--addr")?,
            "--drain-secs" => {
                args.drain_secs =
                    value("--drain-secs")?.parse().map_err(|e| format!("--drain-secs: {e}"))?
            }
            "--endpoint" => args.endpoint = Some(value("--endpoint")?),
            "--body" => args.body = Some(value("--body")?),
            "--requests" => {
                args.requests =
                    value("--requests")?.parse().map_err(|e| format!("--requests: {e}"))?
            }
            "--concurrency" => {
                args.concurrency =
                    value("--concurrency")?.parse().map_err(|e| format!("--concurrency: {e}"))?
            }
            "--record" => args.record = Some(value("--record")?),
            "--validate" => args.validate = true,
            "--bench-file" => args.bench_file = value("--bench-file")?,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

// ---------------------------------------------------------------------
// Host mode
// ---------------------------------------------------------------------

fn run_host(args: &Args) -> Result<(), String> {
    let server = serve(&args.addr).map_err(|e| format!("binding {}: {e}", args.addr))?;
    signal::install();
    // The bound address on the first line of stdout, so wrappers (and the
    // shutdown regression test) can connect to a port-0 server.
    println!("listening http://{}", server.addr());
    eprintln!("hanayo-serve: POST /v1/{{plan,tune,simulate,analyze}}, GET /metrics; ctrl-c drains");
    loop {
        if signal::triggered() {
            eprintln!("hanayo-serve: signal received, draining (deadline {}s)", args.drain_secs);
            let clean = server.stop_within(Duration::from_secs(args.drain_secs));
            if !clean {
                eprintln!("hanayo-serve: drain deadline passed with threads still closing");
            }
            return Ok(());
        }
        if server.is_drained() {
            // /shutdown (or a stop from another thread) completed the drain.
            server.stop();
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

// ---------------------------------------------------------------------
// Client mode
// ---------------------------------------------------------------------

fn run_client(args: &Args) -> Result<(), String> {
    let endpoint = args.endpoint.as_deref().ok_or("client mode needs --endpoint")?;
    let path = match endpoint {
        "plan" | "tune" | "simulate" | "analyze" => format!("/v1/{endpoint}"),
        other => return Err(format!("unknown endpoint {other}")),
    };
    let body = match &args.body {
        Some(file) => std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?,
        None => {
            let mut text = String::new();
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|e| format!("reading stdin: {e}"))?;
            text
        }
    };
    let addr = args
        .addr
        .parse()
        .map_err(|e| format!("--addr {}: {e} (client mode needs a concrete port)", args.addr))?;
    let client = Client::new(addr);
    match client.expect_ok("POST", &path, Some(&body)) {
        Ok(body) => {
            print!("{body}");
            Ok(())
        }
        Err(e) => Err(e.to_string()),
    }
}

// ---------------------------------------------------------------------
// Load test
// ---------------------------------------------------------------------

/// One pooled request: the wire path, the JSON body, and the expected
/// response bytes computed through the CLI code path.
struct Pooled {
    path: &'static str,
    body: String,
    expected: String,
}

fn tune_request(cluster: &str, gpus: usize, batch: u32, min_pp: u32) -> TuneRequest {
    TuneRequest {
        model: "bert64".to_string(),
        cluster: cluster.to_string(),
        gpus,
        batch,
        micro_batch_size: 1,
        train_bytes_per_param: 8,
        min_pp,
        waves: vec![1, 2],
        recompute: None,
        wide: false,
        serial: false,
        top: Some(3),
    }
}

/// The mixed request pool: mostly cheap plan/simulate requests plus two
/// distinct tune sweeps. Round-robin assignment over ~1000 requests
/// repeats each entry ~100×, which is exactly the repeated-request phase
/// the cache hit-rate floor is asserted on.
fn build_pool() -> Result<Vec<Pooled>, String> {
    let mut pool = Vec::new();
    for method in ["gpipe", "dapple", "hanayo_w2", "hanayo_w4"] {
        let req = PlanRequest {
            model: "bert64".to_string(),
            cluster: "fc".to_string(),
            gpus: 8,
            train_bytes_per_param: 8,
            method: method.to_string(),
            pp: 8,
            dp: 1,
            micro_batches: 8,
            micro_batch_size: 1,
            recompute: Recompute::None,
        };
        let doc = run_plan(&req).map_err(|e| format!("pool plan {method}: {e}"))?;
        pool.push(Pooled {
            path: "/v1/plan",
            body: serde_json::to_string(&req).map_err(|e| e.to_string())?,
            expected: serde_json::to_string(&doc).map_err(|e| e.to_string())? + "\n",
        });
    }
    for scheme in ["gpipe", "dapple", "hanayo_w2", "interleaved2"] {
        let req = SimulateRequest {
            model: "bert64".to_string(),
            cluster: "fc".to_string(),
            gpus: 8,
            scheme: scheme.to_string(),
            micro_batches: 8,
            micro_batch_size: 1,
            recompute: Recompute::None,
            prefetch: true,
            recv_lookahead: 1,
        };
        let doc = run_simulate(&req).map_err(|e| format!("pool simulate {scheme}: {e}"))?;
        pool.push(Pooled {
            path: "/v1/simulate",
            body: serde_json::to_string(&req).map_err(|e| e.to_string())?,
            expected: serde_json::to_string(&doc).map_err(|e| e.to_string())? + "\n",
        });
    }
    for req in [tune_request("fc", 8, 8, 4), tune_request("tacc", 4, 4, 2)] {
        let doc = run_tune(&req, &TuneContext::default())
            .map_err(|e| format!("pool tune {}: {e}", req.cluster))?;
        pool.push(Pooled {
            path: "/v1/tune",
            body: serde_json::to_string(&req).map_err(|e| e.to_string())?,
            expected: serde_json::to_string(&doc).map_err(|e| e.to_string())? + "\n",
        });
    }
    Ok(pool)
}

/// `p`-th percentile of an unsorted latency set, in milliseconds.
fn percentile_ms(sorted_ns: &[u128], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)] as f64 / 1e6
}

/// Sum every series of a counter family in a Prometheus exposition.
fn scrape_sum(text: &str, family: &str) -> f64 {
    text.lines()
        .filter(|l| l.starts_with(family) && l[family.len()..].starts_with(['{', ' ']))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<f64>().ok())
        .sum()
}

/// One measured trajectory entry.
#[derive(Debug, Serialize, Deserialize)]
struct BenchEntry {
    label: String,
    unix_time_s: u64,
    requests: usize,
    concurrency: usize,
    p50_ms: f64,
    p99_ms: f64,
    cache_hit_rate: f64,
    dedup_factor: f64,
    byte_identical: bool,
}

#[derive(Debug, Serialize, Deserialize)]
struct BenchFile {
    schema: String,
    bench: String,
    entries: Vec<BenchEntry>,
}

/// Bounds the load test (and `--validate`) holds every entry to. Loose
/// enough for shared CI runners; tight enough to catch a service that
/// stopped caching or deduplicating.
fn check_entry(e: &BenchEntry) -> Result<(), String> {
    if e.requests < 1000 {
        return Err(format!("{}: only {} requests (need ≥ 1000)", e.label, e.requests));
    }
    if !(e.p50_ms > 0.0 && e.p50_ms <= e.p99_ms) {
        return Err(format!("{}: implausible p50/p99 {}/{}", e.label, e.p50_ms, e.p99_ms));
    }
    if e.p50_ms > 2_000.0 || e.p99_ms > 30_000.0 {
        return Err(format!(
            "{}: latency out of bounds p50={}ms p99={}ms",
            e.label, e.p50_ms, e.p99_ms
        ));
    }
    if !(0.5..=1.0).contains(&e.cache_hit_rate) {
        return Err(format!(
            "{}: cache hit rate {} below the 0.5 floor for the repeated phase",
            e.label, e.cache_hit_rate
        ));
    }
    if e.dedup_factor < 2.0 {
        return Err(format!(
            "{}: dedup factor {} (identical burst must share work)",
            e.label, e.dedup_factor
        ));
    }
    if !e.byte_identical {
        return Err(format!("{}: served bytes diverged from the CLI output", e.label));
    }
    Ok(())
}

fn validate_bench(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let file: BenchFile =
        serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    if file.schema != "hanayo-serve-bench-v1" || file.bench != "serve-load" {
        return Err(format!("{path}: unexpected schema/bench {}/{}", file.schema, file.bench));
    }
    if file.entries.is_empty() {
        return Err(format!("{path}: no entries"));
    }
    for e in &file.entries {
        check_entry(e)?;
    }
    println!("ok: {} entries in {path} within bounds", file.entries.len());
    Ok(())
}

fn run_loadtest(args: &Args) -> Result<(), String> {
    if args.validate {
        return validate_bench(&args.bench_file);
    }
    eprintln!("loadtest: building the request pool (and the expected CLI bytes)");
    let pool = Arc::new(build_pool()?);
    let server = serve("127.0.0.1:0").map_err(|e| format!("binding: {e}"))?;
    let client = Client::new(server.addr());

    // Phase 1: the concurrent mixed-request storm. Round-robin over the
    // pool = the repeated-request phase.
    let total = args.requests.max(1);
    let workers = args.concurrency.clamp(1, 256);
    eprintln!("loadtest: {total} requests over {workers} clients against {}", server.addr());
    let next = Arc::new(AtomicUsize::new(0));
    let identical = Arc::new(AtomicBool::new(true));
    let latencies = Arc::new(Mutex::new(Vec::with_capacity(total)));
    let mut handles = Vec::new();
    for _ in 0..workers {
        let pool = Arc::clone(&pool);
        let next = Arc::clone(&next);
        let identical = Arc::clone(&identical);
        let latencies = Arc::clone(&latencies);
        handles.push(std::thread::spawn(move || -> Result<(), String> {
            let mut local = Vec::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let p = &pool[i % pool.len()];
                let started = Instant::now();
                let body = client
                    .expect_ok("POST", p.path, Some(&p.body))
                    .map_err(|e| format!("request {i} ({}): {e}", p.path))?;
                local.push(started.elapsed().as_nanos());
                if body != p.expected {
                    identical.store(false, Ordering::SeqCst);
                }
            }
            match latencies.lock() {
                Ok(mut all) => all.extend(local),
                Err(poisoned) => poisoned.into_inner().extend(local),
            }
            Ok(())
        }));
    }
    for h in handles {
        match h.join() {
            Ok(outcome) => outcome?,
            Err(_) => return Err("a load-test client panicked".to_string()),
        }
    }

    // Phase 2: the dedup burst — one brand-new *wide* sweep (slow enough
    // that the leader is still evaluating when the last client connects),
    // many identical concurrent submissions released through a barrier;
    // followers must join the leader.
    let mut burst_req = tune_request("pc", 8, 32, 2);
    burst_req.wide = true;
    burst_req.waves = vec![1, 2, 4, 8];
    let burst_body = serde_json::to_string(&burst_req).map_err(|e| e.to_string())?;
    let joins_before = server.dedup_joins();
    let burst_n = workers.max(8);
    let gate = Arc::new(Barrier::new(burst_n));
    let bodies = Arc::new(Mutex::new(Vec::new()));
    let mut burst = Vec::new();
    for _ in 0..burst_n {
        let body = burst_body.clone();
        let gate = Arc::clone(&gate);
        let bodies = Arc::clone(&bodies);
        burst.push(std::thread::spawn(move || -> Result<(), String> {
            gate.wait();
            let resp =
                client.expect_ok("POST", "/v1/tune", Some(&body)).map_err(|e| e.to_string())?;
            match bodies.lock() {
                Ok(mut all) => all.push(resp),
                Err(poisoned) => poisoned.into_inner().push(resp),
            }
            Ok(())
        }));
    }
    for h in burst {
        match h.join() {
            Ok(outcome) => outcome?,
            Err(_) => return Err("a dedup-burst client panicked".to_string()),
        }
    }
    {
        let bodies = match bodies.lock() {
            Ok(b) => b,
            Err(poisoned) => poisoned.into_inner(),
        };
        if bodies.windows(2).any(|w| w[0] != w[1]) {
            return Err("dedup burst responses disagree".to_string());
        }
    }
    let joins = server.dedup_joins() - joins_before;
    // N requests cost N - joins evaluations.
    let dedup_factor = burst_n as f64 / (burst_n as f64 - joins as f64).max(1.0);

    // Cache hit rate, read off the same /metrics endpoint operators scrape.
    let scrape = client.metrics().map_err(|e| format!("scraping /metrics: {e}"))?;
    let hits = scrape_sum(&scrape, "hanayo_tuner_cache_hits_total");
    let misses = scrape_sum(&scrape, "hanayo_tuner_cache_misses_total");
    let cache_hit_rate = if hits + misses > 0.0 { hits / (hits + misses) } else { 0.0 };

    server.stop();

    let mut sorted = match Arc::try_unwrap(latencies) {
        Ok(m) => m.into_inner().unwrap_or_default(),
        Err(arc) => match arc.lock() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        },
    };
    sorted.sort_unstable();
    let entry = BenchEntry {
        label: args.record.clone().unwrap_or_else(|| "adhoc".to_string()),
        unix_time_s: SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        requests: total,
        concurrency: workers,
        p50_ms: percentile_ms(&sorted, 50.0),
        p99_ms: percentile_ms(&sorted, 99.0),
        cache_hit_rate,
        dedup_factor,
        byte_identical: identical.load(Ordering::SeqCst),
    };
    println!("{}", serde_json::to_string_pretty(&entry).map_err(|e| e.to_string())?);
    check_entry(&entry)?;

    if let Some(label) = &args.record {
        let mut file: BenchFile = match std::fs::read_to_string(&args.bench_file) {
            Ok(text) => serde_json::from_str(&text)
                .map_err(|e| format!("parsing {}: {e}", args.bench_file))?,
            Err(_) => BenchFile {
                schema: "hanayo-serve-bench-v1".to_string(),
                bench: "serve-load".to_string(),
                entries: Vec::new(),
            },
        };
        file.entries.retain(|e| e.label != *label);
        file.entries.push(entry);
        let text = serde_json::to_string_pretty(&file).map_err(|e| e.to_string())? + "\n";
        std::fs::write(&args.bench_file, text)
            .map_err(|e| format!("writing {}: {e}", args.bench_file))?;
        eprintln!("loadtest: recorded entry {label} in {}", args.bench_file);
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) if msg.is_empty() => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match args.mode.as_str() {
        "serve" => run_host(&args),
        "client" => run_client(&args),
        "loadtest" => run_loadtest(&args),
        other => Err(format!("unknown mode {other}")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
