//! `memfig` — the §5.1 memory statistics as a command-line tool.
//!
//! Emits the per-scheme highest-peak / variance table (Fig. 3 units *and*
//! BERT-64L bytes) for Hanayo w ∈ {1, 2, 4} vs GPipe / DAPPLE / Chimera,
//! under both activation stash policies, as JSON on stdout.
//!
//! ```text
//! cargo run --release -p hanayo-repro --bin memfig            # pretty
//! cargo run --release -p hanayo-repro --bin memfig -- --compact
//! ```

use std::process::ExitCode;

const USAGE: &str = "\
memfig — per-scheme highest-peak / variance memory table as JSON

USAGE: memfig [--compact]

  --compact   single-line JSON (default pretty)
  --help      this text
";

fn main() -> ExitCode {
    let mut compact = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--compact" => compact = true,
            "--help" | "-h" => {
                eprint!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown flag {other}\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let table = hanayo_repro::memfig::data();
    let json =
        if compact { serde_json::to_string(&table) } else { serde_json::to_string_pretty(&table) };
    match json {
        Ok(s) => {
            println!("{s}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: serialising the table failed: {e}");
            ExitCode::FAILURE
        }
    }
}
