//! `sweep` — the auto-tuner as a command-line tool, emitting the full
//! ranked strategy table as JSON.
//!
//! `cargo run --release --example auto_tune` stays the human-readable
//! quickstart; this binary is the machine-readable counterpart: every
//! candidate the performance model evaluated — method × waves × (P, D)
//! factorisation × simulator ablation × micro-batch granularity — with
//! throughput, timing split, bubble ratio and memory, plus every rejected
//! candidate and *why* it was rejected (OOM vs. invalid shape).
//!
//! ```text
//! cargo run --release -p hanayo-repro --bin sweep -- \
//!     --model bert64 --cluster tacc --gpus 8 --batch 16 --wide --top 10
//! ```
//!
//! The document itself is built by [`hanayo_serve::schema`] — the same
//! code path the resident planning service's `POST /v1/tune` endpoint
//! answers with, so this binary's `--compact` stdout is byte-identical
//! to a served response for the equivalent request.
//!
//! See the README's "Strategy sweep binary" section for the JSON schema.

use hanayo_model::Recompute;
use hanayo_serve::schema::{run_tune, RunError, TuneRequest};
use hanayo_sim::TuneContext;
use std::process::ExitCode;

#[derive(Debug)]
struct Args {
    request: TuneRequest,
    compact: bool,
    metrics: Option<String>,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            request: TuneRequest {
                model: "bert64".to_string(),
                cluster: "tacc".to_string(),
                gpus: 8,
                batch: 16,
                micro_batch_size: 1,
                train_bytes_per_param: 8,
                min_pp: 2,
                waves: vec![1, 2, 4, 8],
                recompute: None,
                wide: false,
                serial: false,
                top: None,
            },
            compact: false,
            metrics: None,
        }
    }
}

const USAGE: &str = "\
sweep — rank every pipeline-parallel strategy for a model on a cluster

USAGE: sweep [FLAGS]

FLAGS (all optional):
  --model <bert64|gpt128>        architecture to tune           [bert64]
  --cluster <pc|fc|tacc|tc>      hardware environment           [tacc]
  --gpus <N>                     cluster size                   [8]
  --batch <B>                    global micro-batches/iteration [16]
  --micro-batch-size <S>         sequences per micro-batch      [1]
  --train-bytes-per-param <N>    8 = ZeRO-1, 16 = full Adam     [8]
  --min-pp <P>                   smallest pipeline width        [2]
  --waves <csv>                  Hanayo wave counts             [1,2,4,8]
  --recompute <csv>              activation-recomputation modes to
                                 sweep, from {none,full}        [none]
  --wide                         also sweep prefetch on/off, recv
                                 lookaheads {1,2,4}, micro-batch merge
                                 factors {1,2} and both recompute modes
  --serial                       evaluate candidates one at a time
                                 (identical output; for verification)
  --top <N>                      emit only the N best candidates
  --compact                      single-line JSON (default pretty)
  --metrics <path>               enable the metrics registry and write
                                 its exposition there on exit (.prom
                                 extension selects Prometheus text,
                                 anything else JSON)
  --help                         this text
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let req = &mut args.request;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--model" => req.model = value("--model")?,
            "--cluster" => req.cluster = value("--cluster")?,
            "--gpus" => req.gpus = value("--gpus")?.parse().map_err(|e| format!("--gpus: {e}"))?,
            "--batch" => {
                req.batch = value("--batch")?.parse().map_err(|e| format!("--batch: {e}"))?
            }
            "--micro-batch-size" => {
                req.micro_batch_size = value("--micro-batch-size")?
                    .parse()
                    .map_err(|e| format!("--micro-batch-size: {e}"))?
            }
            "--train-bytes-per-param" => {
                req.train_bytes_per_param = value("--train-bytes-per-param")?
                    .parse()
                    .map_err(|e| format!("--train-bytes-per-param: {e}"))?
            }
            "--min-pp" => {
                req.min_pp = value("--min-pp")?.parse().map_err(|e| format!("--min-pp: {e}"))?
            }
            "--waves" => {
                req.waves = value("--waves")?
                    .split(',')
                    .map(|w| w.trim().parse().map_err(|e| format!("--waves: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--recompute" => {
                // Resolve by the modes' own labels so a future variant is
                // parseable the day it joins `Recompute::ALL`.
                req.recompute = Some(
                    value("--recompute")?
                        .split(',')
                        .map(|m| {
                            let m = m.trim();
                            Recompute::ALL
                                .into_iter()
                                .find(|mode| mode.label() == m)
                                .ok_or_else(|| format!("--recompute: unknown mode {m}"))
                        })
                        .collect::<Result<_, _>>()?,
                )
            }
            "--wide" => req.wide = true,
            "--serial" => req.serial = true,
            "--top" => req.top = Some(value("--top")?.parse().map_err(|e| format!("--top: {e}"))?),
            "--compact" => args.compact = true,
            "--metrics" => args.metrics = Some(value("--metrics")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) if msg.is_empty() => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if args.metrics.is_some() {
        hanayo_repro::metricsio::enable_metrics();
    }
    // A default context (no abort, no shared caches) reproduces the plain
    // tune()/tune_serial() behaviour exactly, so Cancelled cannot happen.
    let table = match run_tune(&args.request, &TuneContext::default()) {
        Ok(table) => table,
        Err(RunError::BadRequest(msg)) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
        Err(e @ RunError::Cancelled { .. }) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.metrics {
        match hanayo_repro::metricsio::write_metrics(path) {
            Ok(n) => eprintln!("metrics: wrote {n} series to {path}"),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    let json = if args.compact {
        serde_json::to_string(&table)
    } else {
        serde_json::to_string_pretty(&table)
    };
    match json {
        Ok(s) => {
            println!("{s}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: serialising the table failed: {e}");
            ExitCode::FAILURE
        }
    }
}
