//! `sweep` — the auto-tuner as a command-line tool, emitting the full
//! ranked strategy table as JSON.
//!
//! `cargo run --release --example auto_tune` stays the human-readable
//! quickstart; this binary is the machine-readable counterpart: every
//! candidate the performance model evaluated — method × waves × (P, D)
//! factorisation × simulator ablation × micro-batch granularity — with
//! throughput, timing split, bubble ratio and memory, plus every rejected
//! candidate and *why* it was rejected (OOM vs. invalid shape).
//!
//! ```text
//! cargo run --release -p hanayo-repro --bin sweep -- \
//!     --model bert64 --cluster tacc --gpus 8 --batch 16 --wide --top 10
//! ```
//!
//! See the README's "Strategy sweep binary" section for the JSON schema.

use hanayo_cluster::topology::{fc_full_nvlink, lonestar6, pc_partial_nvlink, tencent_v100};
use hanayo_cluster::ClusterSpec;
use hanayo_model::{ModelConfig, Recompute};
use hanayo_sim::tuner::{tune, tune_serial, Rejection, TuneOptions, Tuning};
use serde::Serialize;
use std::process::ExitCode;

#[derive(Debug)]
struct Args {
    model: String,
    cluster: String,
    gpus: usize,
    batch: u32,
    micro_batch_size: u32,
    train_bytes_per_param: u32,
    min_pp: u32,
    waves: Vec<u32>,
    recompute: Option<Vec<Recompute>>,
    wide: bool,
    serial: bool,
    top: Option<usize>,
    compact: bool,
    metrics: Option<String>,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            model: "bert64".to_string(),
            cluster: "tacc".to_string(),
            gpus: 8,
            batch: 16,
            micro_batch_size: 1,
            train_bytes_per_param: 8,
            min_pp: 2,
            waves: vec![1, 2, 4, 8],
            recompute: None,
            wide: false,
            serial: false,
            top: None,
            compact: false,
            metrics: None,
        }
    }
}

const USAGE: &str = "\
sweep — rank every pipeline-parallel strategy for a model on a cluster

USAGE: sweep [FLAGS]

FLAGS (all optional):
  --model <bert64|gpt128>        architecture to tune           [bert64]
  --cluster <pc|fc|tacc|tc>      hardware environment           [tacc]
  --gpus <N>                     cluster size                   [8]
  --batch <B>                    global micro-batches/iteration [16]
  --micro-batch-size <S>         sequences per micro-batch      [1]
  --train-bytes-per-param <N>    8 = ZeRO-1, 16 = full Adam     [8]
  --min-pp <P>                   smallest pipeline width        [2]
  --waves <csv>                  Hanayo wave counts             [1,2,4,8]
  --recompute <csv>              activation-recomputation modes to
                                 sweep, from {none,full}        [none]
  --wide                         also sweep prefetch on/off, recv
                                 lookaheads {1,2,4}, micro-batch merge
                                 factors {1,2} and both recompute modes
  --serial                       evaluate candidates one at a time
                                 (identical output; for verification)
  --top <N>                      emit only the N best candidates
  --compact                      single-line JSON (default pretty)
  --metrics <path>               enable the metrics registry and write
                                 its exposition there on exit (.prom
                                 extension selects Prometheus text,
                                 anything else JSON)
  --help                         this text
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--model" => args.model = value("--model")?,
            "--cluster" => args.cluster = value("--cluster")?,
            "--gpus" => args.gpus = value("--gpus")?.parse().map_err(|e| format!("--gpus: {e}"))?,
            "--batch" => {
                args.batch = value("--batch")?.parse().map_err(|e| format!("--batch: {e}"))?
            }
            "--micro-batch-size" => {
                args.micro_batch_size = value("--micro-batch-size")?
                    .parse()
                    .map_err(|e| format!("--micro-batch-size: {e}"))?
            }
            "--train-bytes-per-param" => {
                args.train_bytes_per_param = value("--train-bytes-per-param")?
                    .parse()
                    .map_err(|e| format!("--train-bytes-per-param: {e}"))?
            }
            "--min-pp" => {
                args.min_pp = value("--min-pp")?.parse().map_err(|e| format!("--min-pp: {e}"))?
            }
            "--waves" => {
                args.waves = value("--waves")?
                    .split(',')
                    .map(|w| w.trim().parse().map_err(|e| format!("--waves: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--recompute" => {
                // Resolve by the modes' own labels so a future variant is
                // parseable the day it joins `Recompute::ALL`.
                args.recompute = Some(
                    value("--recompute")?
                        .split(',')
                        .map(|m| {
                            let m = m.trim();
                            Recompute::ALL
                                .into_iter()
                                .find(|mode| mode.label() == m)
                                .ok_or_else(|| format!("--recompute: unknown mode {m}"))
                        })
                        .collect::<Result<_, _>>()?,
                )
            }
            "--wide" => args.wide = true,
            "--serial" => args.serial = true,
            "--top" => args.top = Some(value("--top")?.parse().map_err(|e| format!("--top: {e}"))?),
            "--compact" => args.compact = true,
            "--metrics" => args.metrics = Some(value("--metrics")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn model_for(name: &str) -> Result<ModelConfig, String> {
    match name {
        "bert64" => Ok(ModelConfig::bert64()),
        "gpt128" => Ok(ModelConfig::gpt128()),
        other => Err(format!("unknown model {other} (expected bert64 or gpt128)")),
    }
}

fn cluster_for(name: &str, gpus: usize) -> Result<ClusterSpec, String> {
    match name {
        "pc" => Ok(pc_partial_nvlink(gpus)),
        "fc" => Ok(fc_full_nvlink(gpus)),
        "tacc" => Ok(lonestar6(gpus)),
        "tc" => Ok(tencent_v100(gpus)),
        other => Err(format!("unknown cluster {other} (expected pc, fc, tacc or tc)")),
    }
}

/// One row of the ranked table.
#[derive(Debug, Serialize)]
struct RankedRow {
    rank: usize,
    method: String,
    label: String,
    pp: u32,
    dp: u32,
    micro_batches: u32,
    micro_batch_size: u32,
    prefetch: bool,
    recv_lookahead: usize,
    recompute: String,
    throughput_seq_per_s: f64,
    iteration_time_s: f64,
    pipeline_time_s: f64,
    allreduce_time_s: f64,
    bubble_ratio: f64,
    peak_gb: f64,
}

/// A candidate that simulated fine but exceeded device memory.
#[derive(Debug, Serialize)]
struct OomRow {
    method: String,
    pp: u32,
    dp: u32,
    micro_batches: u32,
    micro_batch_size: u32,
    prefetch: bool,
    recompute: String,
    peak_gb: f64,
    capacity_gb: f64,
    oom_devices: Vec<usize>,
}

/// A candidate that could not be evaluated at all.
#[derive(Debug, Serialize)]
struct InvalidRow {
    method: String,
    pp: u32,
    dp: u32,
    recompute: String,
    reason: String,
}

/// The document this binary prints.
#[derive(Debug, Serialize)]
struct SweepTable {
    model: String,
    cluster: String,
    devices: usize,
    global_micro_batches: u32,
    micro_batch_size: u32,
    wide: bool,
    recompute_modes: Vec<String>,
    candidates_evaluated: usize,
    ranked: Vec<RankedRow>,
    rejected_oom: Vec<OomRow>,
    rejected_invalid_shape: Vec<InvalidRow>,
}

fn build_table(
    args: &Args,
    tuning: &Tuning,
    cluster: &ClusterSpec,
    model: &ModelConfig,
    modes: &[Recompute],
) -> SweepTable {
    let gb = |bytes: u64| bytes as f64 / 1e9;
    let ranked = tuning
        .ranked
        .iter()
        .take(args.top.unwrap_or(usize::MAX))
        .enumerate()
        .map(|(i, c)| RankedRow {
            rank: i + 1,
            method: c.plan.method.to_string(),
            label: c.plan.method.label(),
            pp: c.plan.pp,
            dp: c.plan.dp,
            micro_batches: c.plan.micro_batches,
            micro_batch_size: c.plan.micro_batch_size,
            prefetch: c.sim.prefetch,
            recv_lookahead: c.sim.recv_lookahead,
            recompute: c.plan.recompute.label().to_string(),
            throughput_seq_per_s: c.result.throughput,
            iteration_time_s: c.result.iteration_time,
            pipeline_time_s: c.result.pipeline_time,
            allreduce_time_s: c.result.allreduce_time,
            bubble_ratio: c.result.bubble_ratio,
            peak_gb: gb(c.result.peak_mem.iter().copied().max().unwrap_or(0)),
        })
        .collect();
    let mut rejected_oom = Vec::new();
    let mut rejected_invalid_shape = Vec::new();
    for r in &tuning.rejected {
        match r {
            Rejection::Oom { plan, sim, peak_bytes, capacity_bytes, devices } => {
                rejected_oom.push(OomRow {
                    method: plan.method.to_string(),
                    pp: plan.pp,
                    dp: plan.dp,
                    micro_batches: plan.micro_batches,
                    micro_batch_size: plan.micro_batch_size,
                    prefetch: sim.prefetch,
                    recompute: plan.recompute.label().to_string(),
                    peak_gb: gb(*peak_bytes),
                    capacity_gb: gb(*capacity_bytes),
                    oom_devices: devices.clone(),
                })
            }
            Rejection::InvalidShape { plan, reason, .. } => {
                rejected_invalid_shape.push(InvalidRow {
                    method: plan.method.to_string(),
                    pp: plan.pp,
                    dp: plan.dp,
                    recompute: plan.recompute.label().to_string(),
                    reason: reason.clone(),
                })
            }
        }
    }
    SweepTable {
        model: model.name.clone(),
        cluster: cluster.name.clone(),
        devices: cluster.len(),
        global_micro_batches: args.batch,
        micro_batch_size: args.micro_batch_size,
        wide: args.wide,
        recompute_modes: modes.iter().map(|m| m.label().to_string()).collect(),
        candidates_evaluated: tuning.ranked.len() + tuning.rejected.len(),
        ranked,
        rejected_oom,
        rejected_invalid_shape,
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) if msg.is_empty() => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let model = match model_for(&args.model) {
        Ok(m) => m.with_train_bytes_per_param(args.train_bytes_per_param),
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let cluster = match cluster_for(&args.cluster, args.gpus) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut opts =
        TuneOptions { waves: args.waves.clone(), min_pp: args.min_pp, ..Default::default() };
    if args.wide {
        opts = opts.wide();
    }
    // An explicit --recompute list overrides --wide's both-modes default.
    if let Some(modes) = &args.recompute {
        opts.recompute_modes = modes.clone();
    }

    if args.metrics.is_some() {
        hanayo_repro::metricsio::enable_metrics();
    }
    let run = if args.serial { tune_serial } else { tune };
    let tuning = run(&model, &cluster, args.batch, args.micro_batch_size, &opts);
    if let Some(path) = &args.metrics {
        match hanayo_repro::metricsio::write_metrics(path) {
            Ok(n) => eprintln!("metrics: wrote {n} series to {path}"),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    let table = build_table(&args, &tuning, &cluster, &model, &opts.recompute_variants());
    let json = if args.compact {
        serde_json::to_string(&table)
    } else {
        serde_json::to_string_pretty(&table)
    };
    match json {
        Ok(s) => {
            println!("{s}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: serialising the table failed: {e}");
            ExitCode::FAILURE
        }
    }
}
