//! The figure-regeneration binary.
//!
//! ```text
//! repro fig1            # print one figure's table
//! repro all             # print every figure
//! repro all --out DIR   # also write each table to DIR/figN.txt
//! ```

use std::env;
use std::fs;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let figures = hanayo_repro::all_figures();

    let mut targets: Vec<String> = Vec::new();
    let mut out_dir: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_dir = it.next(),
            _ => targets.push(a),
        }
    }

    if targets.is_empty() {
        eprintln!("usage: repro <fig1..fig12|all> [--out DIR]");
        eprintln!("available figures:");
        for (name, _) in &figures {
            eprintln!("  {name}");
        }
        return ExitCode::FAILURE;
    }

    let run_list: Vec<&hanayo_repro::FigureRunner> = if targets.iter().any(|t| t == "all") {
        figures.iter().collect()
    } else {
        let mut list = Vec::new();
        for t in &targets {
            match figures.iter().find(|(n, _)| n == t) {
                Some(f) => list.push(f),
                None => {
                    eprintln!("unknown figure '{t}'; try one of fig1..fig12 or 'all'");
                    return ExitCode::FAILURE;
                }
            }
        }
        list
    };

    for (name, runner) in run_list {
        let text = runner();
        println!("{text}");
        if let Some(dir) = &out_dir {
            fs::create_dir_all(dir).expect("create output dir");
            let path = Path::new(dir).join(format!("{name}.txt"));
            fs::write(&path, &text).expect("write figure file");
            eprintln!("wrote {}", path.display());
        }
    }
    ExitCode::SUCCESS
}
