//! `metrics` — exercise every instrumented layer on one seeded scenario
//! and emit the registry, as Prometheus text or the `hanayo-metrics-v1`
//! JSON document.
//!
//! This is the observability smoke test and the scrape-format reference:
//! the counters it prints are a pure function of the workload (the clock
//! is pinned, the sweep is serial), so two runs emit byte-identical
//! documents — the golden suite holds it to that.
//!
//! ```text
//! cargo run -p hanayo-repro --bin metrics -- --format prom --validate
//! ```

use hanayo_repro::metricsio::{demo_scenario, enable_metrics, write_metrics};
use std::process::ExitCode;

const USAGE: &str = "\
metrics — run the seeded observability scenario and emit the registry

USAGE: metrics [FLAGS]

FLAGS (all optional):
  --format <prom|json>   exposition format for stdout        [prom]
  --out <path>           also write the exposition to a file
                         (.prom extension selects Prometheus text,
                         anything else the JSON document)
  --validate             check the Prometheus rendering against the
                         exposition grammar and print the sample count
  --quiet                suppress the exposition on stdout
  --help                 this text
";

#[derive(Default)]
struct Args {
    json: bool,
    out: Option<String>,
    validate: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--format" => match value("--format")?.as_str() {
                "prom" => args.json = false,
                "json" => args.json = true,
                other => return Err(format!("--format: expected prom or json, got {other}")),
            },
            "--out" => args.out = Some(value("--out")?),
            "--validate" => args.validate = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) if msg.is_empty() => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    // The pinned clock makes every duration histogram deterministic
    // (each observation lands in the first bucket), which is what lets
    // the emitted document be byte-stable across runs and machines.
    hanayo_metrics::set_clock(hanayo_metrics::ClockMode::Fixed(1_700_000_000_000_000_000));
    enable_metrics();
    if let Err(msg) = demo_scenario() {
        eprintln!("error: scenario failed: {msg}");
        return ExitCode::FAILURE;
    }

    let snap = hanayo_metrics::snapshot();
    let prom = hanayo_metrics::expo::prometheus(&snap);
    if args.validate {
        match hanayo_metrics::expo::validate_prometheus(&prom) {
            Ok(samples) => {
                eprintln!(
                    "validated: {} series, {samples} samples, prometheus grammar ok",
                    snap.series.len()
                );
            }
            Err(msg) => {
                eprintln!("error: invalid prometheus exposition: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &args.out {
        match write_metrics(path) {
            Ok(n) => eprintln!("wrote {n} series to {path}"),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    if !args.quiet {
        let text = if args.json { hanayo_metrics::expo::json(&snap) } else { prom };
        print!("{text}");
    }
    ExitCode::SUCCESS
}
