//! `lint` — the repo's panic-freedom gate for library code.
//!
//! Scans the non-test sources of every library crate (everything except
//! the `repro` figure/tool binaries and the benches) for the three
//! panicking idioms: `.unwrap()`, `.expect(` and `panic!`. Lines inside
//! `#[cfg(test)]` modules and comment lines are excluded.
//!
//! The committed baseline (`lint-baseline.txt` at the repo root) freezes
//! the per-file hit counts that remain after the burn-down; any *new* hit
//! fails the gate, and a removed hit fails it too, with a message to
//! regenerate — so the baseline can only shrink deliberately:
//!
//! ```text
//! cargo run -p hanayo-repro --bin lint              # gate (CI runs this)
//! LINT_UPDATE=1 cargo run -p hanayo-repro --bin lint  # rewrite baseline
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose library sources the gate covers, relative to the repo
/// root. Benches, shims and the repro binaries are out of scope: a panic
/// there aborts a developer tool, not a tuning or training run.
const SCOPES: [&str; 12] = [
    "crates/analyze/src",
    "crates/ckpt/src",
    "crates/cluster/src",
    "crates/core/src",
    "crates/metrics/src",
    "crates/model/src",
    "crates/runtime/src",
    "crates/serve/src",
    "crates/sim/src",
    "crates/tensor/src",
    "crates/trace/src",
    "src",
];

/// The panicking idioms the gate counts. `unwrap_or*` combinators do not
/// match `.unwrap()` and are fine; `debug_assert!` is compiled out of
/// release builds and is not counted either.
const PATTERNS: [&str; 3] = [".unwrap()", ".expect(", "panic!"];

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/repro; the repo root is two levels up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap().to_path_buf()
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Count panicking idioms in one file, skipping comment lines and
/// `#[cfg(test)]` modules (tracked by brace depth from the `mod` line).
fn count_hits(text: &str) -> usize {
    let mut hits = 0usize;
    let mut in_test_mod = false;
    let mut test_depth = 0i64;
    let mut pending_cfg_test = false;
    for line in text.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            continue;
        }
        if in_test_mod {
            test_depth += line.matches('{').count() as i64;
            test_depth -= line.matches('}').count() as i64;
            if test_depth <= 0 {
                in_test_mod = false;
            }
            continue;
        }
        if trimmed.starts_with("#[cfg(test)]") {
            pending_cfg_test = true;
            continue;
        }
        if pending_cfg_test {
            pending_cfg_test = false;
            if trimmed.starts_with("mod ") || trimmed.starts_with("pub mod ") {
                test_depth = line.matches('{').count() as i64 - line.matches('}').count() as i64;
                in_test_mod = test_depth > 0;
                continue;
            }
        }
        hits += PATTERNS.iter().map(|p| line.matches(p).count()).sum::<usize>();
    }
    hits
}

/// Scan every in-scope file and return `relative path -> hit count`,
/// omitting clean files so the baseline only lists offenders.
fn scan(root: &Path) -> Result<BTreeMap<String, usize>, String> {
    let mut counts = BTreeMap::new();
    for scope in SCOPES {
        let dir = root.join(scope);
        let mut files = Vec::new();
        rust_files(&dir, &mut files).map_err(|e| format!("walking {scope}: {e}"))?;
        for file in files {
            let text = std::fs::read_to_string(&file)
                .map_err(|e| format!("reading {}: {e}", file.display()))?;
            let hits = count_hits(&text);
            if hits > 0 {
                let rel = file
                    .strip_prefix(root)
                    .map_err(|e| format!("{}: {e}", file.display()))?
                    .to_string_lossy()
                    .replace('\\', "/");
                counts.insert(rel, hits);
            }
        }
    }
    Ok(counts)
}

fn render(counts: &BTreeMap<String, usize>) -> String {
    let total: usize = counts.values().sum();
    let mut out = String::new();
    writeln!(out, "# Panic-freedom baseline for the workspace's library crates.").unwrap();
    writeln!(out, "# Counts `.unwrap()` / `.expect(` / `panic!` outside tests and comments.")
        .unwrap();
    writeln!(out, "# Regenerate with: LINT_UPDATE=1 cargo run -p hanayo-repro --bin lint").unwrap();
    writeln!(out, "# total {total}").unwrap();
    for (path, hits) in counts {
        writeln!(out, "{hits:4} {path}").unwrap();
    }
    out
}

fn parse_baseline(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut counts = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (hits, path) =
            line.split_once(' ').ok_or_else(|| format!("malformed baseline line: {line}"))?;
        let hits = hits.trim().parse().map_err(|e| format!("baseline line {line:?}: {e}"))?;
        counts.insert(path.trim().to_string(), hits);
    }
    Ok(counts)
}

fn gate() -> Result<(), String> {
    let root = repo_root();
    let counts = scan(&root)?;
    let baseline_path = root.join("lint-baseline.txt");

    if std::env::var_os("LINT_UPDATE").is_some() {
        std::fs::write(&baseline_path, render(&counts))
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        println!(
            "baseline rewritten: {} hits across {} files",
            counts.values().sum::<usize>(),
            counts.len()
        );
        return Ok(());
    }

    let baseline_text = std::fs::read_to_string(&baseline_path).map_err(|e| {
        format!(
            "missing baseline {} ({e}); generate with LINT_UPDATE=1 cargo run -p \
             hanayo-repro --bin lint",
            baseline_path.display()
        )
    })?;
    let baseline = parse_baseline(&baseline_text)?;

    let mut problems = Vec::new();
    for (path, &hits) in &counts {
        match baseline.get(path) {
            None => problems
                .push(format!("{path}: {hits} new panicking call(s) in a previously clean file")),
            Some(&base) if hits > base => {
                problems.push(format!("{path}: {hits} panicking call(s), baseline allows {base}"))
            }
            Some(&base) if hits < base => problems.push(format!(
                "{path}: {hits} panicking call(s), baseline records {base} — burn-down! \
                 regenerate the baseline to lock in the improvement"
            )),
            Some(_) => {}
        }
    }
    for path in baseline.keys() {
        if !counts.contains_key(path) {
            problems.push(format!(
                "{path}: baseline lists it but it is now clean (or gone) — regenerate \
                 the baseline to lock in the improvement"
            ));
        }
    }
    if !problems.is_empty() {
        return Err(format!("panic-freedom gate failed:\n  {}", problems.join("\n  ")));
    }
    println!(
        "ok: {} panicking call(s) across {} files, all within the committed baseline",
        counts.values().sum::<usize>(),
        counts.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    match gate() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
