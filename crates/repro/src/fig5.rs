//! Figure 5: a 4-stage Chimera transforms into two 1-wave pipelines with
//! 2-way data parallelism "without extra overhead".

use hanayo_core::gantt::render_paper_style;
use hanayo_core::transform::{chimera_to_waves, TransformationReport, WaveTransformation};

/// The transformation at the figure's size (`P = 4`, `B = 4`).
pub fn data() -> (WaveTransformation, TransformationReport) {
    let t = chimera_to_waves(4, 4).expect("4-device Chimera is valid");
    let r = t.report();
    (t, r)
}

/// Render both forms plus the equivalence report.
pub fn run() -> String {
    let (t, r) = data();
    let chimera = render_paper_style(&t.chimera);
    let wave = render_paper_style(&t.wave_pipelines[0]);
    format!(
        "Figure 5: Chimera -> wave transformation (P=4, B=4)\n\n\
         Chimera, 4-stage bidirectional (2 weight replicas):\n{chimera}\n\
         One of the two 1-wave pipelines (2-stage, DP=2; the other is identical):\n{wave}\n\
         makespan: chimera={} ticks, wave form={} ticks (no extra overhead)\n\
         max weight units/device: chimera={}, wave={} (replication removed)\n\
         messages: chimera={}, per wave pipeline={}\n",
        r.chimera_makespan,
        r.wave_makespan,
        r.chimera_mw,
        r.wave_mw,
        r.chimera_messages,
        r.wave_messages
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold_at_figure_size() {
        let (_, r) = data();
        assert!(r.wave_makespan <= r.chimera_makespan);
        assert_eq!(r.wave_mw, 1.0);
        assert_eq!(r.chimera_mw, 2.0);
    }

    #[test]
    fn renders_no_extra_overhead_line() {
        assert!(run().contains("no extra overhead"));
    }
}
