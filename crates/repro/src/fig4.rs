//! Figure 4: synchronous vs asynchronous pipeline parallelism.
//!
//! The synchronous panel runs one flushed 1F1B iteration; the asynchronous
//! panel shows PipeDream-style execution where iteration `n+1` forwards
//! start while iteration `n` backwards drain — rendered by replaying two
//! iterations back-to-back with the inter-iteration dependency removed
//! (micro-batches 4..8 are iteration `n+1`).

use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::gantt::{render, render_paper_style, replay_timeline, Timeline};
use hanayo_core::schedule::build_compute_schedule;

/// The synchronous timeline (one iteration, `P = 4`, `B = 4`).
pub fn sync_timeline() -> Timeline {
    let cfg = PipelineConfig::new(4, 4, Scheme::Dapple).expect("valid");
    replay_timeline(&build_compute_schedule(&cfg).expect("schedulable"), 1, 2, 0)
}

/// The asynchronous timeline: two iterations of micro-batches in one
/// continuous 1F1B stream (no flush between them).
pub fn async_timeline() -> Timeline {
    // Model "no flush" as a single 8-micro-batch 1F1B stream: exactly what
    // PipeDream's steady state looks like (Fig. 4b).
    let cfg = PipelineConfig::new(4, 8, Scheme::AsyncPipeDream).expect("valid");
    replay_timeline(&build_compute_schedule(&cfg).expect("schedulable"), 1, 2, 0)
}

/// Render both panels.
pub fn run() -> String {
    let cfg = PipelineConfig::new(4, 4, Scheme::Dapple).expect("valid");
    let sync = render_paper_style(&build_compute_schedule(&cfg).expect("schedulable"));
    let asynch = render(&async_timeline());
    let s = sync_timeline();
    let a = async_timeline();
    format!(
        "Figure 4: synchronous vs asynchronous pipeline parallelism (P=4)\n\n\
         (a) synchronous (flush at iteration end), bubble {:.1}%\n{sync}\n\
         (b) asynchronous (PipeDream-style, no flush; mbs 4-7 are the next \
         iteration), bubble {:.1}%\n{asynch}",
        100.0 * s.bubble_ratio(),
        100.0 * a.bubble_ratio()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_has_lower_bubble_ratio() {
        // "they tend to have a lower bubble ratio and higher performance"
        // (§2.3).
        assert!(async_timeline().bubble_ratio() < sync_timeline().bubble_ratio());
    }

    #[test]
    fn renders_both_panels() {
        let text = run();
        assert!(text.contains("(a) synchronous"));
        assert!(text.contains("(b) asynchronous"));
    }
}
