//! Graceful-shutdown regression for the `serve` host binary.
//!
//! Spawns the real `serve` executable on an ephemeral port, fires a wide
//! sweep at it from a client thread, then delivers SIGTERM mid-request.
//! The contract under test:
//!
//! - the in-flight client observes a *typed* outcome — a clean HTTP
//!   response, `ClientError::Disconnected`, or a connect refusal — never
//!   a hang and never a garbled-protocol error;
//! - the host drains and exits with status 0.

#![cfg(unix)]

use hanayo_serve::{Client, ClientError};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn spawn_host() -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--mode", "serve", "--addr", "127.0.0.1:0", "--drain-secs", "30"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve host");
    // The host prints `listening http://ADDR` as its first stdout line
    // exactly so harnesses like this one can find the ephemeral port.
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read banner");
    let addr = line
        .trim()
        .strip_prefix("listening http://")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .parse()
        .expect("banner carries a socket address");
    (child, addr)
}

fn wide_sweep_body() -> String {
    // Big enough that SIGTERM reliably lands while the sweep is running.
    r#"{"model":"bert64","cluster":"tacc","gpus":16,"batch":64,"micro_batch_size":1,"train_bytes_per_param":8,"min_pp":2,"waves":[1,2,4,8],"recompute":null,"wide":true,"serial":true,"top":null}"#
        .to_string()
}

fn sigterm(child: &Child) {
    let status =
        Command::new("kill").args(["-TERM", &child.id().to_string()]).status().expect("run kill");
    assert!(status.success(), "kill -TERM failed");
}

#[test]
fn sigterm_mid_sweep_yields_typed_client_error_and_exit_zero() {
    let (mut child, addr) = spawn_host();
    let client = Client::new(addr);
    assert_eq!(client.healthz().expect("host answers healthz"), "ok\n");

    let body = wide_sweep_body();
    let sweep = std::thread::spawn(move || client.request("POST", "/v1/tune", Some(&body)));

    // Let the sweep get going, then deliver the signal.
    std::thread::sleep(Duration::from_millis(200));
    sigterm(&child);

    // The client thread must come back with a *typed* outcome. A join
    // timeout here would mean the host leaked the connection on shutdown.
    let deadline = Instant::now() + Duration::from_secs(60);
    while !sweep.is_finished() {
        assert!(Instant::now() < deadline, "client hung through server shutdown");
        std::thread::sleep(Duration::from_millis(25));
    }
    match sweep.join().expect("client thread panicked") {
        // The sweep finished before the drain cut it off — a full
        // response is a legitimate graceful-shutdown outcome.
        Ok(resp) => assert!(
            matches!(resp.status, 200 | 503),
            "unexpected status {} through shutdown",
            resp.status
        ),
        Err(ClientError::Disconnected) | Err(ClientError::Connect(_)) => {}
        Err(other) => panic!("untyped/garbled client outcome: {other}"),
    }

    // The host must drain and exit 0 within its drain deadline.
    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(Instant::now() < deadline, "host never exited after SIGTERM");
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(status.success(), "host exited non-zero: {status:?}");
}
