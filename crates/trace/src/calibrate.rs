//! Profile-guided cost calibration: fit per-stage `T_F`/`T_B` and the
//! link time from a *measured* runtime trace, and re-express them as a
//! [`CostTable`] the simulator (and therefore the tuner) consumes.
//!
//! This is the loop the paper's §4 runtime closes — "the profiler measures
//! real per-stage times and feeds them into the performance model" — and
//! the one Chimera-style systems call profile-guided cost modelling:
//!
//! ```text
//! measure (runtime trace) → calibrate() → CostTable → simulate/tune → predict
//! ```
//!
//! The probe-based `hanayo_model::builders::micro_cost_table` supplies the
//! *byte* columns (stash/weight/gradient sizes probed from the real
//! stages); [`Calibration::cost_table`] replaces its proxy *timing*
//! columns with measured ones, so a simulation driven by the result
//! predicts the measured runtime's makespan (the `trace_truth` suite pins
//! the tolerance).

use crate::event::{Trace, TraceKind};
use hanayo_cluster::ClusterSpec;
use hanayo_model::CostTable;
use serde::Serialize;
use std::fmt;

/// Durations shorter than this are clamped up so a fast op can never
/// produce a zero (or negative-rounded) cost entry, which
/// `hanayo_sim::validate_numerics` would reject.
const MIN_SECONDS: f64 = 1e-9;

/// Fitted per-stage timings (seconds), straight from a measured trace.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Calibration {
    /// Mean measured forward seconds per stage.
    pub t_fwd: Vec<f64>,
    /// Mean measured backward seconds per stage, *including* the
    /// checkpointing replay when the trace was recorded under
    /// `Recompute::Full` (the simulator charges the replay inside `T_B`).
    pub t_bwd: Vec<f64>,
    /// Forward samples behind each mean.
    pub fwd_samples: Vec<usize>,
    /// Backward samples behind each mean.
    pub bwd_samples: Vec<usize>,
    /// Mean measured send seconds (the runtime's transfer cost; 0 when
    /// the trace has no sends).
    pub t_link: f64,
    /// Mean measured optimizer-step seconds (0 when absent).
    pub t_optim: f64,
    /// Mean measured all-reduce seconds (0 for single-pipeline traces).
    pub t_allreduce: f64,
    /// The device each stage's spans executed on (used to pick the right
    /// `effective_flops` when re-expressing times as FLOPs).
    pub stage_device: Vec<u32>,
}

/// Why a trace could not be calibrated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalibrateError {
    /// The trace has no compute events at all.
    Empty,
    /// A stage has no forward (or no backward) samples — the trace does
    /// not cover the pipeline it claims to.
    MissingStage {
        /// The uncovered stage.
        stage: usize,
        /// `"fwd"` or `"bwd"`.
        direction: &'static str,
    },
    /// The byte-column table handed to [`Calibration::cost_table`] covers
    /// a different stage count than the calibration.
    StageCountMismatch {
        /// Stages in the byte-column table.
        bytes: usize,
        /// Stages the calibration covers.
        calibrated: usize,
    },
    /// A calibrated stage ran on a device outside the target cluster
    /// (e.g. a data-parallel merge onto global ranks) — converting its
    /// timing would silently pick another device's speed.
    DeviceOutOfRange {
        /// The out-of-range device.
        device: u32,
        /// Devices in the target cluster.
        cluster: usize,
    },
}

impl fmt::Display for CalibrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrateError::Empty => write!(f, "trace has no compute events to calibrate from"),
            CalibrateError::MissingStage { stage, direction } => {
                write!(f, "trace has no {direction} samples for stage {stage}")
            }
            CalibrateError::StageCountMismatch { bytes, calibrated } => {
                write!(
                    f,
                    "byte-column table covers {bytes} stages, calibration covers {calibrated}"
                )
            }
            CalibrateError::DeviceOutOfRange { device, cluster } => {
                write!(
                    f,
                    "stage ran on device {device}, but the target cluster has only {cluster} \
                     devices — calibrate per pipeline group, or pass the full cluster"
                )
            }
        }
    }
}

impl std::error::Error for CalibrateError {}

/// Fit a [`Calibration`] from a measured trace covering `stages` pipeline
/// stages. Every stage must appear with at least one forward and one
/// backward sample.
pub fn calibrate(trace: &Trace, stages: usize) -> Result<Calibration, CalibrateError> {
    if !trace.events.iter().any(|e| e.kind.is_compute()) {
        return Err(CalibrateError::Empty);
    }
    let mut fwd_sum = vec![0.0f64; stages];
    let mut fwd_n = vec![0usize; stages];
    let mut bwd_sum = vec![0.0f64; stages];
    let mut bwd_n = vec![0usize; stages];
    let mut stage_device = vec![0u32; stages];
    let mut link_sum = 0.0f64;
    let mut link_n = 0usize;
    let mut optim_sum = 0.0f64;
    let mut optim_n = 0usize;
    let mut ar_sum = 0.0f64;
    let mut ar_n = 0usize;

    for e in &trace.events {
        match e.kind {
            TraceKind::Fwd => {
                if let Some(s) = e.stage.map(|s| s as usize).filter(|&s| s < stages) {
                    fwd_sum[s] += e.duration();
                    fwd_n[s] += 1;
                    stage_device[s] = e.device;
                }
            }
            // The replay is part of the backward's cost in the simulator's
            // model (`T_B' = T_B + T_F`), so both span halves accumulate
            // into the backward mean's numerator; only `Bwd` spans count
            // as samples (one replay rides each checkpointed backward).
            TraceKind::Bwd => {
                if let Some(s) = e.stage.map(|s| s as usize).filter(|&s| s < stages) {
                    bwd_sum[s] += e.duration();
                    bwd_n[s] += 1;
                }
            }
            TraceKind::Recompute => {
                if let Some(s) = e.stage.map(|s| s as usize).filter(|&s| s < stages) {
                    bwd_sum[s] += e.duration();
                }
            }
            TraceKind::Send => {
                link_sum += e.duration();
                link_n += 1;
            }
            TraceKind::Recv => {}
            TraceKind::Allreduce => {
                ar_sum += e.duration();
                ar_n += 1;
            }
            TraceKind::Optim => {
                optim_sum += e.duration();
                optim_n += 1;
            }
        }
    }

    for s in 0..stages {
        if fwd_n[s] == 0 {
            return Err(CalibrateError::MissingStage { stage: s, direction: "fwd" });
        }
        if bwd_n[s] == 0 {
            return Err(CalibrateError::MissingStage { stage: s, direction: "bwd" });
        }
    }
    let mean = |sum: f64, n: usize| if n > 0 { (sum / n as f64).max(MIN_SECONDS) } else { 0.0 };
    Ok(Calibration {
        t_fwd: fwd_sum.iter().zip(&fwd_n).map(|(&s, &n)| mean(s, n)).collect(),
        t_bwd: bwd_sum.iter().zip(&bwd_n).map(|(&s, &n)| mean(s, n)).collect(),
        fwd_samples: fwd_n,
        bwd_samples: bwd_n,
        t_link: if link_n > 0 { link_sum / link_n as f64 } else { 0.0 },
        t_optim: if optim_n > 0 { optim_sum / optim_n as f64 } else { 0.0 },
        t_allreduce: if ar_n > 0 { ar_sum / ar_n as f64 } else { 0.0 },
        stage_device,
    })
}

/// Score one measure→calibrate→predict validation attempt and record it.
///
/// Returns the relative error `|predicted − measured| / measured`
/// (infinite when `measured` is not a positive makespan, so a degenerate
/// measurement can never masquerade as a pass). When the metrics registry
/// is enabled the attempt lands as a `hanayo_calibrate_attempts_total`
/// counter (labelled by verdict against `tolerance`) plus an observation
/// of the error *percentage* in `hanayo_calibrate_rel_error_pct`; a
/// structured `calibrate`-target log event carries the raw numbers.
/// Recording observes only — the returned error is computed identically
/// with everything disabled.
pub fn record_validation_attempt(
    attempt: u32,
    predicted: f64,
    measured: f64,
    tolerance: f64,
) -> f64 {
    let rel_err = if measured > 0.0 && measured.is_finite() {
        (predicted - measured).abs() / measured
    } else {
        f64::INFINITY
    };
    let within = rel_err < tolerance;
    let verdict = if within { "within" } else { "exceeded" };
    hanayo_metrics::count!("hanayo_calibrate_attempts_total", &[("tolerance", verdict)], 1);
    // Clamp before the cast: an unmeasurable attempt lands in +Inf, not UB.
    let pct = (rel_err * 100.0).min(u64::MAX as f64) as u64;
    hanayo_metrics::observe!(
        "hanayo_calibrate_rel_error_pct",
        &[],
        hanayo_metrics::PCT_BUCKETS,
        pct
    );
    if hanayo_metrics::log::log_enabled(hanayo_metrics::log::Level::Info, "calibrate") {
        hanayo_metrics::log::event(
            hanayo_metrics::log::Level::Info,
            "calibrate",
            "validation attempt",
            &[
                ("attempt", hanayo_metrics::log::Field::U64(attempt as u64)),
                ("predicted_s", hanayo_metrics::log::Field::F64(predicted)),
                ("measured_s", hanayo_metrics::log::Field::F64(measured)),
                ("rel_error_pct", hanayo_metrics::log::Field::F64(rel_err * 100.0)),
                ("within_tolerance", hanayo_metrics::log::Field::Bool(within)),
            ],
        );
    }
    rel_err
}

impl Calibration {
    /// Number of calibrated stages.
    pub fn stages(&self) -> usize {
        self.t_fwd.len()
    }

    /// Re-express the measured timings as a [`CostTable`] for `cluster`:
    /// FLOP columns become `time × effective_flops(stage's device)`, so
    /// simulating on that same cluster reproduces the measured per-op
    /// times; byte columns (stash/weight/grad) are taken from `bytes`
    /// (typically `micro_cost_table`'s probed values, which the memory
    /// truth suite already pins against the runtime). `msg_bytes` is
    /// inverted from the measured link time through the cluster's first
    /// pipeline link so the simulated transfer occupancy matches.
    ///
    /// Errs when `bytes` covers a different stage count, or a calibrated
    /// stage ran on a device outside `cluster`.
    pub fn cost_table(
        &self,
        bytes: &CostTable,
        cluster: &ClusterSpec,
    ) -> Result<CostTable, CalibrateError> {
        if bytes.stages() != self.stages() {
            return Err(CalibrateError::StageCountMismatch {
                bytes: bytes.stages(),
                calibrated: self.stages(),
            });
        }
        // A trace recorded on more devices than `cluster` has (e.g. a
        // data-parallel merge onto global ranks) must not silently pick
        // an arbitrary device's speed on a heterogeneous cluster.
        if let Some(&bad) = self.stage_device.iter().find(|&&d| d as usize >= cluster.len()) {
            return Err(CalibrateError::DeviceOutOfRange { device: bad, cluster: cluster.len() });
        }
        let flops_at = |s: usize| cluster.effective_flops(self.stage_device[s] as usize);
        let fwd_flops: Vec<f64> =
            self.t_fwd.iter().enumerate().map(|(s, t)| t * flops_at(s)).collect();
        let bwd_flops: Vec<f64> =
            self.t_bwd.iter().enumerate().map(|(s, t)| t * flops_at(s)).collect();
        let msg_bytes = if cluster.len() > 1 {
            let link = cluster.p2p(0, 1);
            if link.bandwidth.is_finite() {
                ((self.t_link - link.latency).max(0.0) * link.bandwidth) as u64
            } else {
                bytes.msg_bytes
            }
        } else {
            bytes.msg_bytes
        };
        Ok(CostTable {
            layers_per_stage: bytes.layers_per_stage.clone(),
            fwd_flops,
            bwd_flops,
            stash_bytes: bytes.stash_bytes.clone(),
            weight_bytes: bytes.weight_bytes.clone(),
            grad_bytes: bytes.grad_bytes.clone(),
            msg_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use hanayo_cluster::topology::fc_full_nvlink;
    use hanayo_model::config::ModelConfig;

    fn ev(device: u32, kind: TraceKind, mb: u32, stage: u32, t0: f64, t1: f64) -> TraceEvent {
        TraceEvent { device, kind, mb: Some(mb), stage: Some(stage), t_start: t0, t_end: t1 }
    }

    /// 2 stages on 2 devices, 2 micro-batches, known durations.
    fn measured() -> Trace {
        let mut t = Trace::new(2);
        for mb in 0..2u32 {
            let o = mb as f64 * 10.0;
            t.events.push(ev(0, TraceKind::Fwd, mb, 0, o, o + 1.0));
            t.events.push(ev(0, TraceKind::Send, mb, 1, o + 1.0, o + 1.1));
            t.events.push(ev(1, TraceKind::Fwd, mb, 1, o + 1.5, o + 3.5));
            t.events.push(ev(1, TraceKind::Bwd, mb, 1, o + 3.5, o + 6.5));
            t.events.push(ev(0, TraceKind::Recompute, mb, 0, o + 7.0, o + 8.0));
            t.events.push(ev(0, TraceKind::Bwd, mb, 0, o + 8.0, o + 9.0));
        }
        t.normalize();
        t
    }

    #[test]
    fn means_and_samples_are_per_stage() {
        let c = calibrate(&measured(), 2).unwrap();
        assert_eq!(c.fwd_samples, vec![2, 2]);
        assert_eq!(c.bwd_samples, vec![2, 2]);
        assert!((c.t_fwd[0] - 1.0).abs() < 1e-12);
        assert!((c.t_fwd[1] - 2.0).abs() < 1e-12);
        // Stage 0's backward mean folds the 1 s replay into the 1 s tail.
        assert!((c.t_bwd[0] - 2.0).abs() < 1e-12);
        assert!((c.t_bwd[1] - 3.0).abs() < 1e-12);
        assert!((c.t_link - 0.1).abs() < 1e-12);
        assert_eq!(c.stage_device, vec![0, 1]);
    }

    #[test]
    fn missing_stage_is_a_typed_error() {
        let err = calibrate(&measured(), 3).unwrap_err();
        assert_eq!(err, CalibrateError::MissingStage { stage: 2, direction: "fwd" });
        assert!(err.to_string().contains("stage 2"));
        assert_eq!(calibrate(&Trace::new(2), 2).unwrap_err(), CalibrateError::Empty);
    }

    #[test]
    fn cost_table_round_trips_through_effective_flops() {
        let cluster = fc_full_nvlink(2);
        let c = calibrate(&measured(), 2).unwrap();
        let bytes = CostTable::build(&ModelConfig::bert64(), 2, 1);
        let table = c.cost_table(&bytes, &cluster).unwrap();
        // Simulated compute time = flops / effective_flops == measured.
        for s in 0..2 {
            let dt = table.fwd_flops[s] / cluster.effective_flops(s);
            assert!((dt - c.t_fwd[s]).abs() < 1e-9, "stage {s}: {dt}");
            let db = table.bwd_flops[s] / cluster.effective_flops(s);
            assert!((db - c.t_bwd[s]).abs() < 1e-9, "stage {s}: {db}");
        }
        // Byte columns ride through untouched.
        assert_eq!(table.stash_bytes, bytes.stash_bytes);
        assert_eq!(table.weight_bytes, bytes.weight_bytes);
        // Simulated transfer time ≈ measured link time.
        let link = cluster.p2p(0, 1);
        let transfer = table.msg_bytes as f64 / link.bandwidth + link.latency;
        assert!((transfer - c.t_link).abs() < 1e-6, "{transfer}");
    }

    #[test]
    fn cost_table_rejects_traces_from_more_devices_than_the_cluster() {
        // A DP-merged trace runs stages on global ranks ≥ P; converting
        // its timings through a P-device cluster must fail loudly, not
        // silently pick some other device's speed.
        let mut t = measured();
        for e in &mut t.events {
            e.device += 2;
        }
        let c = calibrate(&t, 2).unwrap();
        let err = c
            .cost_table(&CostTable::build(&ModelConfig::bert64(), 2, 1), &fc_full_nvlink(2))
            .unwrap_err();
        assert_eq!(err, CalibrateError::DeviceOutOfRange { device: 2, cluster: 2 });
    }

    #[test]
    fn sub_resolution_spans_clamp_to_positive_costs() {
        let mut t = Trace::new(1);
        t.events.push(ev(0, TraceKind::Fwd, 0, 0, 1.0, 1.0));
        t.events.push(ev(0, TraceKind::Bwd, 0, 0, 1.0, 1.0));
        t.normalize();
        let c = calibrate(&t, 1).unwrap();
        assert!(c.t_fwd[0] > 0.0 && c.t_bwd[0] > 0.0);
    }
}
