//! The unified event model both engines emit.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What an event's span was spent doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceKind {
    /// Forward of one micro-batch on one stage.
    Fwd,
    /// Backward of one micro-batch on one stage (under activation
    /// checkpointing, the portion *after* the replay).
    Bwd,
    /// The backward-time forward replay of a checkpointed stage
    /// (runtime, `Recompute::Full` only; the simulator folds the replay
    /// into the backward cost).
    Recompute,
    /// An outbound transfer. Simulator: the link occupancy of the
    /// rendezvous transfer, on the source device. Runtime: the (cheap,
    /// non-blocking) channel send.
    Send,
    /// An inbound transfer. Simulator: transfer start to arrival, on the
    /// destination device. Runtime: the blocking receive — wait included.
    Recv,
    /// The data-parallel gradient all-reduce for one stage (runtime only;
    /// the plan layer models it analytically).
    Allreduce,
    /// The optimizer step at the flush (zero-duration in the simulator,
    /// which charges it no cost).
    Optim,
}

impl TraceKind {
    /// Does this span occupy the device's compute stream? Compute spans
    /// are serial per device; comm spans may overlap them and each other.
    pub fn is_compute(self) -> bool {
        matches!(self, TraceKind::Fwd | TraceKind::Bwd | TraceKind::Recompute | TraceKind::Optim)
    }

    /// Complement of [`TraceKind::is_compute`].
    pub fn is_comm(self) -> bool {
        !self.is_compute()
    }

    /// Stable lowercase label (used in Chrome event names).
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::Fwd => "fwd",
            TraceKind::Bwd => "bwd",
            TraceKind::Recompute => "recompute",
            TraceKind::Send => "send",
            TraceKind::Recv => "recv",
            TraceKind::Allreduce => "allreduce",
            TraceKind::Optim => "optim",
        }
    }

    fn order(self) -> u8 {
        match self {
            TraceKind::Fwd => 0,
            TraceKind::Bwd => 1,
            TraceKind::Recompute => 2,
            TraceKind::Send => 3,
            TraceKind::Recv => 4,
            TraceKind::Allreduce => 5,
            TraceKind::Optim => 6,
        }
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One executed span. Times are seconds — simulated seconds for the
/// discrete-event engine, wall-clock seconds since the trainer's origin
/// for the threaded runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Device (pipeline rank; data-parallel traces use global ranks).
    pub device: u32,
    /// What the span did.
    pub kind: TraceKind,
    /// Micro-batch, when the op has one (`None` for Optim/Allreduce).
    pub mb: Option<u32>,
    /// Global stage, when the op has one (the runtime's per-stage Optim
    /// spans carry it; the simulator's whole-flush Optim marker does not).
    pub stage: Option<u32>,
    /// Span start, seconds.
    pub t_start: f64,
    /// Span end, seconds (`>= t_start`).
    pub t_end: f64,
}

impl TraceEvent {
    /// Span length in seconds.
    pub fn duration(&self) -> f64 {
        self.t_end - self.t_start
    }

    /// Deterministic total order used by [`Trace::normalize`].
    fn sort_key(&self) -> (f64, f64, u32, u8, u32, u32) {
        (
            self.t_start,
            self.t_end,
            self.device,
            self.kind.order(),
            self.mb.unwrap_or(u32::MAX),
            self.stage.unwrap_or(u32::MAX),
        )
    }
}

/// A violated trace invariant (see [`Trace::validate`]).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// An event's end precedes its start, or a time is not finite.
    BadSpan {
        /// Index into `events`.
        index: usize,
        /// Start of the offending span.
        t_start: f64,
        /// End of the offending span.
        t_end: f64,
    },
    /// An event names a device outside `0..devices`.
    BadDevice {
        /// Index into `events`.
        index: usize,
        /// The out-of-range device.
        device: u32,
    },
    /// Events are not sorted by the canonical key (run
    /// [`Trace::normalize`] first).
    Unsorted {
        /// Index of the first out-of-order event.
        index: usize,
    },
    /// Two compute spans on the same device overlap — a device computes
    /// one thing at a time in both engines.
    ComputeOverlap {
        /// The device with overlapping compute.
        device: u32,
        /// End of the earlier span.
        prev_end: f64,
        /// Start of the later (overlapping) span.
        next_start: f64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadSpan { index, t_start, t_end } => {
                write!(f, "event {index}: span [{t_start}, {t_end}] is not a valid interval")
            }
            TraceError::BadDevice { index, device } => {
                write!(f, "event {index}: device {device} outside the trace's device range")
            }
            TraceError::Unsorted { index } => {
                write!(f, "event {index} is out of order; call Trace::normalize")
            }
            TraceError::ComputeOverlap { device, prev_end, next_start } => {
                write!(
                    f,
                    "device {device}: compute span starting {next_start} overlaps one ending {prev_end}"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// A complete execution trace: every span of one run, canonically sorted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Number of devices (rows) the trace covers.
    pub devices: u32,
    /// The spans, in [`Trace::normalize`] order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace over `devices` devices.
    pub fn new(devices: u32) -> Trace {
        Trace { devices, events: Vec::new() }
    }

    /// Sort events into the canonical deterministic order (by start, end,
    /// device, kind, micro-batch, stage). Both engines normalize before
    /// handing a trace out; call this again after merging traces.
    pub fn normalize(&mut self) {
        self.events.sort_by(|a, b| {
            let (at, ae, ad, ak, am, as_) = a.sort_key();
            let (bt, be, bd, bk, bm, bs) = b.sort_key();
            at.total_cmp(&bt)
                .then(ae.total_cmp(&be))
                .then(ad.cmp(&bd))
                .then(ak.cmp(&bk))
                .then(am.cmp(&bm))
                .then(as_.cmp(&bs))
        });
    }

    /// Earliest span start (0.0 for an empty trace).
    pub fn start_time(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        self.events.iter().map(|e| e.t_start).fold(f64::INFINITY, f64::min)
    }

    /// Latest span end — for a simulator trace this equals the
    /// `SimReport`'s `iteration_time` *exactly* (0.0 for an empty trace).
    pub fn makespan(&self) -> f64 {
        self.events.iter().map(|e| e.t_end).fold(0.0, f64::max)
    }

    /// `makespan − start_time`: the executed wall span. For simulator
    /// traces this equals [`Trace::makespan`] (some device computes at
    /// t = 0); for runtime traces it excludes thread-spawn lead-in.
    pub fn duration(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        self.makespan() - self.start_time()
    }

    /// Busy compute seconds per device (compute spans are non-overlapping,
    /// so the sum *is* the union).
    pub fn device_busy(&self) -> Vec<f64> {
        let mut busy = vec![0.0; self.devices as usize];
        for e in &self.events {
            if e.kind.is_compute() {
                busy[e.device as usize] += e.duration();
            }
        }
        busy
    }

    /// `1 − Σ busy / (P · duration)` — the bubble ratio as measured on
    /// this trace. Matches `SimReport::bubble_ratio` bit-for-bit on
    /// simulator traces.
    pub fn bubble_ratio(&self) -> f64 {
        let span = self.duration();
        if span <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.device_busy().iter().sum();
        1.0 - busy / (span * self.devices as f64)
    }

    /// Check every invariant: finite ordered spans, devices in range,
    /// canonical sort order, and per-device non-overlapping compute.
    pub fn validate(&self) -> Result<(), TraceError> {
        for (index, e) in self.events.iter().enumerate() {
            if !(e.t_start.is_finite() && e.t_end.is_finite() && e.t_end >= e.t_start) {
                return Err(TraceError::BadSpan { index, t_start: e.t_start, t_end: e.t_end });
            }
            if e.device >= self.devices {
                return Err(TraceError::BadDevice { index, device: e.device });
            }
        }
        for (i, pair) in self.events.windows(2).enumerate() {
            if pair[0].sort_key() > pair[1].sort_key() {
                return Err(TraceError::Unsorted { index: i + 1 });
            }
        }
        // Compute spans per device must be serial. Events are sorted by
        // start, so one running maximum per device suffices.
        let mut last_end = vec![f64::NEG_INFINITY; self.devices as usize];
        for e in self.events.iter().filter(|e| e.kind.is_compute()) {
            let d = e.device as usize;
            if e.t_start < last_end[d] - 1e-12 {
                return Err(TraceError::ComputeOverlap {
                    device: e.device,
                    prev_end: last_end[d],
                    next_start: e.t_start,
                });
            }
            last_end[d] = last_end[d].max(e.t_end);
        }
        Ok(())
    }

    /// Merge `other` into `self`, offsetting its device ids by
    /// `device_offset` (used to combine data-parallel replica traces into
    /// one global-rank trace). Re-normalizes.
    pub fn merge_offset(&mut self, other: &Trace, device_offset: u32) {
        self.devices = self.devices.max(other.devices + device_offset);
        self.events.extend(
            other.events.iter().map(|e| TraceEvent { device: e.device + device_offset, ..*e }),
        );
        self.normalize();
    }

    /// Merge `other` into `self` with every span shifted `t_offset`
    /// seconds later — how a *resumed* run's trace lands on the same clock
    /// as the segment recorded before the failure: the caller passes the
    /// earlier trace's [`Trace::makespan`], so the resumed spans start
    /// where the interrupted ones ended and every analysis (busy, bubble,
    /// overlap, critical path) stays exact over the merged timeline.
    /// Re-normalizes.
    pub fn merge_shifted(&mut self, other: &Trace, t_offset: f64) {
        self.devices = self.devices.max(other.devices);
        self.events.extend(other.events.iter().map(|e| TraceEvent {
            t_start: e.t_start + t_offset,
            t_end: e.t_end + t_offset,
            ..*e
        }));
        self.normalize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(device: u32, kind: TraceKind, t0: f64, t1: f64) -> TraceEvent {
        TraceEvent { device, kind, mb: Some(0), stage: Some(0), t_start: t0, t_end: t1 }
    }

    #[test]
    fn makespan_duration_and_busy() {
        let mut t = Trace::new(2);
        t.events.push(ev(0, TraceKind::Fwd, 1.0, 2.0));
        t.events.push(ev(1, TraceKind::Fwd, 2.0, 4.0));
        t.events.push(ev(1, TraceKind::Recv, 1.0, 2.0));
        t.normalize();
        assert_eq!(t.makespan(), 4.0);
        assert_eq!(t.duration(), 3.0);
        assert_eq!(t.device_busy(), vec![1.0, 2.0]);
        // busy 3 of 2·3 device-seconds → bubble 1/2.
        assert!((t.bubble_ratio() - 0.5).abs() < 1e-12);
        t.validate().unwrap();
    }

    #[test]
    fn validate_catches_compute_overlap_but_allows_comm_overlap() {
        let mut t = Trace::new(1);
        t.events.push(ev(0, TraceKind::Fwd, 0.0, 2.0));
        t.events.push(ev(0, TraceKind::Recv, 0.5, 1.5));
        t.normalize();
        t.validate().unwrap();
        t.events.push(ev(0, TraceKind::Bwd, 1.0, 3.0));
        t.normalize();
        assert!(matches!(t.validate(), Err(TraceError::ComputeOverlap { device: 0, .. })));
    }

    #[test]
    fn validate_catches_bad_spans_devices_and_order() {
        let mut t = Trace::new(1);
        t.events.push(ev(0, TraceKind::Fwd, 2.0, 1.0));
        assert!(matches!(t.validate(), Err(TraceError::BadSpan { .. })));
        t.events[0] = ev(3, TraceKind::Fwd, 0.0, 1.0);
        assert!(matches!(t.validate(), Err(TraceError::BadDevice { device: 3, .. })));
        let mut t = Trace::new(1);
        t.events.push(ev(0, TraceKind::Fwd, 1.0, 2.0));
        t.events.push(ev(0, TraceKind::Fwd, 0.0, 1.0));
        assert!(matches!(t.validate(), Err(TraceError::Unsorted { index: 1 })));
    }

    #[test]
    fn merge_offsets_device_ids() {
        let mut a = Trace::new(2);
        a.events.push(ev(0, TraceKind::Fwd, 0.0, 1.0));
        let mut b = Trace::new(2);
        b.events.push(ev(1, TraceKind::Fwd, 0.5, 1.5));
        a.merge_offset(&b, 2);
        assert_eq!(a.devices, 4);
        assert_eq!(a.events[1].device, 3);
        a.validate().unwrap();
    }

    #[test]
    fn merge_shifted_resumes_on_one_clock() {
        // Pre-failure segment: device 0 computes [0,1], device 1 [1,2].
        let mut before = Trace::new(2);
        before.events.push(ev(0, TraceKind::Fwd, 0.0, 1.0));
        before.events.push(ev(1, TraceKind::Fwd, 1.0, 2.0));
        before.normalize();
        // Resumed segment, recorded from its own origin.
        let mut resumed = Trace::new(2);
        resumed.events.push(ev(0, TraceKind::Fwd, 0.0, 0.5));
        resumed.events.push(ev(0, TraceKind::Bwd, 0.5, 1.5));
        resumed.normalize();
        let offset = before.makespan();
        before.merge_shifted(&resumed, offset);
        before.validate().unwrap();
        assert_eq!(before.makespan(), 3.5);
        // Busy time is the sum of both segments, exactly.
        assert_eq!(before.device_busy(), vec![2.5, 1.0]);
        // No resumed span starts before the pre-failure makespan.
        let shifted: Vec<&TraceEvent> =
            before.events.iter().filter(|e| e.t_start >= offset).collect();
        assert_eq!(shifted.len(), 2);
    }

    #[test]
    fn empty_trace_is_degenerate_but_valid() {
        let t = Trace::new(4);
        assert_eq!(t.makespan(), 0.0);
        assert_eq!(t.duration(), 0.0);
        assert_eq!(t.bubble_ratio(), 0.0);
        t.validate().unwrap();
    }
}
