//! # hanayo-trace
//!
//! The measurement subsystem: one event model for *everything that
//! executes a schedule*.
//!
//! The paper's runtime (§4) is driven by a profiler — real per-stage
//! forward/backward and communication times feed the performance model
//! that picks the wave configuration. This crate closes that loop for the
//! reproduction: both engines emit the same [`Trace`] of
//! [`TraceEvent`]s —
//!
//! * the discrete-event simulator lowers its spans and transfers into a
//!   trace when `SimOptions::trace` is set (`hanayo_sim::simulate_traced`),
//!   with times in simulated seconds;
//! * the threaded runtime records `Instant`-based spans around every
//!   worker op when `TrainerConfig::trace` is set, with times in wall-clock
//!   seconds since the trainer's origin.
//!
//! On top of the shared model:
//!
//! * [`chrome`] — export to Chrome `trace_event` JSON (the array format),
//!   loadable in Perfetto / `chrome://tracing`, plus a validator the CI
//!   smoke test parses exports back through.
//! * [`analysis`] — bubble ratio, per-device utilisation, comm/compute
//!   overlap and the critical path, computed uniformly for simulated and
//!   measured traces.
//! * [`calibrate`] — fit per-stage `T_F`/`T_B` and link time from a
//!   *measured* runtime trace and re-express them as a
//!   [`hanayo_model::CostTable`], so the simulator can predict the runtime
//!   it was calibrated on: measure → calibrate → sweep → predict.
//! * [`gantt`] — ASCII Gantt rendering over real timelines, sharing
//!   `hanayo_core::gantt`'s painter so simulated-seconds and wall-clock
//!   charts look exactly like the paper-style abstract ones.

pub mod analysis;
pub mod calibrate;
pub mod chrome;
pub mod event;
pub mod gantt;

pub use analysis::{analyze, TraceAnalysis};
pub use calibrate::{calibrate, record_validation_attempt, CalibrateError, Calibration};
pub use chrome::{chrome_trace_json, validate_chrome_json};
pub use event::{Trace, TraceError, TraceEvent, TraceKind};
