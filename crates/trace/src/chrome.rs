//! Chrome `trace_event` export.
//!
//! Emits the *JSON array format* (a top-level array of complete `"ph":
//! "X"` events), which Perfetto and `chrome://tracing` both load
//! directly. Timestamps and durations are microseconds, per the format
//! spec. One "process" (`pid`) per device; compute spans on `tid` 0,
//! communication spans on `tid` 1, so overlapping comm renders on its own
//! track instead of nesting under compute.
//!
//! [`validate_chrome_json`] parses an export back and checks the fields
//! every viewer requires — the CI smoke test runs the `trace` binary,
//! then feeds the file through this validator.

use crate::event::{Trace, TraceKind};
use serde::{Deserialize, Serialize};

/// Track id for compute spans within a device's process.
pub const TID_COMPUTE: u32 = 0;
/// Track id for communication spans within a device's process.
pub const TID_COMM: u32 = 1;

/// One complete event in Chrome's `trace_event` schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeEvent {
    /// Human-readable label shown on the slice.
    pub name: String,
    /// Category (`compute` or `comm`).
    pub cat: String,
    /// Phase: always `"X"` (complete event).
    pub ph: String,
    /// Start timestamp, microseconds.
    pub ts: f64,
    /// Duration, microseconds.
    pub dur: f64,
    /// Process id: the device rank.
    pub pid: u32,
    /// Thread id: [`TID_COMPUTE`] or [`TID_COMM`].
    pub tid: u32,
}

fn event_name(kind: TraceKind, mb: Option<u32>, stage: Option<u32>) -> String {
    let mut name = kind.label().to_string();
    if let Some(mb) = mb {
        name.push_str(&format!(" mb{mb}"));
    }
    if let Some(stage) = stage {
        name.push_str(&format!(" s{stage}"));
    }
    name
}

/// Lower a [`Trace`] into the Chrome event list (times scaled from
/// seconds to microseconds).
pub fn chrome_events(trace: &Trace) -> Vec<ChromeEvent> {
    trace
        .events
        .iter()
        .map(|e| ChromeEvent {
            name: event_name(e.kind, e.mb, e.stage),
            cat: if e.kind.is_compute() { "compute" } else { "comm" }.to_string(),
            ph: "X".to_string(),
            ts: e.t_start * 1e6,
            dur: e.duration() * 1e6,
            pid: e.device,
            tid: if e.kind.is_compute() { TID_COMPUTE } else { TID_COMM },
        })
        .collect()
}

/// Serialize a trace as Chrome `trace_event` JSON (array format). Load
/// the output in <https://ui.perfetto.dev> or `chrome://tracing`.
/// Serialization of this flat event array cannot fail in practice; the
/// `Result` keeps the export path panic-free regardless.
pub fn chrome_trace_json(trace: &Trace) -> Result<String, String> {
    serde_json::to_string(&chrome_events(trace))
        .map_err(|e| format!("chrome trace serialization: {e}"))
}

/// Parse a Chrome-trace JSON export back and verify what every viewer
/// needs: valid JSON, an array of events, each with `ph == "X"`, finite
/// non-negative `ts`/`dur`, and `pid`/`tid` present (enforced by the
/// typed parse). Returns the event count.
pub fn validate_chrome_json(json: &str) -> Result<usize, String> {
    let events: Vec<ChromeEvent> =
        serde_json::from_str(json).map_err(|e| format!("not a Chrome trace array: {e}"))?;
    for (i, e) in events.iter().enumerate() {
        if e.ph != "X" {
            return Err(format!("event {i}: ph {:?} is not a complete event", e.ph));
        }
        if !(e.ts.is_finite() && e.ts >= 0.0) {
            return Err(format!("event {i}: ts {} is not a finite non-negative time", e.ts));
        }
        if !(e.dur.is_finite() && e.dur >= 0.0) {
            return Err(format!("event {i}: dur {} is not a finite non-negative span", e.dur));
        }
        if e.name.is_empty() {
            return Err(format!("event {i}: empty name"));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn sample() -> Trace {
        let mut t = Trace::new(2);
        t.events.push(TraceEvent {
            device: 0,
            kind: TraceKind::Fwd,
            mb: Some(3),
            stage: Some(1),
            t_start: 0.5,
            t_end: 1.0,
        });
        t.events.push(TraceEvent {
            device: 1,
            kind: TraceKind::Recv,
            mb: Some(3),
            stage: Some(2),
            t_start: 0.75,
            t_end: 1.25,
        });
        t.normalize();
        t
    }

    #[test]
    fn export_has_required_fields_and_validates() {
        let json = chrome_trace_json(&sample()).unwrap();
        assert_eq!(validate_chrome_json(&json).unwrap(), 2);
        for field in ["\"ph\"", "\"ts\"", "\"dur\"", "\"pid\"", "\"tid\""] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn times_are_microseconds_and_tracks_split_compute_from_comm() {
        let events = chrome_events(&sample());
        let fwd = events.iter().find(|e| e.name.starts_with("fwd")).unwrap();
        assert_eq!(fwd.ts, 0.5e6);
        assert_eq!(fwd.dur, 0.5e6);
        assert_eq!(fwd.tid, TID_COMPUTE);
        assert_eq!(fwd.cat, "compute");
        let recv = events.iter().find(|e| e.name.starts_with("recv")).unwrap();
        assert_eq!(recv.tid, TID_COMM);
        assert_eq!(recv.pid, 1);
        assert_eq!(recv.name, "recv mb3 s2");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_json("{not json").is_err());
        assert!(validate_chrome_json("{\"traceEvents\": 3}").is_err());
        let bad_ph =
            r#"[{"name":"x","cat":"compute","ph":"B","ts":0.0,"dur":1.0,"pid":0,"tid":0}]"#;
        assert!(validate_chrome_json(bad_ph).unwrap_err().contains("complete event"));
        let bad_ts =
            r#"[{"name":"x","cat":"compute","ph":"X","ts":-1.0,"dur":1.0,"pid":0,"tid":0}]"#;
        assert!(validate_chrome_json(bad_ts).is_err());
    }
}
