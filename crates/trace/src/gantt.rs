//! ASCII Gantt rendering over *real* timelines.
//!
//! `hanayo_core::gantt` draws schedules under abstract unit costs; this
//! module draws a [`Trace`] — measured wall-clock spans from the threaded
//! runtime, or simulated seconds from the discrete-event engine — with
//! the same visual alphabet (`0-9A-Z` forwards, `a-z` backwards, `.`
//! idle) through the same shared painter, so the two kinds of chart read
//! identically:
//!
//! ```text
//! P0 |000111222...aaa...bbb..ccc
//! P1 |...000111222aaabbbccc.....
//! ```

use crate::event::{Trace, TraceKind};
use hanayo_core::gantt::{block_char, paint_rows};

/// Render the trace's compute spans, scaled to `width` columns. Comm
/// spans are not painted (idle-or-comm shows as `.`); the backward-time
/// replay of a checkpointed stage paints as backward. A compute span of
/// any positive duration gets at least one cell so short ops stay
/// visible.
pub fn render(trace: &Trace, width: usize) -> String {
    let span = trace.duration();
    if span <= 0.0 || width == 0 {
        return (0..trace.devices).map(|d| format!("P{d:<2}|\n")).collect();
    }
    let t0 = trace.start_time();
    let col = |t: f64| (((t - t0) / span) * width as f64).round() as usize;
    let mut rows: Vec<Vec<(usize, usize, char)>> = vec![Vec::new(); trace.devices as usize];
    for e in &trace.events {
        let ch = match e.kind {
            TraceKind::Fwd => block_char(e.mb.unwrap_or(u32::MAX), false),
            TraceKind::Bwd | TraceKind::Recompute => block_char(e.mb.unwrap_or(u32::MAX), true),
            TraceKind::Optim => 'O',
            _ => continue,
        };
        let start = col(e.t_start).min(width.saturating_sub(1));
        let end = col(e.t_end).max(start + 1).min(width);
        rows[e.device as usize].push((start, end, ch));
    }
    paint_rows(width, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn ev(device: u32, kind: TraceKind, mb: u32, t0: f64, t1: f64) -> TraceEvent {
        TraceEvent { device, kind, mb: Some(mb), stage: Some(0), t_start: t0, t_end: t1 }
    }

    #[test]
    fn rows_scale_to_width_and_share_the_alphabet() {
        let mut t = Trace::new(2);
        t.events.push(ev(0, TraceKind::Fwd, 0, 0.0, 1.0));
        t.events.push(ev(0, TraceKind::Bwd, 0, 1.0, 2.0));
        t.events.push(ev(1, TraceKind::Recv, 0, 0.0, 1.0));
        t.events.push(ev(1, TraceKind::Fwd, 0, 1.0, 2.0));
        t.normalize();
        let text = render(&t, 10);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "P0 |00000aaaaa");
        // Comm is not painted: P1 idles (dot) through its receive.
        assert_eq!(lines[1], "P1 |.....00000");
    }

    #[test]
    fn short_spans_stay_visible() {
        let mut t = Trace::new(1);
        t.events.push(ev(0, TraceKind::Fwd, 1, 0.0, 100.0));
        t.events.push(ev(0, TraceKind::Fwd, 2, 100.0, 100.001));
        t.normalize();
        let text = render(&t, 20);
        assert!(text.contains('2'), "{text}");
    }

    #[test]
    fn empty_trace_renders_empty_rows() {
        let text = render(&Trace::new(3), 12);
        assert_eq!(text, "P0 |\nP1 |\nP2 |\n");
    }
}
