//! Uniform trace analysis: utilisation, bubbles, comm/compute overlap and
//! the critical path — the same code runs on simulated and measured
//! traces, which is what makes their numbers comparable.

use crate::event::{Trace, TraceEvent, TraceKind};
use serde::Serialize;

/// The derived statistics of one trace.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceAnalysis {
    /// Executed wall span (`makespan − earliest start`), seconds.
    pub duration: f64,
    /// Latest span end, seconds.
    pub makespan: f64,
    /// `1 − Σ busy / (P · duration)`.
    pub bubble_ratio: f64,
    /// Busy compute seconds per device.
    pub device_busy: Vec<f64>,
    /// `busy / duration` per device.
    pub utilization: Vec<f64>,
    /// Seconds each device had at least one communication span active
    /// (union, not sum — concurrent transfers count once).
    pub comm_active: Vec<f64>,
    /// Seconds each device had communication *and* compute active
    /// simultaneously — the overlap §4.2's prefetching exists to create.
    pub comm_overlapped: Vec<f64>,
    /// Number of compute spans on the critical path.
    pub critical_path_len: usize,
    /// Total compute seconds on the critical path.
    pub critical_path_compute: f64,
    /// `critical_path_compute / duration`: 1.0 means the run is fully
    /// serialised behind dependencies; the gap is bubble + comm stall.
    pub critical_path_fraction: f64,
}

/// Union length of a set of (possibly overlapping) intervals.
fn union_len(mut iv: Vec<(f64, f64)>) -> f64 {
    iv.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut total = 0.0;
    let mut cur: Option<(f64, f64)> = None;
    for (s, e) in iv {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                cur = Some((s, e));
                let _ = cs;
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

/// The dependency an executed compute op waits on, mirroring the chain
/// structure both engines execute: forwards chain down the stages,
/// backwards chain back up, and the last stage's backward turns around on
/// its own forward.
fn dependency(e: &TraceEvent, last_stage: &[Option<u32>]) -> Option<(TraceKind, u32, u32)> {
    let (mb, stage) = (e.mb?, e.stage?);
    match e.kind {
        TraceKind::Fwd => (stage > 0).then(|| (TraceKind::Fwd, mb, stage - 1)),
        TraceKind::Bwd | TraceKind::Recompute => {
            let last = last_stage.get(mb as usize).copied().flatten()?;
            if stage < last {
                Some((TraceKind::Bwd, mb, stage + 1))
            } else {
                Some((TraceKind::Fwd, mb, stage))
            }
        }
        _ => None,
    }
}

/// Analyze a normalized trace. Critical-path extraction assumes one
/// iteration (on multi-iteration traces later occurrences shadow earlier
/// ones, so the path is best-effort there); every other statistic is
/// exact regardless.
pub fn analyze(trace: &Trace) -> TraceAnalysis {
    let p = trace.devices as usize;
    let duration = trace.duration();
    let makespan = trace.makespan();
    let device_busy = trace.device_busy();
    let utilization =
        device_busy.iter().map(|&b| if duration > 0.0 { b / duration } else { 0.0 }).collect();

    let mut comm_iv: Vec<Vec<(f64, f64)>> = vec![Vec::new(); p];
    let mut compute_iv: Vec<Vec<(f64, f64)>> = vec![Vec::new(); p];
    for e in &trace.events {
        let bucket = if e.kind.is_compute() { &mut compute_iv } else { &mut comm_iv };
        bucket[e.device as usize].push((e.t_start, e.t_end));
    }
    // |comm ∩ compute| = |comm| + |compute| − |comm ∪ compute|; the comm
    // union doubles as `comm_active`, and the compute union is the busy
    // time already in hand (compute spans are serial per device).
    let comm_active: Vec<f64> = comm_iv.iter().map(|iv| union_len(iv.clone())).collect();
    let comm_overlapped: Vec<f64> = comm_iv
        .into_iter()
        .zip(compute_iv)
        .enumerate()
        .map(|(d, (comm, compute))| {
            let both = comm_active[d] + device_busy[d];
            let mut merged = comm;
            merged.extend(compute);
            both - union_len(merged)
        })
        .collect();

    let (critical_path_len, critical_path_compute) = critical_path(trace);
    let critical_path_fraction =
        if duration > 0.0 { critical_path_compute / duration } else { 0.0 };

    let total_busy: f64 = device_busy.iter().sum();
    let bubble_ratio = if duration > 0.0 { 1.0 - total_busy / (duration * p as f64) } else { 0.0 };
    TraceAnalysis {
        duration,
        makespan,
        bubble_ratio,
        device_busy,
        utilization,
        comm_active,
        comm_overlapped,
        critical_path_len,
        critical_path_compute,
        critical_path_fraction,
    }
}

/// Walk the dependency chain back from the last-finishing compute span,
/// at each hop taking whichever of {data dependency, same-device
/// predecessor} finished last. Returns `(hops, compute seconds on path)`.
fn critical_path(trace: &Trace) -> (usize, f64) {
    use std::collections::HashMap;
    let compute: Vec<&TraceEvent> = trace.events.iter().filter(|e| e.kind.is_compute()).collect();
    if compute.is_empty() {
        return (0, 0.0);
    }

    // Deepest stage each micro-batch's forward reached (the turnaround
    // point for its backward chain).
    let max_mb = compute.iter().filter_map(|e| e.mb).max().map(|m| m as usize + 1).unwrap_or(0);
    let mut last_stage: Vec<Option<u32>> = vec![None; max_mb];
    for e in &compute {
        if e.kind == TraceKind::Fwd {
            if let (Some(mb), Some(stage)) = (e.mb, e.stage) {
                let entry = &mut last_stage[mb as usize];
                *entry = Some(entry.map_or(stage, |s| s.max(stage)));
            }
        }
    }

    // Index by (kind-class, mb, stage); Recompute resolves as Bwd's
    // leading half so a Bwd's dependency can land on it.
    let mut by_key: HashMap<(TraceKind, u32, u32), usize> = HashMap::new();
    let mut prev_on_device: Vec<Option<usize>> = vec![None; compute.len()];
    let mut last_on_device: Vec<Option<usize>> = vec![None; trace.devices as usize];
    for (i, e) in compute.iter().enumerate() {
        let d = e.device as usize;
        prev_on_device[i] = last_on_device[d];
        last_on_device[d] = Some(i);
        if let (Some(mb), Some(stage)) = (e.mb, e.stage) {
            let kind = if e.kind == TraceKind::Recompute { TraceKind::Bwd } else { e.kind };
            // Later events shadow earlier ones (multi-iteration traces).
            by_key.insert((kind, mb, stage), i);
        }
    }

    let Some(mut cur) =
        (0..compute.len()).max_by(|&a, &b| compute[a].t_end.total_cmp(&compute[b].t_end))
    else {
        return (0, 0.0);
    };
    let mut hops = 1usize;
    let mut total = compute[cur].duration();
    // The dependency structure is acyclic, but cap the walk at the event
    // count so a malformed hand-built trace cannot loop the analyzer.
    while hops <= compute.len() {
        let e = compute[cur];
        let dep = dependency(e, &last_stage)
            .and_then(|k| by_key.get(&k).copied())
            .filter(|&i| compute[i].t_end <= e.t_start + 1e-12 && i != cur);
        let prev = prev_on_device[cur];
        let next = match (dep, prev) {
            (Some(a), Some(b)) => Some(if compute[a].t_end >= compute[b].t_end { a } else { b }),
            (a, b) => a.or(b),
        };
        match next {
            Some(i) => {
                hops += 1;
                total += compute[i].duration();
                cur = i;
            }
            None => break,
        }
    }
    (hops, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(device: u32, kind: TraceKind, mb: u32, stage: u32, t0: f64, t1: f64) -> TraceEvent {
        TraceEvent { device, kind, mb: Some(mb), stage: Some(stage), t_start: t0, t_end: t1 }
    }

    /// A 2-device, 1-micro-batch pipeline: F0 on P0, F1 then B1 on P1,
    /// then B0 back on P0, with a transfer overlapping P1's forward.
    fn pipeline_trace() -> Trace {
        let mut t = Trace::new(2);
        t.events.push(ev(0, TraceKind::Fwd, 0, 0, 0.0, 1.0));
        t.events.push(ev(1, TraceKind::Recv, 0, 1, 0.5, 1.2));
        t.events.push(ev(1, TraceKind::Fwd, 0, 1, 1.2, 2.2));
        t.events.push(ev(1, TraceKind::Bwd, 0, 1, 2.2, 4.2));
        t.events.push(ev(0, TraceKind::Recv, 0, 0, 4.2, 4.4));
        t.events.push(ev(0, TraceKind::Bwd, 0, 0, 4.4, 6.4));
        t.normalize();
        t
    }

    #[test]
    fn analysis_statistics_are_consistent() {
        let a = analyze(&pipeline_trace());
        assert_eq!(a.makespan, 6.4);
        assert_eq!(a.duration, 6.4);
        assert_eq!(a.device_busy, vec![3.0, 3.0]);
        assert!((a.utilization[0] - 3.0 / 6.4).abs() < 1e-12);
        assert!((a.bubble_ratio - (1.0 - 6.0 / 12.8)).abs() < 1e-12);
        // P1's 0.7 s receive overlaps P0's... nothing on P1's own compute
        // before 1.2; overlap there is 0. P0's receive never overlaps its
        // own compute either.
        for (got, want) in a.comm_active.iter().zip([0.2, 0.7]) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
        assert_eq!(a.comm_overlapped, vec![0.0, 0.0]);
    }

    #[test]
    fn critical_path_walks_the_dependency_chain() {
        let a = analyze(&pipeline_trace());
        // B0(P0) ← B1(P1) ← F1(P1) ← F0(P0): 4 hops, 6.0 s of compute.
        assert_eq!(a.critical_path_len, 4);
        assert!((a.critical_path_compute - 6.0).abs() < 1e-12);
        assert!(a.critical_path_fraction < 1.0);
    }

    #[test]
    fn overlapped_comm_is_measured() {
        let mut t = Trace::new(1);
        t.events.push(ev(0, TraceKind::Fwd, 0, 0, 0.0, 2.0));
        t.events.push(ev(0, TraceKind::Recv, 1, 0, 1.0, 3.0));
        t.events.push(ev(0, TraceKind::Recv, 2, 0, 1.5, 2.5));
        t.normalize();
        let a = analyze(&t);
        // Comm union [1, 3] = 2 s, of which [1, 2] overlaps compute.
        assert!((a.comm_active[0] - 2.0).abs() < 1e-12);
        assert!((a.comm_overlapped[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_analyzes_to_zeros() {
        let a = analyze(&Trace::new(3));
        assert_eq!(a.critical_path_len, 0);
        assert_eq!(a.bubble_ratio, 0.0);
        assert_eq!(a.device_busy, vec![0.0; 3]);
    }

    #[test]
    fn interval_union_merges_overlaps() {
        assert_eq!(union_len(vec![(0.0, 1.0), (0.5, 2.0), (3.0, 4.0)]), 3.0);
        assert_eq!(union_len(Vec::new()), 0.0);
    }
}
