//! Property tests for the wire path: across random `(model, cluster,
//! batch)` triples, a tune served over HTTP (parallel evaluation, shared
//! caches, request dedup) must return a body **byte-identical** to the
//! serial reference sweep built directly in-process. Neither the
//! transport, the cache layer, nor worker interleaving may leak into the
//! ranking bytes.

use hanayo_serve::schema::{run_tune, TuneRequest};
use hanayo_serve::{serve, Client, Server};
use hanayo_sim::TuneContext;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One resident server for every case: the cross-request cache layer is
/// part of what's under test — later cases hit caches warmed by earlier
/// ones and must still serve identical bytes.
fn shared_server() -> &'static Server {
    static SERVER: OnceLock<Server> = OnceLock::new();
    SERVER.get_or_init(|| serve("127.0.0.1:0").expect("bind shared server"))
}

fn request_for(model_idx: usize, cluster_idx: usize, batch: u32, wide: bool) -> TuneRequest {
    let model = if model_idx == 0 { "bert64" } else { "gpt128" };
    let cluster = ["pc", "fc", "tacc", "tc"][cluster_idx];
    TuneRequest {
        model: model.to_string(),
        cluster: cluster.to_string(),
        gpus: 8,
        batch,
        micro_batch_size: 1,
        train_bytes_per_param: 8,
        min_pp: 4,
        waves: vec![1, 2],
        recompute: None,
        wide,
        serial: false,
        top: Some(5),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn served_tune_is_byte_identical_to_the_serial_reference(
        model_idx in 0usize..2,
        cluster_idx in 0usize..4,
        batch in 4u32..=16,
        wide in 0u8..2,
    ) {
        let req = request_for(model_idx, cluster_idx, batch, wide == 1);
        let body = serde_json::to_string(&req).expect("request serialises");

        let client = Client::new(shared_server().addr());
        let served = client.expect_ok("POST", "/v1/tune", Some(&body)).expect("served tune");

        // The serial reference: same request, evaluated one candidate at
        // a time with no caches and no server in the loop.
        let reference = TuneRequest { serial: true, ..req };
        let doc = run_tune(&reference, &TuneContext::default()).expect("reference tune");
        let reference = serde_json::to_string(&doc).expect("doc serialises") + "\n";

        prop_assert_eq!(served, reference, "wire bytes diverged from the serial reference");
    }
}
