//! Golden wire-protocol snapshots: every endpoint's request and response
//! JSON, exercised over a real TCP connection against an in-process
//! server, frozen byte-for-byte. The snapshots are the service's wire
//! contract — a drift here is an API break, not a refactor.
//!
//! Also behavioural (non-golden) coverage: dedup'd concurrent tunes,
//! job submit/status/result/cancel semantics, and draining refusals.
//!
//! To regenerate after an intentional schema change:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test -p hanayo-serve --test golden_wire
//! ```

use hanayo_model::Recompute;
use hanayo_serve::schema::{run_tune, AnalyzeRequest, PlanRequest, SimulateRequest, TuneRequest};
use hanayo_serve::{serve, Client};
use hanayo_sim::TuneContext;
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn check(name: &str, rendered: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        fs::create_dir_all(golden_dir()).unwrap();
        fs::write(&path, rendered).unwrap();
        return;
    }
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {path:?} ({e}); \
             regenerate with GOLDEN_UPDATE=1 cargo test -p hanayo-serve --test golden_wire"
        )
    });
    assert_eq!(
        rendered, golden,
        "{name}: wire bytes drifted from the golden snapshot; if the \
         schema change is intentional, regenerate with \
         GOLDEN_UPDATE=1 cargo test -p hanayo-serve --test golden_wire"
    );
}

fn plan_request() -> PlanRequest {
    PlanRequest {
        model: "bert64".to_string(),
        cluster: "fc".to_string(),
        gpus: 8,
        train_bytes_per_param: 8,
        method: "hanayo_w2".to_string(),
        pp: 8,
        dp: 1,
        micro_batches: 8,
        micro_batch_size: 1,
        recompute: Recompute::None,
    }
}

fn tune_request() -> TuneRequest {
    TuneRequest {
        model: "bert64".to_string(),
        cluster: "fc".to_string(),
        gpus: 8,
        batch: 8,
        micro_batch_size: 1,
        train_bytes_per_param: 8,
        min_pp: 4,
        waves: vec![1, 2],
        recompute: None,
        wide: false,
        serial: false,
        top: Some(3),
    }
}

fn simulate_request() -> SimulateRequest {
    SimulateRequest {
        model: "bert64".to_string(),
        cluster: "fc".to_string(),
        gpus: 8,
        scheme: "hanayo_w2".to_string(),
        micro_batches: 8,
        micro_batch_size: 1,
        recompute: Recompute::None,
        prefetch: true,
        recv_lookahead: 1,
    }
}

fn analyze_request() -> AnalyzeRequest {
    AnalyzeRequest {
        model: "bert64".to_string(),
        cluster: "fc".to_string(),
        gpus: 8,
        scheme: "hanayo_w2".to_string(),
        micro_batches: 8,
        micro_batch_size: 1,
        recompute: Recompute::None,
    }
}

/// One test on purpose: every snapshot comes off one server with one
/// deterministic job-id sequence.
#[test]
fn golden_wire_protocol() {
    let server = serve("127.0.0.1:0").expect("bind");
    let client = Client::new(server.addr());

    // --- Synchronous endpoints: request and response bytes.
    let req = serde_json::to_string(&plan_request()).expect("serialise");
    let resp = client.expect_ok("POST", "/v1/plan", Some(&req)).expect("plan");
    check("plan_request.json", &(req + "\n"));
    check("plan_response.json", &resp);

    let req = serde_json::to_string(&tune_request()).expect("serialise");
    let tune_resp = client.expect_ok("POST", "/v1/tune", Some(&req)).expect("tune");
    check("tune_request.json", &(req.clone() + "\n"));
    check("tune_response.json", &tune_resp);

    let req = serde_json::to_string(&simulate_request()).expect("serialise");
    let resp = client.expect_ok("POST", "/v1/simulate", Some(&req)).expect("simulate");
    check("simulate_request.json", &(req + "\n"));
    check("simulate_response.json", &resp);

    let req = serde_json::to_string(&analyze_request()).expect("serialise");
    let resp = client.expect_ok("POST", "/v1/analyze", Some(&req)).expect("analyze");
    check("analyze_request.json", &(req + "\n"));
    check("analyze_response.json", &resp);

    // --- The served tune bytes equal the one-shot CLI code path's bytes.
    let local = run_tune(&tune_request(), &TuneContext::default()).expect("local tune");
    let local = serde_json::to_string(&local).expect("serialise") + "\n";
    assert_eq!(tune_resp, local, "served tune != CLI bytes");

    // --- Job lifecycle: submit (first job on this server: id 1), poll
    // to completion, read the result, then cancel the finished job.
    let req = serde_json::to_string(&tune_request()).expect("serialise");
    let ack = client.expect_ok("POST", "/v1/jobs/tune", Some(&req)).expect("submit");
    check("jobs_submit_ack.json", &ack);

    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = client.job_status(1).expect("status");
        if status.contains("\"state\":\"done\"") {
            check("jobs_status_done.json", &status);
            break;
        }
        assert!(Instant::now() < deadline, "job never finished: {status}");
        std::thread::sleep(Duration::from_millis(20));
    }
    let result = client.job_result(1).expect("result");
    assert_eq!(result.status, 200);
    assert_eq!(result.body, local, "job result != CLI bytes");

    let cancel = client.request("POST", "/v1/jobs/1/cancel", None).expect("cancel exchange");
    assert_eq!(cancel.status, 409, "cancelling a finished job must 409");
    check("jobs_cancel_finished.json", &cancel.body);

    // --- Error shapes.
    let mut bad = tune_request();
    bad.model = "nope".to_string();
    let bad = serde_json::to_string(&bad).expect("serialise");
    let resp = client.request("POST", "/v1/tune", Some(&bad)).expect("exchange");
    assert_eq!(resp.status, 400);
    check("error_bad_model.json", &resp.body);

    let resp = client.request("GET", "/v1/nothing", None).expect("exchange");
    assert_eq!(resp.status, 404);
    check("error_unknown_path.json", &resp.body);

    let resp = client.request("GET", "/v1/tune", None).expect("exchange");
    assert_eq!(resp.status, 405);
    check("error_wrong_method.json", &resp.body);

    // --- /metrics: not golden (process-global registry), but must be
    // grammar-clean and carry the serve families.
    let scrape = client.metrics().expect("scrape");
    hanayo_metrics::expo::validate_prometheus(&scrape).expect("prometheus grammar");
    assert!(scrape.contains("hanayo_serve_requests_total"), "missing request counters");
    assert!(scrape.contains("hanayo_serve_latency_ns"), "missing latency histograms");
    assert!(scrape.contains("hanayo_serve_cache_configs"), "missing cache gauges");

    server.stop();
}

#[test]
fn healthz_answers_and_drain_refuses_new_work() {
    let server = serve("127.0.0.1:0").expect("bind");
    let client = Client::new(server.addr());
    assert_eq!(client.healthz().expect("healthz"), "ok\n");

    // Begin draining via the wire. New work is refused — either with a
    // 503 (connection raced in before the listener closed) or with a
    // connection-level error once the listener is gone. Never a hang.
    client.shutdown().expect("shutdown");
    let body = serde_json::to_string(&plan_request()).unwrap();
    match client.request("POST", "/v1/plan", Some(&body)) {
        Ok(resp) => assert_eq!(resp.status, 503, "draining server must refuse new work"),
        Err(hanayo_serve::ClientError::Connect(_) | hanayo_serve::ClientError::Disconnected) => {}
        Err(other) => panic!("unexpected refusal shape: {other}"),
    }
    server.stop();
    assert!(server.is_drained());
}

#[test]
fn concurrent_identical_tunes_are_deduplicated() {
    let server = serve("127.0.0.1:0").expect("bind");
    let client = Client::new(server.addr());
    let mut req = tune_request();
    req.cluster = "pc".to_string(); // distinct from other tests' sweeps
    let body = serde_json::to_string(&req).expect("serialise");

    let n = 8;
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let body = body.clone();
            std::thread::spawn(move || client.expect_ok("POST", "/v1/tune", Some(&body)))
        })
        .collect();
    let mut bodies = Vec::new();
    for h in handles {
        bodies.push(h.join().expect("join").expect("tune"));
    }
    assert!(bodies.windows(2).all(|w| w[0] == w[1]), "dedup'd responses must be identical");
    assert!(
        server.dedup_joins() > 0,
        "at least one of {n} identical concurrent requests must join the leader"
    );
    server.stop();
}

#[test]
fn cancelling_a_running_job_aborts_the_sweep() {
    let server = serve("127.0.0.1:0").expect("bind");
    let client = Client::new(server.addr());
    // A wide sweep: big enough space that the cancel lands mid-run.
    let req = TuneRequest {
        model: "bert64".to_string(),
        cluster: "tacc".to_string(),
        gpus: 8,
        batch: 32,
        micro_batch_size: 1,
        train_bytes_per_param: 8,
        min_pp: 2,
        waves: vec![1, 2, 4, 8],
        recompute: None,
        wide: true,
        serial: true,
        top: None,
    };
    let body = serde_json::to_string(&req).expect("serialise");
    let ack = client.expect_ok("POST", "/v1/jobs/tune", Some(&body)).expect("submit");
    let id: u64 = ack
        .split("\"job_id\":")
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse().ok())
        .expect("ack carries job_id");

    let cancel = client.request("POST", &format!("/v1/jobs/{id}/cancel"), None).expect("cancel");
    // Either we cancelled it in flight (200) or the sweep beat us (409).
    assert!(matches!(cancel.status, 200 | 409), "unexpected cancel status {}", cancel.status);
    if cancel.status == 200 {
        // The job must reach the cancelled terminal state and report it
        // through both status and result.
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let result = client.job_result(id).expect("result");
            if result.status != 202 {
                assert_eq!(result.status, 409, "cancelled job's result must 409");
                break;
            }
            assert!(Instant::now() < deadline, "cancelled job never settled");
            std::thread::sleep(Duration::from_millis(20));
        }
        let status = client.job_status(id).expect("status");
        assert!(status.contains("\"state\":\"cancelled\""), "status must say cancelled: {status}");
    }
    server.stop();
}

#[test]
fn identical_job_submissions_join_and_cancel_is_interest_counted() {
    let server = serve("127.0.0.1:0").expect("bind");
    let client = Client::new(server.addr());
    let req = TuneRequest {
        model: "bert64".to_string(),
        cluster: "tc".to_string(),
        gpus: 8,
        batch: 32,
        micro_batch_size: 1,
        train_bytes_per_param: 8,
        min_pp: 2,
        waves: vec![1, 2, 4, 8],
        recompute: None,
        wide: true,
        serial: true,
        top: None,
    };
    let body = serde_json::to_string(&req).expect("serialise");
    let first = client.expect_ok("POST", "/v1/jobs/tune", Some(&body)).expect("submit");
    let second = client.expect_ok("POST", "/v1/jobs/tune", Some(&body)).expect("submit");
    let id: u64 = first
        .split("\"job_id\":")
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse().ok())
        .expect("ack carries job_id");
    if second.contains("\"deduplicated\":true") {
        // Both submissions share the job; the first cancel must NOT
        // abort it (one interested submitter remains).
        let cancel = client.request("POST", &format!("/v1/jobs/{id}/cancel"), None).expect("c1");
        if cancel.status == 200 {
            assert!(
                cancel.body.contains("\"aborting\":false"),
                "first of two cancels must not abort: {}",
                cancel.body
            );
        }
    }
    // Drive to a terminal state either way and make sure nothing hangs.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let result = client.job_result(id).expect("result");
        if result.status != 202 {
            break;
        }
        assert!(Instant::now() < deadline, "job never settled");
        std::thread::sleep(Duration::from_millis(20));
    }
    server.stop();
}
