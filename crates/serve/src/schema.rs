//! The planning service's wire schema — and, deliberately, the *only*
//! place the response documents of the one-shot CLIs are built.
//!
//! The `sweep` and `analyze` binaries in `hanayo-repro` construct their
//! JSON output through the builders in this module, and the served
//! endpoints call the very same functions: a served response body is
//! byte-identical to the corresponding CLI's `--compact` stdout by
//! construction, not by parallel maintenance. The load test and the CI
//! smoke job both `diff` the two paths to keep it that way.
//!
//! ## Wire conventions
//!
//! Requests are JSON objects with **every field present** (optional
//! fields are sent as explicit `null`). The vendored serde shim has no
//! attribute support, so there are no defaulted or renamed fields —
//! what the struct declares is exactly what travels.

use hanayo_analyze::{analyze, AnalysisReport};
use hanayo_ckpt::fingerprint_parts;
use hanayo_cluster::topology::{fc_full_nvlink, lonestar6, pc_partial_nvlink, tencent_v100};
use hanayo_cluster::ClusterSpec;
use hanayo_core::action::Schedule;
use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::schedule::build_schedule;
use hanayo_model::{CostTable, ModelConfig, Recompute};
use hanayo_sim::tuner::{tune_serial_with, tune_with, Rejection, TuneContext, TuneOptions, Tuning};
use hanayo_sim::{evaluate_plan, try_simulate, Method, ParallelPlan, PlanResult, SimOptions};
use hanayo_sim::{SimReport, TuneError};
use serde::{Deserialize, Serialize};

/// How a request failed before (or instead of) producing a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The request named an unknown model/cluster/scheme, an invalid
    /// shape, or an unevaluable plan: the caller's fault, HTTP 400.
    BadRequest(String),
    /// The sweep was cancelled at a candidate-batch checkpoint (client
    /// cancel or server drain): HTTP 503 with partial progress.
    Cancelled {
        /// Candidates evaluated when the abort was observed.
        evaluated: usize,
        /// Total candidates the sweep would have evaluated.
        total: usize,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::BadRequest(msg) => write!(f, "{msg}"),
            RunError::Cancelled { evaluated, total } => {
                write!(f, "sweep cancelled after {evaluated}/{total} candidates")
            }
        }
    }
}

impl std::error::Error for RunError {}

// ---------------------------------------------------------------------
// Named-resource resolvers, shared by every endpoint and CLI.
// ---------------------------------------------------------------------

/// Resolve a model name (`--model` / the `model` request field).
pub fn model_for(name: &str) -> Result<ModelConfig, String> {
    match name {
        "bert64" => Ok(ModelConfig::bert64()),
        "gpt128" => Ok(ModelConfig::gpt128()),
        other => Err(format!("unknown model {other} (expected bert64 or gpt128)")),
    }
}

/// Resolve a cluster name (`--cluster` / the `cluster` request field).
pub fn cluster_for(name: &str, gpus: usize) -> Result<ClusterSpec, String> {
    match name {
        "pc" => Ok(pc_partial_nvlink(gpus)),
        "fc" => Ok(fc_full_nvlink(gpus)),
        "tacc" => Ok(lonestar6(gpus)),
        "tc" => Ok(tencent_v100(gpus)),
        other => Err(format!("unknown cluster {other} (expected pc, fc, tacc or tc)")),
    }
}

/// Resolve a scheme name (`--scheme` / the `scheme` request field).
pub fn scheme_for(name: &str) -> Result<Scheme, String> {
    if let Some(waves) = name.strip_prefix("hanayo_w") {
        let waves = waves.parse().map_err(|e| format!("scheme {name}: {e}"))?;
        return Ok(Scheme::Hanayo { waves });
    }
    if let Some(chunks) = name.strip_prefix("interleaved") {
        let chunks = chunks.parse().map_err(|e| format!("scheme {name}: {e}"))?;
        return Ok(Scheme::Interleaved { chunks });
    }
    match name {
        "gpipe" => Ok(Scheme::GPipe),
        "dapple" => Ok(Scheme::Dapple),
        "chimera" => Ok(Scheme::Chimera),
        "pipedream" => Ok(Scheme::AsyncPipeDream),
        other => Err(format!(
            "unknown scheme {other} (expected gpipe, dapple, chimera, pipedream, \
             interleaved<C> or hanayo_w<W>)"
        )),
    }
}

/// Resolve a parallel-plan method name (the `method` request field):
/// `gpipe`, `dapple`, `chimera_wave`, `chimera_native` or `hanayo_w<W>`.
pub fn method_for(name: &str) -> Result<Method, String> {
    if let Some(waves) = name.strip_prefix("hanayo_w") {
        let waves = waves.parse().map_err(|e| format!("method {name}: {e}"))?;
        return Ok(Method::Hanayo { waves });
    }
    match name {
        "gpipe" => Ok(Method::GPipe),
        "dapple" => Ok(Method::Dapple),
        "chimera_wave" => Ok(Method::ChimeraWave),
        "chimera_native" => Ok(Method::ChimeraNative),
        other => Err(format!(
            "unknown method {other} (expected gpipe, dapple, chimera_wave, \
             chimera_native or hanayo_w<W>)"
        )),
    }
}

// ---------------------------------------------------------------------
// plan
// ---------------------------------------------------------------------

/// `POST /v1/plan` — evaluate one explicit parallel plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanRequest {
    /// Model name (`bert64` / `gpt128`).
    pub model: String,
    /// Cluster name (`pc` / `fc` / `tacc` / `tc`).
    pub cluster: String,
    /// Cluster size.
    pub gpus: usize,
    /// Per-parameter training-state bytes (8 = ZeRO-1, 16 = full Adam).
    pub train_bytes_per_param: u32,
    /// Method name — see [`method_for`].
    pub method: String,
    /// Devices per pipeline.
    pub pp: u32,
    /// Data-parallel groups.
    pub dp: u32,
    /// Micro-batches per pipeline per iteration.
    pub micro_batches: u32,
    /// Sequences per micro-batch.
    pub micro_batch_size: u32,
    /// Activation-recomputation mode.
    pub recompute: Recompute,
}

/// The document `plan` answers with.
#[derive(Debug, Serialize)]
pub struct PlanDoc {
    /// Echo of the request's model name.
    pub model: String,
    /// Echo of the request's cluster name.
    pub cluster: String,
    /// Echo of the request's cluster size.
    pub gpus: usize,
    /// The evaluated plan's simulated outcome.
    pub result: PlanResult,
}

/// Evaluate one plan — the single implementation behind the `plan`
/// endpoint and the serve binary's one-shot client mode.
pub fn run_plan(req: &PlanRequest) -> Result<PlanDoc, RunError> {
    let model = model_for(&req.model)
        .map_err(RunError::BadRequest)?
        .with_train_bytes_per_param(req.train_bytes_per_param);
    let cluster = cluster_for(&req.cluster, req.gpus).map_err(RunError::BadRequest)?;
    let method = method_for(&req.method).map_err(RunError::BadRequest)?;
    let plan = ParallelPlan {
        method,
        dp: req.dp,
        pp: req.pp,
        micro_batches: req.micro_batches,
        micro_batch_size: req.micro_batch_size,
        recompute: req.recompute,
    };
    let result = evaluate_plan(&plan, &model, &cluster, SimOptions::default())
        .map_err(|e| RunError::BadRequest(e.to_string()))?;
    Ok(PlanDoc { model: req.model.clone(), cluster: req.cluster.clone(), gpus: req.gpus, result })
}

// ---------------------------------------------------------------------
// tune
// ---------------------------------------------------------------------

/// `POST /v1/tune` and `POST /v1/jobs/tune` — run the auto-tuner sweep.
/// Field-for-field the `sweep` binary's flags, so the two paths cannot
/// diverge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneRequest {
    /// Model name (`bert64` / `gpt128`).
    pub model: String,
    /// Cluster name (`pc` / `fc` / `tacc` / `tc`).
    pub cluster: String,
    /// Cluster size.
    pub gpus: usize,
    /// Global micro-batches per iteration.
    pub batch: u32,
    /// Sequences per micro-batch.
    pub micro_batch_size: u32,
    /// Per-parameter training-state bytes (8 = ZeRO-1, 16 = full Adam).
    pub train_bytes_per_param: u32,
    /// Smallest pipeline width to consider.
    pub min_pp: u32,
    /// Hanayo wave counts to sweep.
    pub waves: Vec<u32>,
    /// Activation-recomputation modes to sweep (`null` keeps the
    /// default, or `--wide`'s both-modes expansion).
    pub recompute: Option<Vec<Recompute>>,
    /// Sweep the widened space (prefetch ablation, lookaheads, merges,
    /// both recompute modes).
    pub wide: bool,
    /// Evaluate candidates one at a time (identical output; the service
    /// uses it to keep one background sweep from monopolising the pool).
    pub serial: bool,
    /// Emit only the N best candidates (`null` = all).
    pub top: Option<usize>,
}

impl TuneRequest {
    /// The tuner inputs this request names. Errors are the caller's
    /// (unknown model/cluster), reported as HTTP 400 by the service.
    pub fn resolve(&self) -> Result<(ModelConfig, ClusterSpec, TuneOptions), String> {
        let model = model_for(&self.model)?.with_train_bytes_per_param(self.train_bytes_per_param);
        let cluster = cluster_for(&self.cluster, self.gpus)?;
        let mut opts =
            TuneOptions { waves: self.waves.clone(), min_pp: self.min_pp, ..Default::default() };
        if self.wide {
            opts = opts.wide();
        }
        // An explicit recompute list overrides wide's both-modes default.
        if let Some(modes) = &self.recompute {
            opts.recompute_modes = modes.clone();
        }
        Ok((model, cluster, opts))
    }

    /// FNV fingerprint of the `(model, cluster)` *configuration* this
    /// request tunes — the key under which the service shares a
    /// [`hanayo_sim::SweepCaches`] across requests. Two requests with
    /// equal keys resolve to identical model and cluster objects, which
    /// is exactly the sharing contract the sweep caches demand; batch
    /// size, waves and the other sweep axes deliberately stay out of the
    /// key so differently-shaped sweeps of the same pair share artifacts.
    pub fn config_key(&self) -> u64 {
        fingerprint_parts(&[
            self.model.as_bytes(),
            self.cluster.as_bytes(),
            &(self.gpus as u64).to_le_bytes(),
            &self.train_bytes_per_param.to_le_bytes(),
        ])
    }
}

/// One row of the ranked table.
#[derive(Debug, Serialize)]
pub struct RankedRow {
    /// 1-based rank.
    pub rank: usize,
    /// Method display name.
    pub method: String,
    /// Figure label (`G`, `D`, `H-2`, ...).
    pub label: String,
    /// Devices per pipeline.
    pub pp: u32,
    /// Data-parallel groups.
    pub dp: u32,
    /// Micro-batches per pipeline per iteration.
    pub micro_batches: u32,
    /// Sequences per micro-batch.
    pub micro_batch_size: u32,
    /// Was §4.2 receive prefetching on?
    pub prefetch: bool,
    /// Receive-lookahead depth the candidate was simulated with.
    pub recv_lookahead: usize,
    /// Activation-recomputation mode label.
    pub recompute: String,
    /// Sequences per second across the whole cluster.
    pub throughput_seq_per_s: f64,
    /// End-to-end iteration time.
    pub iteration_time_s: f64,
    /// Pipeline time excluding the all-reduce.
    pub pipeline_time_s: f64,
    /// Flush-time gradient all-reduce.
    pub allreduce_time_s: f64,
    /// Bubble ratio of the first pipeline group.
    pub bubble_ratio: f64,
    /// Highest per-device peak, GB.
    pub peak_gb: f64,
}

/// A candidate that simulated fine but exceeded device memory.
#[derive(Debug, Serialize)]
pub struct OomRow {
    /// Method display name.
    pub method: String,
    /// Devices per pipeline.
    pub pp: u32,
    /// Data-parallel groups.
    pub dp: u32,
    /// Micro-batches per pipeline per iteration.
    pub micro_batches: u32,
    /// Sequences per micro-batch.
    pub micro_batch_size: u32,
    /// Was §4.2 receive prefetching on?
    pub prefetch: bool,
    /// Activation-recomputation mode label.
    pub recompute: String,
    /// Highest per-device peak, GB.
    pub peak_gb: f64,
    /// Capacity of the most overloaded device, GB.
    pub capacity_gb: f64,
    /// Global ranks of the devices that overflowed.
    pub oom_devices: Vec<usize>,
}

/// A candidate that could not be evaluated at all.
#[derive(Debug, Serialize)]
pub struct InvalidRow {
    /// Method display name.
    pub method: String,
    /// Devices per pipeline.
    pub pp: u32,
    /// Data-parallel groups.
    pub dp: u32,
    /// Activation-recomputation mode label.
    pub recompute: String,
    /// Human-readable rejection reason.
    pub reason: String,
}

/// The document `tune` answers with — identical to the `sweep` binary's
/// output (the binary builds it through [`build_sweep_table`] too).
#[derive(Debug, Serialize)]
pub struct SweepTable {
    /// Model name.
    pub model: String,
    /// Cluster name.
    pub cluster: String,
    /// Cluster size.
    pub devices: usize,
    /// Global micro-batches per iteration.
    pub global_micro_batches: u32,
    /// Sequences per micro-batch.
    pub micro_batch_size: u32,
    /// Was the widened space swept?
    pub wide: bool,
    /// Recompute-mode labels actually swept.
    pub recompute_modes: Vec<String>,
    /// Total candidates evaluated (ranked + rejected).
    pub candidates_evaluated: usize,
    /// Feasible candidates, best first.
    pub ranked: Vec<RankedRow>,
    /// Memory rejections.
    pub rejected_oom: Vec<OomRow>,
    /// Shape rejections.
    pub rejected_invalid_shape: Vec<InvalidRow>,
}

/// Render a [`Tuning`] into the wire/CLI document. Shared verbatim by the
/// `sweep` binary and the `tune` endpoints.
pub fn build_sweep_table(
    req: &TuneRequest,
    tuning: &Tuning,
    cluster: &ClusterSpec,
    model: &ModelConfig,
    modes: &[Recompute],
) -> SweepTable {
    let gb = |bytes: u64| bytes as f64 / 1e9;
    let ranked = tuning
        .ranked
        .iter()
        .take(req.top.unwrap_or(usize::MAX))
        .enumerate()
        .map(|(i, c)| RankedRow {
            rank: i + 1,
            method: c.plan.method.to_string(),
            label: c.plan.method.label(),
            pp: c.plan.pp,
            dp: c.plan.dp,
            micro_batches: c.plan.micro_batches,
            micro_batch_size: c.plan.micro_batch_size,
            prefetch: c.sim.prefetch,
            recv_lookahead: c.sim.recv_lookahead,
            recompute: c.plan.recompute.label().to_string(),
            throughput_seq_per_s: c.result.throughput,
            iteration_time_s: c.result.iteration_time,
            pipeline_time_s: c.result.pipeline_time,
            allreduce_time_s: c.result.allreduce_time,
            bubble_ratio: c.result.bubble_ratio,
            peak_gb: gb(c.result.peak_mem.iter().copied().max().unwrap_or(0)),
        })
        .collect();
    let mut rejected_oom = Vec::new();
    let mut rejected_invalid_shape = Vec::new();
    for r in &tuning.rejected {
        match r {
            Rejection::Oom { plan, sim, peak_bytes, capacity_bytes, devices } => {
                rejected_oom.push(OomRow {
                    method: plan.method.to_string(),
                    pp: plan.pp,
                    dp: plan.dp,
                    micro_batches: plan.micro_batches,
                    micro_batch_size: plan.micro_batch_size,
                    prefetch: sim.prefetch,
                    recompute: plan.recompute.label().to_string(),
                    peak_gb: gb(*peak_bytes),
                    capacity_gb: gb(*capacity_bytes),
                    oom_devices: devices.clone(),
                })
            }
            Rejection::InvalidShape { plan, reason, .. } => {
                rejected_invalid_shape.push(InvalidRow {
                    method: plan.method.to_string(),
                    pp: plan.pp,
                    dp: plan.dp,
                    recompute: plan.recompute.label().to_string(),
                    reason: reason.clone(),
                })
            }
        }
    }
    SweepTable {
        model: model.name.clone(),
        cluster: cluster.name.clone(),
        devices: cluster.len(),
        global_micro_batches: req.batch,
        micro_batch_size: req.micro_batch_size,
        wide: req.wide,
        recompute_modes: modes.iter().map(|m| m.label().to_string()).collect(),
        candidates_evaluated: tuning.ranked.len() + tuning.rejected.len(),
        ranked,
        rejected_oom,
        rejected_invalid_shape,
    }
}

/// Run one tune request end to end. The context carries the service's
/// shared caches, abort flag and progress counters; a default context
/// reproduces the one-shot CLI exactly, so the served body and the CLI's
/// `--compact` stdout are the same bytes.
pub fn run_tune(req: &TuneRequest, ctx: &TuneContext) -> Result<SweepTable, RunError> {
    let (model, cluster, opts) = req.resolve().map_err(RunError::BadRequest)?;
    let run = if req.serial { tune_serial_with } else { tune_with };
    let tuning = run(&model, &cluster, req.batch, req.micro_batch_size, &opts, ctx).map_err(
        |TuneError::Cancelled { evaluated, total }| RunError::Cancelled { evaluated, total },
    )?;
    Ok(build_sweep_table(req, &tuning, &cluster, &model, &opts.recompute_variants()))
}

// ---------------------------------------------------------------------
// simulate
// ---------------------------------------------------------------------

/// `POST /v1/simulate` — run one schedule through the discrete-event
/// engine and return its report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulateRequest {
    /// Model name (`bert64` / `gpt128`).
    pub model: String,
    /// Cluster name (`pc` / `fc` / `tacc` / `tc`).
    pub cluster: String,
    /// Cluster size (= pipeline width).
    pub gpus: usize,
    /// Scheme name — see [`scheme_for`].
    pub scheme: String,
    /// Micro-batches per iteration.
    pub micro_batches: u32,
    /// Sequences per micro-batch.
    pub micro_batch_size: u32,
    /// Activation-recomputation mode.
    pub recompute: Recompute,
    /// §4.2 receive prefetching.
    pub prefetch: bool,
    /// Receive-lookahead depth.
    pub recv_lookahead: usize,
}

/// The document `simulate` answers with.
#[derive(Debug, Serialize)]
pub struct SimulateDoc {
    /// Echo of the request's model name.
    pub model: String,
    /// Echo of the request's cluster name.
    pub cluster: String,
    /// Echo of the request's cluster size.
    pub gpus: usize,
    /// Echo of the request's scheme name.
    pub scheme: String,
    /// Echo of the request's micro-batch count.
    pub micro_batches: u32,
    /// Echo of the request's micro-batch size.
    pub micro_batch_size: u32,
    /// Echo of the request's recompute mode.
    pub recompute: Recompute,
    /// The engine's report.
    pub report: SimReport,
}

/// Simulate one schedule — the single implementation behind the
/// `simulate` endpoint and the serve binary's one-shot client mode.
pub fn run_simulate(req: &SimulateRequest) -> Result<SimulateDoc, RunError> {
    let model = model_for(&req.model).map_err(RunError::BadRequest)?;
    let cluster = cluster_for(&req.cluster, req.gpus).map_err(RunError::BadRequest)?;
    let scheme = scheme_for(&req.scheme).map_err(RunError::BadRequest)?;
    let cfg = PipelineConfig::new(req.gpus as u32, req.micro_batches, scheme)
        .map_err(|e| RunError::BadRequest(format!("invalid pipeline shape: {e}")))?;
    let schedule = build_schedule(&cfg)
        .map_err(|e| RunError::BadRequest(format!("building {}: {e}", req.scheme)))?;
    let cost = CostTable::build_with(&model, cfg.stages(), req.micro_batch_size, req.recompute);
    let opts = SimOptions {
        prefetch: req.prefetch,
        recv_lookahead: req.recv_lookahead,
        ..SimOptions::default()
    };
    let report = try_simulate(&schedule, &cost, &cluster, opts)
        .map_err(|e| RunError::BadRequest(format!("simulating {}: {e}", req.scheme)))?;
    Ok(SimulateDoc {
        model: req.model.clone(),
        cluster: req.cluster.clone(),
        gpus: req.gpus,
        scheme: req.scheme.clone(),
        micro_batches: req.micro_batches,
        micro_batch_size: req.micro_batch_size,
        recompute: req.recompute,
        report,
    })
}

// ---------------------------------------------------------------------
// analyze
// ---------------------------------------------------------------------

/// `POST /v1/analyze` — static schedule verification, no simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyzeRequest {
    /// Model name (`bert64` / `gpt128`).
    pub model: String,
    /// Cluster name (`pc` / `fc` / `tacc` / `tc`).
    pub cluster: String,
    /// Cluster size (= pipeline width).
    pub gpus: usize,
    /// Scheme name — see [`scheme_for`].
    pub scheme: String,
    /// Micro-batches per iteration.
    pub micro_batches: u32,
    /// Sequences per micro-batch.
    pub micro_batch_size: u32,
    /// Activation-recomputation mode.
    pub recompute: Recompute,
}

/// The document `analyze` answers with — identical to the `analyze`
/// binary's output (the binary builds it through [`run_analyze`] too).
#[derive(Debug, Serialize, Deserialize)]
pub struct AnalyzeDoc {
    /// Model name as accepted by `--model` (rebuilds the cost model).
    pub model: String,
    /// Cluster name as accepted by `--cluster`.
    pub cluster: String,
    /// Cluster size (= pipeline width).
    pub gpus: usize,
    /// Scheme name as accepted by `--scheme`.
    pub scheme: String,
    /// Micro-batches per iteration.
    pub micro_batches: u32,
    /// Sequences per micro-batch.
    pub micro_batch_size: u32,
    /// Activation recomputation mode the cost table was built with.
    pub recompute: Recompute,
    /// The full static-analysis report the claims above are read from.
    pub report: AnalysisReport,
}

/// Rebuild the schedule, cost table and cluster a document describes —
/// the report must be a pure function of these three. Used by the
/// `analyze` binary's `--validate` mode.
pub fn rebuild_analyze(doc: &AnalyzeDoc) -> Result<(Schedule, CostTable, ClusterSpec), String> {
    let model = model_for(&doc.model)?;
    let cluster = cluster_for(&doc.cluster, doc.gpus)?;
    let scheme = scheme_for(&doc.scheme)?;
    let cfg = PipelineConfig::new(doc.gpus as u32, doc.micro_batches, scheme)
        .map_err(|e| format!("invalid pipeline shape: {e}"))?;
    let schedule = build_schedule(&cfg).map_err(|e| format!("building {}: {e}", doc.scheme))?;
    let cost = CostTable::build_with(&model, cfg.stages(), doc.micro_batch_size, doc.recompute);
    Ok((schedule, cost, cluster))
}

/// Statically analyze one schedule — the single implementation behind the
/// `analyze` endpoint and the `analyze` binary.
pub fn run_analyze(req: &AnalyzeRequest) -> Result<AnalyzeDoc, RunError> {
    let model = model_for(&req.model).map_err(RunError::BadRequest)?;
    let cluster = cluster_for(&req.cluster, req.gpus).map_err(RunError::BadRequest)?;
    let scheme = scheme_for(&req.scheme).map_err(RunError::BadRequest)?;
    let cfg = PipelineConfig::new(req.gpus as u32, req.micro_batches, scheme)
        .map_err(|e| RunError::BadRequest(format!("invalid pipeline shape: {e}")))?;
    let schedule = build_schedule(&cfg)
        .map_err(|e| RunError::BadRequest(format!("building {}: {e}", req.scheme)))?;
    let cost = CostTable::build_with(&model, cfg.stages(), req.micro_batch_size, req.recompute);
    let report = analyze(&schedule, &cost, &cluster).map_err(|e| {
        RunError::BadRequest(format!("static analysis rejected {}: {e}", req.scheme))
    })?;
    Ok(AnalyzeDoc {
        model: req.model.clone(),
        cluster: req.cluster.clone(),
        gpus: req.gpus,
        scheme: req.scheme.clone(),
        micro_batches: req.micro_batches,
        micro_batch_size: req.micro_batch_size,
        recompute: req.recompute,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tune_request() -> TuneRequest {
        TuneRequest {
            model: "bert64".into(),
            cluster: "fc".into(),
            gpus: 8,
            batch: 8,
            micro_batch_size: 1,
            train_bytes_per_param: 8,
            min_pp: 4,
            waves: vec![1, 2],
            recompute: None,
            wide: false,
            serial: false,
            top: Some(3),
        }
    }

    #[test]
    fn requests_round_trip_through_json() {
        let req = tune_request();
        let json = serde_json::to_string(&req).expect("serialize");
        let back: TuneRequest = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(req, back);
    }

    #[test]
    fn config_key_ignores_sweep_shape_but_not_config() {
        let a = tune_request();
        let mut b = tune_request();
        b.batch = 16;
        b.waves = vec![4];
        b.top = None;
        assert_eq!(a.config_key(), b.config_key(), "sweep axes must not split the cache");
        let mut c = tune_request();
        c.gpus = 16;
        assert_ne!(a.config_key(), c.config_key(), "a different cluster must split the cache");
        let mut d = tune_request();
        d.train_bytes_per_param = 16;
        assert_ne!(a.config_key(), d.config_key(), "a different model must split the cache");
    }

    #[test]
    fn run_tune_rejects_unknown_model() {
        let mut req = tune_request();
        req.model = "nope".into();
        match run_tune(&req, &TuneContext::default()) {
            Err(RunError::BadRequest(msg)) => assert!(msg.contains("unknown model")),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn run_tune_matches_the_tuner_directly() {
        let req = tune_request();
        let table = run_tune(&req, &TuneContext::default()).expect("tunes");
        assert!(table.candidates_evaluated > 0);
        assert!(table.ranked.len() <= 3, "top=3 must cap the ranked rows");
        // The table carries the model's display name, as the CLI always has.
        assert_eq!(table.model, ModelConfig::bert64().name);
        assert_eq!(table.devices, 8);
    }

    #[test]
    fn run_simulate_and_analyze_agree_on_peaks() {
        let sim = run_simulate(&SimulateRequest {
            model: "bert64".into(),
            cluster: "fc".into(),
            gpus: 8,
            scheme: "hanayo_w2".into(),
            micro_batches: 8,
            micro_batch_size: 1,
            recompute: Recompute::None,
            prefetch: true,
            recv_lookahead: 1,
        })
        .expect("simulates");
        let stat = run_analyze(&AnalyzeRequest {
            model: "bert64".into(),
            cluster: "fc".into(),
            gpus: 8,
            scheme: "hanayo_w2".into(),
            micro_batches: 8,
            micro_batch_size: 1,
            recompute: Recompute::None,
        })
        .expect("analyzes");
        assert_eq!(stat.report.peak_mem, sim.report.peak_mem);
    }

    #[test]
    fn run_plan_evaluates_an_explicit_plan() {
        let doc = run_plan(&PlanRequest {
            model: "bert64".into(),
            cluster: "fc".into(),
            gpus: 8,
            train_bytes_per_param: 8,
            method: "hanayo_w2".into(),
            pp: 8,
            dp: 1,
            micro_batches: 8,
            micro_batch_size: 1,
            recompute: Recompute::None,
        })
        .expect("evaluates");
        assert!(doc.result.throughput > 0.0);
    }
}
