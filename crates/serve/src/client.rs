//! A small blocking HTTP client for the planning service — connection
//! per request, std-library-only, with *typed* failures so callers can
//! tell "the server refused" (status + body) from "the server went
//! away mid-request" ([`ClientError::Disconnected`], what the shutdown
//! regression test asserts).

use crate::schema::{AnalyzeRequest, PlanRequest, SimulateRequest, TuneRequest};
use serde::Serialize;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Why a request did not return `2xx` bytes.
#[derive(Debug)]
pub enum ClientError {
    /// TCP connect failed — the server is not (or no longer) listening.
    Connect(std::io::Error),
    /// The connection died mid-exchange: the server closed or was
    /// killed between our request and its full response.
    Disconnected,
    /// The server answered with a non-2xx status; the body explains.
    Http {
        /// HTTP status code.
        status: u16,
        /// Response body (the service's JSON error document).
        body: String,
    },
    /// The bytes on the wire were not a valid HTTP/1.1 response.
    Protocol(String),
    /// A local socket failure unrelated to the peer closing.
    Io(std::io::Error),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Disconnected => write!(f, "server disconnected mid-request"),
            ClientError::Http { status, body } => write!(f, "http {status}: {}", body.trim_end()),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

fn disconnected_or_io(e: std::io::Error) -> ClientError {
    match e.kind() {
        std::io::ErrorKind::UnexpectedEof
        | std::io::ErrorKind::ConnectionReset
        | std::io::ErrorKind::ConnectionAborted
        | std::io::ErrorKind::BrokenPipe => ClientError::Disconnected,
        _ => ClientError::Io(e),
    }
}

/// One parsed response.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// The body, decoded as UTF-8.
    pub body: String,
}

/// A handle on one server address. Stateless (connection per request),
/// so it is `Clone` and freely shared across load-test threads.
#[derive(Debug, Clone, Copy)]
pub struct Client {
    addr: SocketAddr,
    /// Per-socket-operation timeout.
    pub timeout: Duration,
}

impl Client {
    /// A client for the given address.
    pub fn new(addr: SocketAddr) -> Client {
        Client { addr, timeout: Duration::from_secs(120) }
    }

    /// Issue one request; returns the raw status + body for any
    /// well-formed HTTP exchange (including 4xx/5xx).
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<ClientResponse, ClientError> {
        let stream = TcpStream::connect(self.addr).map_err(ClientError::Connect)?;
        stream.set_read_timeout(Some(self.timeout)).map_err(ClientError::Io)?;
        stream.set_write_timeout(Some(self.timeout)).map_err(ClientError::Io)?;
        let mut writer = stream.try_clone().map_err(ClientError::Io)?;
        let payload = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: hanayo-serve\r\ncontent-type: application/json\r\n\
             content-length: {}\r\nconnection: close\r\n\r\n",
            payload.len(),
        );
        writer.write_all(head.as_bytes()).map_err(disconnected_or_io)?;
        writer.write_all(payload.as_bytes()).map_err(disconnected_or_io)?;
        writer.flush().map_err(disconnected_or_io)?;

        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        let n = reader.read_line(&mut status_line).map_err(disconnected_or_io)?;
        if n == 0 {
            return Err(ClientError::Disconnected);
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad status line {status_line:?}")))?;

        let mut length: Option<usize> = None;
        loop {
            let mut header = String::new();
            let n = reader.read_line(&mut header).map_err(disconnected_or_io)?;
            if n == 0 {
                return Err(ClientError::Disconnected);
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    length = value.trim().parse().ok();
                }
            }
        }
        let length = length
            .ok_or_else(|| ClientError::Protocol("response without content-length".to_string()))?;
        let mut body = vec![0u8; length];
        reader.read_exact(&mut body).map_err(disconnected_or_io)?;
        let body = String::from_utf8(body)
            .map_err(|e| ClientError::Protocol(format!("non-utf8 body: {e}")))?;
        Ok(ClientResponse { status, body })
    }

    /// Issue a request and demand a 2xx, returning just the body.
    pub fn expect_ok(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<String, ClientError> {
        let resp = self.request(method, path, body)?;
        if (200..300).contains(&resp.status) {
            Ok(resp.body)
        } else {
            Err(ClientError::Http { status: resp.status, body: resp.body })
        }
    }

    fn post_doc<T: Serialize>(&self, path: &str, req: &T) -> Result<String, ClientError> {
        let body = serde_json::to_string(req)
            .map_err(|e| ClientError::Protocol(format!("serialising request: {e}")))?;
        self.expect_ok("POST", path, Some(&body))
    }

    /// `GET /healthz`.
    pub fn healthz(&self) -> Result<String, ClientError> {
        self.expect_ok("GET", "/healthz", None)
    }

    /// `GET /metrics` — Prometheus text.
    pub fn metrics(&self) -> Result<String, ClientError> {
        self.expect_ok("GET", "/metrics", None)
    }

    /// `POST /v1/plan`.
    pub fn plan(&self, req: &PlanRequest) -> Result<String, ClientError> {
        self.post_doc("/v1/plan", req)
    }

    /// `POST /v1/tune` (synchronous; deduplicated server-side).
    pub fn tune(&self, req: &TuneRequest) -> Result<String, ClientError> {
        self.post_doc("/v1/tune", req)
    }

    /// `POST /v1/simulate`.
    pub fn simulate(&self, req: &SimulateRequest) -> Result<String, ClientError> {
        self.post_doc("/v1/simulate", req)
    }

    /// `POST /v1/analyze`.
    pub fn analyze(&self, req: &AnalyzeRequest) -> Result<String, ClientError> {
        self.post_doc("/v1/analyze", req)
    }

    /// `POST /v1/jobs/tune` — returns the raw `202` ack body
    /// (`{"job_id":N,...}`).
    pub fn submit_tune_job(&self, req: &TuneRequest) -> Result<String, ClientError> {
        let body = serde_json::to_string(req)
            .map_err(|e| ClientError::Protocol(format!("serialising request: {e}")))?;
        self.expect_ok("POST", "/v1/jobs/tune", Some(&body))
    }

    /// `GET /v1/jobs/<id>` — the status document.
    pub fn job_status(&self, id: u64) -> Result<String, ClientError> {
        self.expect_ok("GET", &format!("/v1/jobs/{id}"), None)
    }

    /// `GET /v1/jobs/<id>/result` — the raw exchange (200 done, 202
    /// running, 409 cancelled, 500 failed).
    pub fn job_result(&self, id: u64) -> Result<ClientResponse, ClientError> {
        self.request("GET", &format!("/v1/jobs/{id}/result"), None)
    }

    /// `POST /v1/jobs/<id>/cancel`.
    pub fn cancel_job(&self, id: u64) -> Result<String, ClientError> {
        self.expect_ok("POST", &format!("/v1/jobs/{id}/cancel"), None)
    }

    /// `POST /shutdown` — ask the server to drain and stop.
    pub fn shutdown(&self) -> Result<String, ClientError> {
        self.expect_ok("POST", "/shutdown", None)
    }
}
