//! SIGINT/SIGTERM → a flag, with no libc crate: the two symbols the
//! handler needs (`signal(2)` and the signal numbers) are stable POSIX
//! ABI, declared here directly. The handler itself only stores to an
//! `AtomicBool` — async-signal-safe by construction.

#[cfg(unix)]
mod unix {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TRIGGERED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        TRIGGERED.store(true, Ordering::SeqCst);
    }

    /// Route SIGINT and SIGTERM to the flag. Idempotent.
    pub fn install() {
        // SAFETY: `signal` is the POSIX call of that name; the handler
        // only performs an atomic store, which is async-signal-safe.
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    /// Has a termination signal arrived since [`install`]?
    pub fn triggered() -> bool {
        TRIGGERED.load(Ordering::SeqCst)
    }
}

#[cfg(unix)]
pub use unix::{install, triggered};

#[cfg(not(unix))]
mod fallback {
    /// No signal routing off unix; the flag simply never trips and the
    /// server stops via `/shutdown` or [`crate::server::Server::stop`].
    pub fn install() {}

    /// Always false off unix.
    pub fn triggered() -> bool {
        false
    }
}

#[cfg(not(unix))]
pub use fallback::{install, triggered};
