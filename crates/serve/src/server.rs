//! The resident planning host: a TCP accept loop, thread-per-connection
//! HTTP handling, the endpoint router, and graceful drain.
//!
//! ## Endpoints
//!
//! | method | path                  | semantics                                     |
//! |--------|-----------------------|-----------------------------------------------|
//! | GET    | `/healthz`            | liveness, `ok`                                |
//! | GET    | `/metrics`            | Prometheus text exposition                    |
//! | POST   | `/v1/plan`            | evaluate one explicit plan                    |
//! | POST   | `/v1/tune`            | synchronous sweep (deduplicated, cached)      |
//! | POST   | `/v1/simulate`        | simulate one schedule                         |
//! | POST   | `/v1/analyze`         | static schedule verification                  |
//! | POST   | `/v1/jobs/tune`       | background sweep → `202 {job_id}`             |
//! | GET    | `/v1/jobs/<id>`       | job status (state + progress counters)        |
//! | GET    | `/v1/jobs/<id>/result`| `200` body / `202` still running / `409`/`500`|
//! | POST   | `/v1/jobs/<id>/cancel`| drop interest; abort at zero interest         |
//! | POST   | `/shutdown`           | begin draining, then stop                     |
//!
//! Success bodies are byte-identical to the corresponding one-shot CLI's
//! `--compact` stdout — both are produced by the same
//! [`crate::schema`] builders and both end in `\n`.

use crate::http::{read_request, write_response, ReadError, Request, Response, READ_TIMEOUT};
use crate::jobs::{JobRegistry, JobState};
use crate::schema::{
    run_analyze, run_plan, run_simulate, run_tune, AnalyzeRequest, PlanRequest, RunError,
    SimulateRequest, TuneRequest,
};
use crate::state::{Join, ServeState};
use hanayo_core::abort::AbortFlag;
use hanayo_metrics::{counter_add, monotonic_nanos, observe, NANOS_BUCKETS};
use hanayo_sim::TuneContext;
use serde::Serialize;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Everything the accept loop, connection threads and job workers share.
pub(crate) struct Shared {
    pub state: ServeState,
    pub jobs: JobRegistry,
    /// Tripped once: the accept loop stops, connections close after the
    /// in-flight exchange, and every running sweep aborts at its next
    /// checkpoint.
    pub shutdown: Arc<AbortFlag>,
}

impl Shared {
    fn new() -> Shared {
        Shared {
            state: ServeState::default(),
            jobs: JobRegistry::default(),
            shutdown: Arc::new(AbortFlag::new()),
        }
    }

    /// Flip into draining mode: refuse new work, abort running sweeps.
    fn begin_shutdown(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
        self.shutdown.trip();
        self.jobs.abort_all();
    }
}

#[derive(Serialize)]
struct ErrorDoc {
    error: String,
}

/// A one-line JSON error body (newline-terminated like every body).
fn error_body(msg: &str) -> String {
    match serde_json::to_string(&ErrorDoc { error: msg.to_string() }) {
        Ok(s) => s + "\n",
        Err(_) => "{\"error\":\"unserialisable error\"}\n".to_string(),
    }
}

fn bad_request(msg: &str) -> Response {
    Response::json(400, error_body(msg))
}

/// Render a successful schema document: compact JSON + the CLI's
/// trailing newline.
fn doc_body<T: Serialize>(doc: &T) -> (u16, String) {
    match serde_json::to_string(doc) {
        Ok(s) => (200, s + "\n"),
        Err(e) => (500, error_body(&format!("serialising the response failed: {e}"))),
    }
}

fn outcome_body<T: Serialize>(outcome: Result<T, RunError>) -> (u16, String) {
    match outcome {
        Ok(doc) => doc_body(&doc),
        Err(RunError::BadRequest(msg)) => (400, error_body(&msg)),
        Err(e @ RunError::Cancelled { .. }) => (503, error_body(&e.to_string())),
    }
}

/// Parse a JSON request body into a typed request.
fn parse_body<T: serde::Deserialize>(body: &[u8]) -> Result<T, Response> {
    let text = std::str::from_utf8(body)
        .map_err(|e| bad_request(&format!("request body is not utf-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| bad_request(&format!("parsing request: {e}")))
}

/// The static label a request is accounted under in the metrics.
fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "healthz",
        "/metrics" => "metrics",
        "/v1/plan" => "plan",
        "/v1/tune" => "tune",
        "/v1/simulate" => "simulate",
        "/v1/analyze" => "analyze",
        "/v1/jobs/tune" => "jobs_submit",
        "/shutdown" => "shutdown",
        p if p.starts_with("/v1/jobs/") && p.ends_with("/cancel") => "jobs_cancel",
        p if p.starts_with("/v1/jobs/") && p.ends_with("/result") => "jobs_result",
        p if p.starts_with("/v1/jobs/") => "jobs_status",
        _ => "other",
    }
}

/// If the leader of an identical-request group dies without publishing,
/// its followers would wait forever; this guard turns that into a 500.
struct PublishGuard<'a> {
    shared: &'a Shared,
    key: &'a str,
    armed: bool,
}

impl Drop for PublishGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.shared
                .state
                .inflight
                .publish(self.key, (500, error_body("the leading request aborted")));
        }
    }
}

/// Synchronous `tune`: canonicalise the request, join or lead the
/// in-flight group, compute behind the shared per-configuration caches.
fn handle_tune(shared: &Shared, body: &[u8]) -> Response {
    let req: TuneRequest = match parse_body(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let key = match serde_json::to_string(&req) {
        Ok(k) => k,
        Err(e) => return bad_request(&format!("canonicalising request: {e}")),
    };
    match shared.state.inflight.join(&key) {
        Join::Joined(status, body) => Response::json(status, body),
        Join::Leader => {
            let mut guard = PublishGuard { shared, key: &key, armed: true };
            let ctx = TuneContext {
                caches: Some(shared.state.caches_for(req.config_key())),
                abort: Some(Arc::clone(&shared.shutdown)),
                progress: None,
                checkpoint_every: 0,
            };
            let (status, body) = outcome_body(run_tune(&req, &ctx));
            guard.armed = false;
            drop(guard);
            shared.state.inflight.publish(&key, (status, body.clone()));
            Response::json(status, body)
        }
    }
}

/// Acknowledgement for a background-job submission.
#[derive(Serialize)]
struct JobAck {
    job_id: u64,
    state: String,
    /// True when an identical running job absorbed this submission.
    deduplicated: bool,
}

/// `POST /v1/jobs/tune`: mint (or join) a background sweep job.
fn handle_job_submit(shared: &Arc<Shared>, body: &[u8]) -> Response {
    let req: TuneRequest = match parse_body(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let key = match serde_json::to_string(&req) {
        Ok(k) => k,
        Err(e) => return bad_request(&format!("canonicalising request: {e}")),
    };
    let sub = shared.jobs.submit(&key);
    if sub.fresh {
        let worker_shared = Arc::clone(shared);
        let job = Arc::clone(&sub.job);
        let spawned =
            thread::Builder::new().name(format!("hanayo-serve-job-{}", job.id)).spawn(move || {
                let ctx = TuneContext {
                    caches: Some(worker_shared.state.caches_for(req.config_key())),
                    abort: Some(Arc::clone(&job.abort)),
                    progress: Some(Arc::clone(&job.progress)),
                    checkpoint_every: 0,
                };
                let state = match run_tune(&req, &ctx) {
                    Ok(table) => match serde_json::to_string(&table) {
                        Ok(s) => JobState::Done(s + "\n"),
                        Err(e) => {
                            JobState::Failed(error_body(&format!("serialising the table: {e}")))
                        }
                    },
                    Err(RunError::BadRequest(msg)) => JobState::Failed(error_body(&msg)),
                    Err(RunError::Cancelled { .. }) => JobState::Cancelled,
                };
                let outcome = match &state {
                    JobState::Done(_) => "done",
                    JobState::Failed(_) => "failed",
                    _ => "cancelled",
                };
                counter_add("hanayo_serve_jobs_total", &[("outcome", outcome)], 1);
                job.finish(state);
                worker_shared.jobs.retire_key(&job.key, job.id);
            });
        match spawned {
            Ok(handle) => shared.jobs.track_worker(handle),
            Err(e) => {
                sub.job.finish(JobState::Failed(error_body(&format!("spawning worker: {e}"))));
                shared.jobs.retire_key(&sub.job.key, sub.job.id);
                return Response::json(500, error_body(&format!("spawning worker: {e}")));
            }
        }
    }
    let ack = JobAck { job_id: sub.job.id, state: "running".to_string(), deduplicated: !sub.fresh };
    let (_, body) = doc_body(&ack);
    Response::json(202, body)
}

/// Acknowledgement for a job cancellation.
#[derive(Serialize)]
struct CancelAck {
    job_id: u64,
    /// Did this cancel actually initiate the abort (interest hit zero)?
    aborting: bool,
}

/// `GET`/`POST /v1/jobs/...` routing.
fn handle_jobs(shared: &Shared, req: &Request) -> Response {
    let rest = &req.path["/v1/jobs/".len()..];
    let (id_str, action) = match rest.strip_suffix("/result") {
        Some(id) => (id, "result"),
        None => match rest.strip_suffix("/cancel") {
            Some(id) => (id, "cancel"),
            None => (rest, "status"),
        },
    };
    let id: u64 = match id_str.parse() {
        Ok(id) => id,
        Err(_) => return Response::json(404, error_body(&format!("bad job id {id_str}"))),
    };
    let job = match shared.jobs.get(id) {
        Some(job) => job,
        None => return Response::json(404, error_body(&format!("no job {id}"))),
    };
    match (req.method.as_str(), action) {
        ("GET", "status") => {
            let (status, body) = doc_body(&job.status());
            Response::json(status, body)
        }
        ("GET", "result") => match job.state() {
            JobState::Done(body) => Response::json(200, body),
            JobState::Running => {
                let (_, body) = doc_body(&job.status());
                Response::json(202, body)
            }
            JobState::Cancelled => Response::json(409, error_body(&format!("job {id} cancelled"))),
            JobState::Failed(body) => {
                Response { status: 500, content_type: "application/json", body: body.into_bytes() }
            }
        },
        ("POST", "cancel") => {
            if job.state() != JobState::Running {
                return Response::json(409, error_body(&format!("job {id} already finished")));
            }
            let aborting = shared.jobs.cancel(&job);
            let (status, body) = doc_body(&CancelAck { job_id: id, aborting });
            Response::json(status, body)
        }
        _ => Response::json(405, error_body("method not allowed")),
    }
}

/// Route one request. `Accepting new work` is refused while draining;
/// reads keep answering so clients can collect results during the drain.
fn dispatch(shared: &Arc<Shared>, req: &Request) -> Response {
    let draining = shared.state.is_draining();
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n".to_string()),
        ("GET", "/metrics") => {
            shared.state.export_cache_gauges();
            let text = hanayo_metrics::expo::prometheus(&hanayo_metrics::snapshot());
            Response::text(200, text)
        }
        ("POST", "/shutdown") => {
            shared.begin_shutdown();
            Response::json(200, "{\"draining\":true}\n".to_string())
        }
        ("POST", _) if draining => {
            Response::json(503, error_body("draining: not accepting new work"))
        }
        ("POST", "/v1/plan") => match parse_body::<PlanRequest>(&req.body) {
            Ok(r) => {
                let (status, body) = outcome_body(run_plan(&r));
                Response::json(status, body)
            }
            Err(resp) => resp,
        },
        ("POST", "/v1/simulate") => match parse_body::<SimulateRequest>(&req.body) {
            Ok(r) => {
                let (status, body) = outcome_body(run_simulate(&r));
                Response::json(status, body)
            }
            Err(resp) => resp,
        },
        ("POST", "/v1/analyze") => match parse_body::<AnalyzeRequest>(&req.body) {
            Ok(r) => {
                let (status, body) = outcome_body(run_analyze(&r));
                Response::json(status, body)
            }
            Err(resp) => resp,
        },
        ("POST", "/v1/tune") => handle_tune(shared, &req.body),
        ("POST", "/v1/jobs/tune") => handle_job_submit(shared, &req.body),
        (_, p) if p.starts_with("/v1/jobs/") => handle_jobs(shared, req),
        (m, p)
            if matches!(
                p,
                "/healthz"
                    | "/metrics"
                    | "/v1/plan"
                    | "/v1/simulate"
                    | "/v1/analyze"
                    | "/v1/tune"
                    | "/v1/jobs/tune"
                    | "/shutdown"
            ) =>
        {
            Response::json(405, error_body(&format!("{m} not allowed on {p}")))
        }
        (_, p) => Response::json(404, error_body(&format!("no such endpoint {p}"))),
    }
}

/// Dispatch plus per-endpoint accounting.
fn route(shared: &Arc<Shared>, req: &Request) -> Response {
    let endpoint = endpoint_label(&req.path);
    let started = monotonic_nanos();
    let resp = dispatch(shared, req);
    let elapsed = monotonic_nanos().saturating_sub(started);
    observe("hanayo_serve_latency_ns", &[("endpoint", endpoint)], NANOS_BUCKETS, elapsed);
    let code = resp.status.to_string();
    counter_add("hanayo_serve_requests_total", &[("endpoint", endpoint), ("code", &code)], 1);
    resp
}

/// One keep-alive connection, until close, error or shutdown.
fn connection(shared: Arc<Shared>, stream: TcpStream) {
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return;
    }
    let reader_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(reader_half);
    let mut stream = stream;
    loop {
        match read_request(&mut reader) {
            Ok(req) => {
                // A response computed while the drain started still goes
                // out, but the connection closes behind it.
                let resp = route(&shared, &req);
                let close = req.wants_close() || shared.shutdown.is_tripped();
                if write_response(&mut stream, &resp, close).is_err() || close {
                    return;
                }
            }
            Err(ReadError::TimedOut) => {
                if shared.shutdown.is_tripped() {
                    return;
                }
            }
            Err(ReadError::Malformed(msg)) => {
                let _ = write_response(&mut stream, &bad_request(&msg), true);
                return;
            }
            Err(ReadError::Closed) | Err(ReadError::Io(_)) => return,
        }
    }
}

/// A running server. Dropping the handle does *not* stop the server;
/// call [`ServerHandle::stop`] (or POST `/shutdown`).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Mutex<Option<JoinHandle<()>>>,
    drained: Arc<AtomicBool>,
}

impl Server {
    /// The address actually bound (use port 0 to let the OS pick).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin draining without waiting: refuse new work, abort sweeps.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Has the accept loop fully drained and exited?
    pub fn is_drained(&self) -> bool {
        self.drained.load(Ordering::SeqCst)
    }

    /// How many requests were answered from another identical request's
    /// computation (sync dedup only; job dedup is in the metrics).
    pub fn dedup_joins(&self) -> u64 {
        self.shared.state.inflight.join_count()
    }

    /// Shut down and wait for the drain to complete: running sweeps
    /// abort at their next candidate-batch checkpoint, job workers and
    /// connection threads are joined. Bounded by the checkpoint spacing
    /// plus the connection read timeout, not by sweep length.
    pub fn stop(&self) {
        self.shutdown();
        let handle = match self.accept.lock() {
            Ok(mut g) => g.take(),
            Err(poisoned) => poisoned.into_inner().take(),
        };
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    /// [`Server::stop`] with a deadline: returns `true` when the drain
    /// completed in time, `false` when threads were still closing when
    /// the deadline passed (the process may exit anyway — aborted sweeps
    /// hold nothing worth waiting for).
    pub fn stop_within(&self, deadline: Duration) -> bool {
        self.shutdown();
        let start = Instant::now();
        while start.elapsed() < deadline {
            if self.is_drained() {
                self.stop();
                return true;
            }
            thread::sleep(Duration::from_millis(10));
        }
        self.is_drained()
    }
}

/// Bind and start serving. `bind` is a `host:port` pair; port 0 picks a
/// free port (read it back from [`Server::addr`]). Enables the metrics
/// registry — a planning service without `/metrics` is flying blind.
pub fn serve(bind: &str) -> std::io::Result<Server> {
    hanayo_metrics::set_enabled(true);
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shared = Arc::new(Shared::new());
    let drained = Arc::new(AtomicBool::new(false));
    let accept = {
        let shared = Arc::clone(&shared);
        let drained = Arc::clone(&drained);
        thread::Builder::new().name("hanayo-serve-accept".to_string()).spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            while !shared.shutdown.is_tripped() {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let shared = Arc::clone(&shared);
                        let spawned = thread::Builder::new()
                            .name("hanayo-serve-conn".to_string())
                            .spawn(move || connection(shared, stream));
                        if let Ok(handle) = spawned {
                            conns.push(handle);
                        }
                        // Keep the handle list from growing unboundedly
                        // on long-lived servers.
                        if conns.len() > 64 {
                            conns.retain(|h| !h.is_finished());
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => thread::sleep(Duration::from_millis(10)),
                }
            }
            // Drain: sweeps abort at their next checkpoint, connections
            // notice the flag within one read timeout.
            shared.begin_shutdown();
            shared.jobs.drain();
            for handle in conns {
                let _ = handle.join();
            }
            drained.store(true, Ordering::SeqCst);
        })?
    };
    Ok(Server { addr, shared, accept: Mutex::new(Some(accept)), drained })
}
