//! A deliberately small HTTP/1.1 layer over `std::net` — just enough for
//! the planning service's JSON endpoints, with zero dependencies beyond
//! the standard library.
//!
//! Supported: request lines, `Content-Length` bodies, keep-alive,
//! case-insensitive header lookup, and hard caps on header and body
//! sizes so a confused client cannot balloon the host. Not supported —
//! on purpose: chunked transfer, TLS, HTTP/2, multipart. Clients that
//! need those are not this service's clients.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Longest accepted request head (request line + headers), bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Longest accepted request body, bytes.
const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Read timeout per socket operation, so connection threads observe the
/// server's shutdown flag between requests instead of parking forever.
pub const READ_TIMEOUT: Duration = Duration::from_millis(250);

/// Why reading a request off a connection stopped.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The read timed out — poll the shutdown flag and retry.
    TimedOut,
    /// The bytes on the wire were not an HTTP/1.1 request we accept.
    Malformed(String),
    /// The socket failed mid-request.
    Io(std::io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Closed => write!(f, "connection closed"),
            ReadError::TimedOut => write!(f, "read timed out"),
            ReadError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            ReadError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

fn classify(e: std::io::Error) -> ReadError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ReadError::TimedOut,
        std::io::ErrorKind::UnexpectedEof
        | std::io::ErrorKind::ConnectionReset
        | std::io::ErrorKind::ConnectionAborted
        | std::io::ErrorKind::BrokenPipe => ReadError::Closed,
        _ => ReadError::Io(e),
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... — uppercase as received.
    pub method: String,
    /// Absolute path, query string not split off (no endpoint uses one).
    pub path: String,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes (empty if absent).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive single-header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// Does the client ask to drop the connection after this exchange?
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Read one request off a keep-alive connection. `Closed` between
/// requests and `TimedOut` are normal control flow for the caller's
/// accept loop, not failures.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, ReadError> {
    let mut line = String::new();
    let n = reader.read_line(&mut line).map_err(classify)?;
    if n == 0 {
        return Err(ReadError::Closed);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!("bad request line {}", line.trim_end())));
    }

    let mut headers = Vec::new();
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header).map_err(classify)?;
        if n == 0 {
            return Err(ReadError::Malformed("eof inside headers".to_string()));
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ReadError::Malformed(format!("head exceeds {MAX_HEAD_BYTES} bytes")));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        match header.split_once(':') {
            Some((name, value)) => {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()))
            }
            None => return Err(ReadError::Malformed(format!("header without colon: {header}"))),
        }
    }

    let length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => {
            v.parse::<usize>().map_err(|e| ReadError::Malformed(format!("content-length: {e}")))?
        }
        None => 0,
    };
    if length > MAX_BODY_BYTES {
        return Err(ReadError::Malformed(format!("body exceeds {MAX_BODY_BYTES} bytes")));
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).map_err(classify)?;
    Ok(Request { method, path, headers, body })
}

/// One response to serialise.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response (the service's JSON bodies all end in `\n`,
    /// matching the CLIs' `println!` — that newline is part of the
    /// byte-identity contract).
    pub fn json(status: u16, body: String) -> Response {
        Response { status, content_type: "application/json", body: body.into_bytes() }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Response {
        Response { status, content_type: "text/plain; charset=utf-8", body: body.into_bytes() }
    }
}

/// Reason phrase for the handful of statuses the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Serialise one response onto the wire.
pub fn write_response(stream: &mut TcpStream, resp: &Response, close: bool) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    fn roundtrip(raw: &[u8]) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&raw).expect("write");
        });
        let (stream, _) = listener.accept().expect("accept");
        let req = read_request(&mut BufReader::new(stream));
        writer.join().expect("writer join");
        req
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = roundtrip(b"POST /v1/plan HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"\"}")
            .expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/plan");
        assert_eq!(req.header("content-length"), Some("4"));
        assert_eq!(req.body, b"{\"\"}");
        assert!(!req.wants_close());
    }

    #[test]
    fn rejects_a_non_http_preamble() {
        match roundtrip(b"hello world\r\n\r\n") {
            Err(ReadError::Malformed(_)) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn rejects_an_oversized_body_before_reading_it() {
        let raw = format!("POST /v1/plan HTTP/1.1\r\ncontent-length: {}\r\n\r\n", 2 * 1024 * 1024);
        match roundtrip(raw.as_bytes()) {
            Err(ReadError::Malformed(msg)) => assert!(msg.contains("body exceeds")),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn connection_close_is_honoured() {
        let req = roundtrip(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").expect("parses");
        assert!(req.wants_close());
    }
}
