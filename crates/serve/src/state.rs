//! Cross-request shared state: the per-configuration sweep caches and
//! the in-flight dedup table that lets N identical concurrent `tune`
//! requests cost one evaluation.

use hanayo_sim::SweepCaches;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Most `(model, cluster)` configurations whose caches stay resident at
/// once; least-recently-created beyond this are dropped. Each retained
/// configuration's caches are themselves bounded (see [`CACHE_ENTRIES`]).
const MAX_CONFIGS: usize = 8;
/// Per-cache entry bound inside one configuration's [`SweepCaches`].
const CACHE_ENTRIES: usize = 4096;

/// Lock a mutex, recovering from poisoning: every structure guarded here
/// is a plain map whose writes are single non-tearing inserts, so a
/// panicking holder cannot leave it half-updated.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// What one identical-request group is waiting on: the leader's HTTP
/// status and response body, once published.
struct InFlightSlot {
    done: Mutex<Option<(u16, String)>>,
    cv: Condvar,
}

/// Joining an in-flight computation either makes you the leader (you
/// compute and publish) or a follower (you wait for the leader's bytes).
pub enum Join {
    /// First requester for this exact request: compute, then
    /// [`InFlight::publish`] the outcome.
    Leader,
    /// An identical request is already being computed; this is its
    /// published `(status, body)`.
    Joined(u16, String),
}

/// Dedup table for identical in-flight synchronous requests, keyed by
/// the request's exact JSON bytes (the strictest possible equality — two
/// requests share work only when their responses are guaranteed equal).
#[derive(Default)]
pub struct InFlight {
    slots: Mutex<HashMap<String, Arc<InFlightSlot>>>,
    /// How many requests were answered from another request's
    /// computation (the load test's dedup-factor numerator).
    joins: AtomicU64,
}

impl InFlight {
    /// Enter the group for `key`. Followers block until the leader
    /// publishes; the leader returns immediately with [`Join::Leader`].
    pub fn join(&self, key: &str) -> Join {
        let slot = {
            let mut slots = lock(&self.slots);
            match slots.get(key) {
                Some(slot) => Arc::clone(slot),
                None => {
                    let slot =
                        Arc::new(InFlightSlot { done: Mutex::new(None), cv: Condvar::new() });
                    slots.insert(key.to_string(), Arc::clone(&slot));
                    return Join::Leader;
                }
            }
        };
        self.joins.fetch_add(1, Ordering::Relaxed);
        hanayo_metrics::counter_add("hanayo_serve_dedup_joins_total", &[], 1);
        let mut done = lock(&slot.done);
        while done.is_none() {
            done = match slot.cv.wait(done) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        // The loop above only exits with the slot filled.
        match done.clone() {
            Some((status, body)) => Join::Joined(status, body),
            None => Join::Joined(500, "in-flight slot emptied\n".to_string()),
        }
    }

    /// Leader-side: publish the outcome to every follower and retire the
    /// slot so later identical requests recompute (they will hit the
    /// sweep caches instead).
    pub fn publish(&self, key: &str, outcome: (u16, String)) {
        let slot = lock(&self.slots).remove(key);
        if let Some(slot) = slot {
            *lock(&slot.done) = Some(outcome);
            slot.cv.notify_all();
        }
    }

    /// Requests answered by joining another request's computation.
    pub fn join_count(&self) -> u64 {
        self.joins.load(Ordering::Relaxed)
    }
}

/// One retained configuration's caches plus its admission order.
struct ConfigEntry {
    caches: Arc<SweepCaches>,
    admitted: u64,
}

/// The service's shared state: sweep caches per configuration
/// fingerprint, the in-flight dedup table, and the drain flag.
pub struct ServeState {
    configs: Mutex<HashMap<u64, ConfigEntry>>,
    admissions: AtomicU64,
    /// Synchronous-tune dedup.
    pub inflight: InFlight,
    /// Set when the server starts draining: new work is refused with 503
    /// while reads (`/healthz`, `/metrics`, job polls) still answer.
    pub draining: AtomicBool,
}

impl Default for ServeState {
    fn default() -> ServeState {
        ServeState {
            configs: Mutex::new(HashMap::new()),
            admissions: AtomicU64::new(0),
            inflight: InFlight::default(),
            draining: AtomicBool::new(false),
        }
    }
}

impl ServeState {
    /// The shared [`SweepCaches`] for a configuration fingerprint,
    /// creating (and, beyond [`MAX_CONFIGS`], evicting the oldest) as
    /// needed. Callers clone the `Arc`, so an evicted configuration's
    /// caches stay alive for requests already holding them.
    pub fn caches_for(&self, config_key: u64) -> Arc<SweepCaches> {
        let mut configs = lock(&self.configs);
        if let Some(entry) = configs.get(&config_key) {
            return Arc::clone(&entry.caches);
        }
        if configs.len() >= MAX_CONFIGS {
            if let Some(oldest) = configs.iter().min_by_key(|(_, e)| e.admitted).map(|(k, _)| *k) {
                configs.remove(&oldest);
            }
        }
        let caches = Arc::new(SweepCaches::bounded(CACHE_ENTRIES));
        let admitted = self.admissions.fetch_add(1, Ordering::Relaxed);
        configs.insert(config_key, ConfigEntry { caches: Arc::clone(&caches), admitted });
        caches
    }

    /// Export the cache gauges: resident configurations and total cached
    /// entries across them. Called on each `/metrics` scrape so the
    /// numbers are current without per-request bookkeeping.
    pub fn export_cache_gauges(&self) {
        let configs = lock(&self.configs);
        let entries: usize = configs.values().map(|e| e.caches.entries()).sum();
        hanayo_metrics::gauge_set("hanayo_serve_cache_configs", &[], configs.len() as f64);
        hanayo_metrics::gauge_set("hanayo_serve_cache_entries", &[], entries as f64);
    }

    /// Is the server refusing new work?
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn caches_are_shared_per_config_and_split_across_configs() {
        let state = ServeState::default();
        let a = state.caches_for(1);
        let b = state.caches_for(1);
        let c = state.caches_for(2);
        assert!(Arc::ptr_eq(&a, &b), "same fingerprint must share caches");
        assert!(!Arc::ptr_eq(&a, &c), "different fingerprints must not");
    }

    #[test]
    fn config_registry_evicts_the_oldest_beyond_the_cap() {
        let state = ServeState::default();
        let first = state.caches_for(0);
        for key in 1..=MAX_CONFIGS as u64 {
            state.caches_for(key);
        }
        // Key 0 was the oldest, so it was evicted and is rebuilt fresh.
        let again = state.caches_for(0);
        assert!(!Arc::ptr_eq(&first, &again), "evicted config must be rebuilt");
        // The clone taken before eviction still works.
        assert_eq!(first.entries(), 0);
    }

    #[test]
    fn followers_receive_the_leaders_bytes() {
        let inflight = Arc::new(InFlight::default());
        match inflight.join("req") {
            Join::Leader => {}
            Join::Joined(..) => panic!("first join must lead"),
        }
        let followers: Vec<_> = (0..4)
            .map(|_| {
                let inflight = Arc::clone(&inflight);
                thread::spawn(move || match inflight.join("req") {
                    Join::Joined(status, body) => (status, body),
                    Join::Leader => (0, "duplicate leader".to_string()),
                })
            })
            .collect();
        // Give the followers a moment to block on the condvar.
        thread::sleep(std::time::Duration::from_millis(50));
        inflight.publish("req", (200, "the-body".to_string()));
        for f in followers {
            assert_eq!(f.join().expect("follower join"), (200, "the-body".to_string()));
        }
        assert_eq!(inflight.join_count(), 4);
        // The slot retired with the publish: the next join leads again.
        match inflight.join("req") {
            Join::Leader => {}
            Join::Joined(..) => panic!("retired slot must elect a new leader"),
        }
    }
}
