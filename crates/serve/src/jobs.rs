//! Background sweep jobs: `submit → ack(job_id) → status → result`,
//! with interest-counted cancellation (a job shared by several
//! submitters aborts only when the *last* interested party cancels) and
//! a drain that waits for running jobs before shutdown.

use crate::state::lock;
use hanayo_core::abort::AbortFlag;
use hanayo_sim::TuneProgress;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// The sweep is running (or queued on a worker thread).
    Running,
    /// Finished; the JSON response body is ready.
    Done(String),
    /// The sweep failed; the error body explains why.
    Failed(String),
    /// Cancelled before completion.
    Cancelled,
}

/// One background job's shared record.
pub struct Job {
    /// Server-assigned id, monotonically increasing, never reused.
    pub id: u64,
    /// The request's exact JSON bytes — identical submissions attach to
    /// the same job instead of running the sweep twice.
    pub key: String,
    /// Tripping this aborts the sweep at its next batch checkpoint.
    pub abort: Arc<AbortFlag>,
    /// Live candidate counters the status endpoint reports.
    pub progress: Arc<TuneProgress>,
    /// Submitters currently interested in the result; cancel decrements
    /// and only the transition to zero trips the abort.
    interested: AtomicUsize,
    state: Mutex<JobState>,
    cv: Condvar,
}

/// The status document `GET /v1/jobs/<id>` answers with.
#[derive(Debug, Serialize)]
pub struct JobStatus {
    /// Job id.
    pub id: u64,
    /// `running`, `done`, `failed` or `cancelled`.
    pub state: String,
    /// Candidates evaluated so far.
    pub evaluated: u64,
    /// Total candidates in the sweep (0 until the space is enumerated).
    pub total: u64,
}

impl Job {
    fn new(id: u64, key: String) -> Job {
        Job {
            id,
            key,
            abort: Arc::new(AbortFlag::new()),
            progress: Arc::new(TuneProgress::default()),
            interested: AtomicUsize::new(1),
            state: Mutex::new(JobState::Running),
            cv: Condvar::new(),
        }
    }

    /// Current state, cloned.
    pub fn state(&self) -> JobState {
        lock(&self.state).clone()
    }

    /// The status document for this job.
    pub fn status(&self) -> JobStatus {
        let state = match self.state() {
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
        };
        JobStatus {
            id: self.id,
            state: state.to_string(),
            evaluated: self.progress.evaluated(),
            total: self.progress.total(),
        }
    }

    /// Worker-side: publish the terminal state exactly once (a cancel
    /// that raced a completion keeps whichever landed first).
    pub fn finish(&self, state: JobState) {
        let mut guard = lock(&self.state);
        if *guard == JobState::Running {
            *guard = state;
            self.cv.notify_all();
        }
    }

    /// Block until the job leaves `Running`, then return the terminal
    /// state. Used by tests and the drain path, not by HTTP handlers
    /// (those poll via [`Job::status`]).
    pub fn wait(&self) -> JobState {
        let mut guard = lock(&self.state);
        while *guard == JobState::Running {
            guard = match self.cv.wait(guard) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        guard.clone()
    }
}

/// The job table: id allocation, submission dedup, worker handles for
/// the drain.
#[derive(Default)]
pub struct JobRegistry {
    next_id: AtomicU64,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    /// Running jobs by request key, for submission dedup.
    by_key: Mutex<HashMap<String, u64>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// What a submission resolved to.
pub struct Submission {
    /// The (new or joined) job.
    pub job: Arc<Job>,
    /// False when an identical running job absorbed this submission —
    /// the caller must not spawn a second worker.
    pub fresh: bool,
}

impl JobRegistry {
    /// Submit a request key: attach to an identical *running* job if one
    /// exists (bumping its interest count), otherwise mint a new job.
    pub fn submit(&self, key: &str) -> Submission {
        let mut by_key = lock(&self.by_key);
        if let Some(&id) = by_key.get(key) {
            if let Some(job) = lock(&self.jobs).get(&id) {
                if job.state() == JobState::Running {
                    job.interested.fetch_add(1, Ordering::SeqCst);
                    hanayo_metrics::counter_add("hanayo_serve_dedup_joins_total", &[], 1);
                    return Submission { job: Arc::clone(job), fresh: false };
                }
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::SeqCst) + 1;
        let job = Arc::new(Job::new(id, key.to_string()));
        lock(&self.jobs).insert(id, Arc::clone(&job));
        by_key.insert(key.to_string(), id);
        Submission { job, fresh: true }
    }

    /// Look a job up by id.
    pub fn get(&self, id: u64) -> Option<Arc<Job>> {
        lock(&self.jobs).get(&id).cloned()
    }

    /// Record a worker thread so [`JobRegistry::drain`] can join it.
    pub fn track_worker(&self, handle: JoinHandle<()>) {
        lock(&self.workers).push(handle);
    }

    /// Worker-side: a job reached a terminal state — stop routing new
    /// submissions of its key to it.
    pub fn retire_key(&self, key: &str, id: u64) {
        let mut by_key = lock(&self.by_key);
        if by_key.get(key) == Some(&id) {
            by_key.remove(key);
        }
    }

    /// Drop one submitter's interest in a job. The abort trips only when
    /// the last interested submitter cancels; returns whether this call
    /// actually initiated an abort.
    pub fn cancel(&self, job: &Job) -> bool {
        if job.state() != JobState::Running {
            return false;
        }
        let before = job.interested.fetch_sub(1, Ordering::SeqCst);
        if before == 1 {
            job.abort.trip();
            true
        } else {
            false
        }
    }

    /// Wait for every tracked worker to finish. Trip `abort_all` first
    /// (via the caller) to turn this into a bounded drain.
    pub fn drain(&self) {
        let workers = std::mem::take(&mut *lock(&self.workers));
        for handle in workers {
            // A worker that panicked already published Failed; nothing
            // more to do with its result here.
            let _ = handle.join();
        }
    }

    /// Trip every running job's abort flag (the shutdown path).
    pub fn abort_all(&self) {
        for job in lock(&self.jobs).values() {
            if job.state() == JobState::Running {
                job.abort.trip();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_running_submissions_share_one_job() {
        let reg = JobRegistry::default();
        let first = reg.submit("req-a");
        let second = reg.submit("req-a");
        let other = reg.submit("req-b");
        assert!(first.fresh);
        assert!(!second.fresh, "identical running submission must join");
        assert!(other.fresh);
        assert_eq!(first.job.id, second.job.id);
        assert_ne!(first.job.id, other.job.id);
    }

    #[test]
    fn cancel_trips_the_abort_only_at_zero_interest() {
        let reg = JobRegistry::default();
        let a = reg.submit("req");
        let b = reg.submit("req");
        assert!(!reg.cancel(&a.job), "one interested submitter remains");
        assert!(!a.job.abort.is_tripped());
        assert!(reg.cancel(&b.job), "last cancel must abort");
        assert!(b.job.abort.is_tripped());
    }

    #[test]
    fn finished_jobs_do_not_absorb_new_submissions() {
        let reg = JobRegistry::default();
        let first = reg.submit("req");
        first.job.finish(JobState::Done("{}".to_string()));
        reg.retire_key("req", first.job.id);
        let second = reg.submit("req");
        assert!(second.fresh, "a done job must not absorb new submissions");
        assert_ne!(first.job.id, second.job.id);
        // The finished job stays queryable by id.
        assert_eq!(reg.get(first.job.id).expect("kept").state(), first.job.state());
    }

    #[test]
    fn finish_is_first_writer_wins() {
        let job = Job::new(1, "req".to_string());
        job.finish(JobState::Done("body".to_string()));
        job.finish(JobState::Cancelled);
        assert_eq!(job.state(), JobState::Done("body".to_string()));
        assert_eq!(job.wait(), JobState::Done("body".to_string()));
    }
}
