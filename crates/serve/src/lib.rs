//! # hanayo-serve
//!
//! The resident planning service: planning a large training run is a
//! *sequence* of related questions — sweep, narrow, re-sweep with a
//! different batch, compare clusters — and the one-shot CLIs rebuild
//! every schedule, cost table and simulation from scratch each time.
//! This crate keeps the planner resident instead:
//!
//! * **One process, many requests** — an HTTP/1.1 host over a local TCP
//!   socket (std-library-only; no web framework) with JSON endpoints for
//!   `plan`, `tune`, `simulate` and `analyze` answering exactly the
//!   documents the CLIs print. Byte-identical, in fact: both are built
//!   by the same [`schema`] functions, and tests diff the two paths.
//! * **Cross-request caches** — sweep artifacts (schedules, cost
//!   tables, compiled simulations, deadlock verdicts, group reports)
//!   live in per-configuration [`hanayo_sim::SweepCaches`], keyed by an
//!   FNV fingerprint of the `(model, cluster)` pair, so a repeated or
//!   narrowed sweep costs a fraction of a cold one.
//! * **Request dedup** — N identical concurrent `tune` requests elect
//!   one leader; followers wait and receive the leader's bytes. One
//!   evaluation, N answers.
//! * **Background jobs** — `submit → ack(job_id) → status → result`
//!   with interest-counted cancellation: a sweep aborts (at a candidate
//!   batch checkpoint, via [`hanayo_core::abort::AbortFlag`]) only when
//!   its last interested submitter cancels.
//! * **Observability** — `GET /metrics` serves the
//!   [`hanayo_metrics`] registry as Prometheus text: per-endpoint
//!   request counts and latency histograms, cache sizes, dedup joins,
//!   job outcomes, plus every tuner cache counter.
//! * **Graceful drain** — SIGTERM/SIGINT (or `POST /shutdown`) stops
//!   accepting work, aborts running sweeps at their next checkpoint,
//!   joins the workers and exits 0.

pub mod client;
pub mod http;
pub mod jobs;
pub mod schema;
pub mod server;
pub mod signal;
pub mod state;

pub use client::{Client, ClientError, ClientResponse};
pub use schema::{
    run_analyze, run_plan, run_simulate, run_tune, AnalyzeDoc, AnalyzeRequest, PlanDoc,
    PlanRequest, RunError, SimulateDoc, SimulateRequest, SweepTable, TuneRequest,
};
pub use server::{serve, Server};
