//! Collective cost models: the data-parallel gradient all-reduce that
//! Chimera-wave's replica dimension (and any explicit `D > 1` plan) pays at
//! every flush.

use crate::topology::ClusterSpec;

/// Time of a bandwidth-optimal ring all-reduce of `bytes` over the devices
/// in `ring`: `2·(n-1)/n · bytes / worst_bandwidth + 2·(n-1)·latency`.
///
/// Each of the `2(n-1)` steps moves `bytes/n` around the ring; the slowest
/// link paces every step.
pub fn ring_allreduce_time(cluster: &ClusterSpec, ring: &[usize], bytes: u64) -> f64 {
    let n = ring.len();
    if n <= 1 || bytes == 0 {
        return 0.0;
    }
    let worst = cluster.worst_ring_link(ring);
    let steps = 2 * (n - 1);
    let chunk = bytes as f64 / n as f64;
    steps as f64 * (chunk / worst.bandwidth + worst.latency)
}

/// Time of the broadcast used to distribute initial weights (ring
/// pipeline): `bytes / worst_bandwidth + (n-1)·latency`.
pub fn broadcast_time(cluster: &ClusterSpec, ring: &[usize], bytes: u64) -> f64 {
    let n = ring.len();
    if n <= 1 || bytes == 0 {
        return 0.0;
    }
    let worst = cluster.worst_ring_link(ring);
    bytes as f64 / worst.bandwidth + (n - 1) as f64 * worst.latency
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{fc_full_nvlink, lonestar6};

    #[test]
    fn allreduce_of_nothing_is_free() {
        let c = fc_full_nvlink(8);
        assert_eq!(ring_allreduce_time(&c, &[0, 1, 2, 3], 0), 0.0);
        assert_eq!(ring_allreduce_time(&c, &[0], 1 << 30), 0.0);
    }

    #[test]
    fn allreduce_scales_with_bytes() {
        let c = fc_full_nvlink(8);
        let ring = [0, 1, 2, 3];
        let t1 = ring_allreduce_time(&c, &ring, 1 << 28);
        let t2 = ring_allreduce_time(&c, &ring, 1 << 29);
        assert!(t2 > 1.9 * t1 && t2 < 2.1 * t1);
    }

    #[test]
    fn slow_fabric_dominates() {
        let fc = fc_full_nvlink(8);
        let tacc = lonestar6(8);
        let ring = [0, 1, 2, 3, 4, 5, 6, 7];
        let bytes = 1 << 30;
        assert!(
            ring_allreduce_time(&tacc, &ring, bytes) > 5.0 * ring_allreduce_time(&fc, &ring, bytes)
        );
    }

    #[test]
    fn allreduce_asymptotics_near_2x_bandwidth_term() {
        // For large n, time → 2·bytes/bw.
        let c = fc_full_nvlink(8);
        let ring: Vec<usize> = (0..8).collect();
        let bytes = 1u64 << 30;
        let t = ring_allreduce_time(&c, &ring, bytes);
        let ideal = 2.0 * (7.0 / 8.0) * bytes as f64 / c.p2p(0, 1).bandwidth;
        assert!((t - ideal) / ideal < 0.05, "t={t} ideal={ideal}");
    }

    #[test]
    fn broadcast_cheaper_than_allreduce() {
        let c = lonestar6(8);
        let ring: Vec<usize> = (0..8).collect();
        let bytes = 1 << 28;
        assert!(broadcast_time(&c, &ring, bytes) < ring_allreduce_time(&c, &ring, bytes));
    }
}
