//! Cluster topologies: who is wired to whom, and how fast.

use crate::gpu::GpuModel;
use crate::link::{Link, LinkClass};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A device-subset selection named an index outside the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectError {
    /// The out-of-range device index.
    pub index: usize,
    /// How many devices the cluster actually has.
    pub devices: usize,
}

impl fmt::Display for SelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "device index {} out of range for a {}-device cluster", self.index, self.devices)
    }
}

impl std::error::Error for SelectError {}

/// A complete cluster description: devices plus the link matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Human-readable name used in figures ("PC", "FC", "TACC", "TC").
    pub name: String,
    /// GPU model per device.
    pub gpus: Vec<GpuModel>,
    /// Node id per device (inter-node links ride the fabric).
    pub node: Vec<u32>,
    /// Dense link matrix; `links[a][b]` is the path `a → b`.
    pub links: Vec<Vec<Link>>,
    /// Model FLOPs utilisation: fraction of peak the training kernels
    /// actually achieve (0.4–0.5 is typical for well-tuned transformers).
    pub mfu: f64,
    /// Mean time between failures of a *single* device, seconds. The
    /// fleet-level MTBF a recovery model should use is `device_mtbf_s / n`
    /// for an `n`-device job (`hanayo_ckpt::recovery::cluster_mtbf_s`).
    /// The default (`DEFAULT_DEVICE_MTBF_S`, ~4 months) matches published
    /// per-GPU failure rates for large training fleets; `f64::INFINITY`
    /// models a failure-free cluster.
    pub device_mtbf_s: f64,
}

/// Default per-device MTBF: ~10⁷ seconds (≈ 116 days), the order of
/// magnitude reported for datacenter GPU fleets.
pub const DEFAULT_DEVICE_MTBF_S: f64 = 1.0e7;

impl ClusterSpec {
    /// Number of devices.
    pub fn len(&self) -> usize {
        self.gpus.len()
    }

    /// True when the cluster has no devices.
    pub fn is_empty(&self) -> bool {
        self.gpus.is_empty()
    }

    /// Effective FLOP/s of device `d` (peak × MFU).
    pub fn effective_flops(&self, d: usize) -> f64 {
        self.gpus[d].peak_flops() * self.mfu
    }

    /// The link used by a `a → b` transfer.
    pub fn p2p(&self, a: usize, b: usize) -> Link {
        self.links[a][b]
    }

    /// Transfer time for `bytes` from `a` to `b`.
    pub fn p2p_time(&self, a: usize, b: usize, bytes: u64) -> f64 {
        self.p2p(a, b).transfer_time(bytes)
    }

    /// Usable memory of device `d` in bytes.
    pub fn memory(&self, d: usize) -> u64 {
        self.gpus[d].usable_memory_bytes()
    }

    /// Restrict the cluster to a subset of devices (for a pipeline group in
    /// a `D×P` plan). Ranks are remapped to `0..subset.len()` in the given
    /// order. Every index is validated up front: an out-of-range device
    /// returns a typed [`SelectError`] naming the index and the cluster
    /// size instead of panicking mid-copy.
    pub fn try_select(&self, subset: &[usize]) -> Result<ClusterSpec, SelectError> {
        if let Some(&index) = subset.iter().find(|&&i| i >= self.len()) {
            return Err(SelectError { index, devices: self.len() });
        }
        let gpus = subset.iter().map(|&i| self.gpus[i]).collect();
        let node = subset.iter().map(|&i| self.node[i]).collect();
        let links =
            subset.iter().map(|&a| subset.iter().map(|&b| self.links[a][b]).collect()).collect();
        Ok(ClusterSpec {
            name: self.name.clone(),
            gpus,
            node,
            links,
            mfu: self.mfu,
            device_mtbf_s: self.device_mtbf_s,
        })
    }

    /// [`ClusterSpec::try_select`] for callers that have already bounded
    /// the subset (the plan layer checks `dp·pp ≤ len` first). Panics with
    /// the [`SelectError`] message on an out-of-range index.
    pub fn select(&self, subset: &[usize]) -> ClusterSpec {
        self.try_select(subset).unwrap_or_else(|e| panic!("ClusterSpec::select: {e}"))
    }

    /// The slowest inter-device link anywhere in the cluster — the
    /// bandwidth floor a checkpoint drain or state reload cannot beat
    /// (persistent storage hangs off the fabric, so a conservative
    /// recovery model charges state movement at this rate). Falls back to
    /// a loopback link for 0/1-device clusters.
    pub fn weakest_link(&self) -> Link {
        let mut worst = Link::of(LinkClass::Local);
        for a in 0..self.len() {
            for b in 0..self.len() {
                if a != b && self.links[a][b].bandwidth < worst.bandwidth {
                    worst = self.links[a][b];
                }
            }
        }
        worst
    }

    /// The slowest link on a ring over the given devices — the bandwidth
    /// bottleneck of a ring all-reduce.
    pub fn worst_ring_link(&self, ring: &[usize]) -> Link {
        let mut worst = Link::of(LinkClass::Local);
        for (k, &a) in ring.iter().enumerate() {
            let b = ring[(k + 1) % ring.len()];
            let l = self.p2p(a, b);
            if l.bandwidth < worst.bandwidth {
                worst = l;
            }
        }
        worst
    }

    fn build(
        name: &str,
        gpus: Vec<GpuModel>,
        node: Vec<u32>,
        class_of: impl Fn(usize, usize) -> LinkClass,
        mfu: f64,
    ) -> ClusterSpec {
        let n = gpus.len();
        let links =
            (0..n)
                .map(|a| {
                    (0..n)
                        .map(|b| {
                            if a == b {
                                Link::of(LinkClass::Local)
                            } else {
                                Link::of(class_of(a, b))
                            }
                        })
                        .collect()
                })
                .collect();
        ClusterSpec {
            name: name.to_string(),
            gpus,
            node,
            links,
            mfu,
            device_mtbf_s: DEFAULT_DEVICE_MTBF_S,
        }
    }
}

/// TACC Lonestar6: `n` A100-40GB GPUs packed three per node. Within a node
/// GPU 0 sits on socket 0 and GPUs 1–2 on socket 1 (§5: "GPU 0 on socket 0
/// and GPU 1 and 2 on socket 1"), so 0↔{1,2} paths cross the socket.
/// Nodes talk over InfiniBand HDR.
pub fn lonestar6(n: usize) -> ClusterSpec {
    let node: Vec<u32> = (0..n).map(|i| (i / 3) as u32).collect();
    let node_for = node.clone();
    ClusterSpec::build(
        "TACC",
        vec![GpuModel::A100_40G; n],
        node,
        move |a, b| {
            if node_for[a] != node_for[b] {
                LinkClass::InfiniBandHdr
            } else {
                let (la, lb) = (a % 3, b % 3);
                // local GPU index 0 is alone on socket 0
                if (la == 0) != (lb == 0) {
                    LinkClass::Pcie4CrossSocket
                } else {
                    LinkClass::Pcie4
                }
            }
        },
        0.42,
    )
}

/// Tencent GN10Xp cloud node: 8× V100-32GB in the DGX-1 hybrid cube mesh.
/// Devices `a` and `b` share an NVLink edge when they are hypercube
/// neighbours (differ in one bit) or belong to the two extra diagonal rings
/// of the DGX-1 backplane; other pairs fall back to PCIe.
pub fn tencent_v100(n: usize) -> ClusterSpec {
    assert!(n <= 8, "the TC node has 8 GPUs");
    ClusterSpec::build(
        "TC",
        vec![GpuModel::V100_32G; n],
        vec![0; n],
        |a, b| {
            let direct = (a ^ b).count_ones() == 1 || (a ^ b) == 0b101 || (a ^ b) == 0b110;
            if direct {
                LinkClass::NvLink2
            } else {
                LinkClass::Pcie4
            }
        },
        0.40,
    )
}

/// Local cluster "PC": 8× A100-80GB with NVLink only inside the pairs
/// (0,1), (2,3), (4,5), (6,7).
pub fn pc_partial_nvlink(n: usize) -> ClusterSpec {
    ClusterSpec::build(
        "PC",
        vec![GpuModel::A100_80G; n],
        vec![0; n],
        |a, b| {
            if a / 2 == b / 2 {
                LinkClass::NvLink3
            } else {
                LinkClass::Pcie4
            }
        },
        0.45,
    )
}

/// Local cluster "FC": 8× A100-80GB fully connected via NVSwitch.
pub fn fc_full_nvlink(n: usize) -> ClusterSpec {
    ClusterSpec::build(
        "FC",
        vec![GpuModel::A100_80G; n],
        vec![0; n],
        |_, _| LinkClass::NvLink3,
        0.45,
    )
}

/// The four paper clusters at a given GPU count, in figure order
/// (PC, FC, TACC, TC).
pub fn paper_clusters(n: usize) -> Vec<ClusterSpec> {
    vec![pc_partial_nvlink(n), fc_full_nvlink(n), lonestar6(n), tencent_v100(n.min(8))]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_matrices_are_symmetric() {
        for c in paper_clusters(8) {
            for a in 0..c.len() {
                for b in 0..c.len() {
                    assert_eq!(c.p2p(a, b).class, c.p2p(b, a).class, "{} {a}<->{b}", c.name);
                }
            }
        }
    }

    #[test]
    fn diagonal_is_local() {
        for c in paper_clusters(8) {
            for a in 0..c.len() {
                assert_eq!(c.p2p(a, a).class, LinkClass::Local);
            }
        }
    }

    #[test]
    fn lonestar6_packs_three_per_node() {
        let c = lonestar6(8);
        assert_eq!(c.node, vec![0, 0, 0, 1, 1, 1, 2, 2]);
        assert_eq!(c.p2p(0, 3).class, LinkClass::InfiniBandHdr);
        assert_eq!(c.p2p(1, 2).class, LinkClass::Pcie4);
        assert_eq!(c.p2p(0, 1).class, LinkClass::Pcie4CrossSocket);
    }

    #[test]
    fn pc_pairs_have_nvlink_others_do_not() {
        let c = pc_partial_nvlink(8);
        assert_eq!(c.p2p(0, 1).class, LinkClass::NvLink3);
        assert_eq!(c.p2p(1, 2).class, LinkClass::Pcie4);
        assert_eq!(c.p2p(6, 7).class, LinkClass::NvLink3);
    }

    #[test]
    fn fc_is_uniform_nvlink() {
        let c = fc_full_nvlink(8);
        for a in 0..8 {
            for b in 0..8 {
                if a != b {
                    assert_eq!(c.p2p(a, b).class, LinkClass::NvLink3);
                }
            }
        }
    }

    #[test]
    fn tencent_cube_mesh_has_both_kinds() {
        let c = tencent_v100(8);
        assert_eq!(c.p2p(0, 1).class, LinkClass::NvLink2);
        assert_eq!(c.p2p(0, 4).class, LinkClass::NvLink2);
        // 0 ^ 7 = 0b111: not a cube edge nor a backplane ring
        assert_eq!(c.p2p(0, 7).class, LinkClass::Pcie4);
    }

    #[test]
    fn fc_pipeline_neighbours_are_faster_than_tacc() {
        let fc = fc_full_nvlink(8);
        let tacc = lonestar6(8);
        let bytes = 4_000_000;
        assert!(fc.p2p_time(2, 3, bytes) < tacc.p2p_time(2, 3, bytes));
    }

    #[test]
    fn select_remaps_ranks() {
        let c = lonestar6(8);
        let sub = c.select(&[3, 4, 5, 6]);
        assert_eq!(sub.len(), 4);
        // 3,4,5 share a node; 6 is on the next node.
        assert_eq!(sub.p2p(0, 1).class, c.p2p(3, 4).class);
        assert_eq!(sub.p2p(2, 3).class, LinkClass::InfiniBandHdr);
    }

    #[test]
    fn try_select_rejects_out_of_range_indices_with_a_typed_error() {
        let c = fc_full_nvlink(4);
        let err = c.try_select(&[0, 1, 9]).unwrap_err();
        assert_eq!(err, SelectError { index: 9, devices: 4 });
        assert_eq!(err.to_string(), "device index 9 out of range for a 4-device cluster");
        // In-range subsets behave exactly like select().
        assert_eq!(c.try_select(&[2, 0]).unwrap(), c.select(&[2, 0]));
        // Empty subsets are legal and yield an empty cluster.
        assert!(c.try_select(&[]).unwrap().is_empty());
    }

    #[test]
    fn select_panics_with_the_named_index_not_a_raw_bounds_error() {
        let c = lonestar6(4);
        let result = std::panic::catch_unwind(|| c.select(&[0, 4]));
        let msg = *result.unwrap_err().downcast::<String>().expect("string panic payload");
        assert!(msg.contains("device index 4"), "panic must name the index: {msg}");
        assert!(msg.contains("4-device cluster"), "panic must name the size: {msg}");
    }

    #[test]
    fn effective_flops_applies_mfu() {
        let c = fc_full_nvlink(8);
        assert!(c.effective_flops(0) < GpuModel::A100_80G.peak_flops());
        assert!(c.effective_flops(0) > 0.3 * GpuModel::A100_80G.peak_flops());
    }

    #[test]
    fn weakest_link_is_the_cluster_floor() {
        // TACC's floor is the inter-node InfiniBand path; FC is uniform
        // NVLink, so its floor is NVLink itself.
        assert_eq!(lonestar6(8).weakest_link().class, LinkClass::InfiniBandHdr);
        assert_eq!(fc_full_nvlink(8).weakest_link().class, LinkClass::NvLink3);
        // Degenerate clusters fall back to loopback.
        assert_eq!(fc_full_nvlink(1).weakest_link().class, LinkClass::Local);
    }

    #[test]
    fn clusters_carry_a_finite_device_mtbf() {
        for c in paper_clusters(8) {
            assert!(c.device_mtbf_s.is_finite() && c.device_mtbf_s > 0.0, "{}", c.name);
            // Selection preserves the failure model.
            assert_eq!(c.select(&[0, 1]).device_mtbf_s, c.device_mtbf_s);
        }
    }

    #[test]
    fn worst_ring_link_finds_bottleneck() {
        let c = lonestar6(8);
        let worst = c.worst_ring_link(&[0, 1, 2, 3]);
        assert_eq!(worst.class, LinkClass::InfiniBandHdr);
        let pc = pc_partial_nvlink(8);
        assert_eq!(pc.worst_ring_link(&[0, 1]).class, LinkClass::NvLink3);
    }
}
