//! GPU device models: peak compute and memory for the accelerators used in
//! the paper's four clusters.

use serde::{Deserialize, Serialize};

/// The accelerator types appearing in §5's cluster descriptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuModel {
    /// NVIDIA A100 with 40 GB HBM2e (TACC Lonestar6).
    A100_40G,
    /// NVIDIA A100 with 80 GB HBM2e (the two local clusters).
    A100_80G,
    /// NVIDIA V100 with 32 GB HBM2 (Tencent cloud).
    V100_32G,
}

impl GpuModel {
    /// Peak dense fp16 tensor-core throughput in FLOP/s.
    pub fn peak_flops(self) -> f64 {
        match self {
            GpuModel::A100_40G | GpuModel::A100_80G => 312e12,
            GpuModel::V100_32G => 125e12,
        }
    }

    /// Total device memory in bytes.
    pub fn memory_bytes(self) -> u64 {
        match self {
            GpuModel::A100_40G => 40_000_000_000,
            GpuModel::A100_80G => 80_000_000_000,
            GpuModel::V100_32G => 32_000_000_000,
        }
    }

    /// Memory actually available to the training job after the CUDA
    /// context, framework buffers and fragmentation slack (a fixed 2 GB
    /// reserve, the conventional rule of thumb).
    pub fn usable_memory_bytes(self) -> u64 {
        self.memory_bytes().saturating_sub(2_000_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_variants_share_compute() {
        assert_eq!(GpuModel::A100_40G.peak_flops(), GpuModel::A100_80G.peak_flops());
        assert!(GpuModel::A100_40G.peak_flops() > GpuModel::V100_32G.peak_flops());
    }

    #[test]
    fn memory_ordering() {
        assert!(GpuModel::A100_80G.memory_bytes() > GpuModel::A100_40G.memory_bytes());
        assert!(GpuModel::A100_40G.memory_bytes() > GpuModel::V100_32G.memory_bytes());
    }

    #[test]
    fn usable_memory_reserves_headroom() {
        for g in [GpuModel::A100_40G, GpuModel::A100_80G, GpuModel::V100_32G] {
            assert!(g.usable_memory_bytes() < g.memory_bytes());
            assert!(g.usable_memory_bytes() > g.memory_bytes() / 2);
        }
    }
}
