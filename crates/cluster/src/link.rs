//! Interconnect link models: bandwidth/latency classes for every kind of
//! GPU-to-GPU path in the four clusters.

use serde::{Deserialize, Serialize};

/// The interconnect technologies appearing in the paper's clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Third-generation NVLink between an A100 pair (or via NVSwitch).
    NvLink3,
    /// Second-generation NVLink edge of a V100 hybrid cube mesh.
    NvLink2,
    /// PCIe 4.0 x16 host path (same socket).
    Pcie4,
    /// PCIe path crossing the socket interconnect.
    Pcie4CrossSocket,
    /// Mellanox InfiniBand HDR between nodes.
    InfiniBandHdr,
    /// Loopback: both stages on one device (free).
    Local,
}

impl LinkClass {
    /// Achievable unidirectional bandwidth in bytes/second (realistic
    /// effective numbers, not marketing peaks).
    pub fn bandwidth(self) -> f64 {
        match self {
            LinkClass::NvLink3 => 250e9,
            LinkClass::NvLink2 => 120e9,
            LinkClass::Pcie4 => 22e9,
            LinkClass::Pcie4CrossSocket => 16e9,
            // HDR is 25 GB/s on the wire, but Lonestar6 packs three GPUs
            // per node onto one HCA, so a single flow sees far less.
            LinkClass::InfiniBandHdr => 12e9,
            LinkClass::Local => f64::INFINITY,
        }
    }

    /// One-way message latency in seconds (launch + wire + software stack).
    pub fn latency(self) -> f64 {
        match self {
            LinkClass::NvLink3 => 4e-6,
            LinkClass::NvLink2 => 5e-6,
            LinkClass::Pcie4 => 8e-6,
            LinkClass::Pcie4CrossSocket => 10e-6,
            LinkClass::InfiniBandHdr => 18e-6,
            LinkClass::Local => 0.0,
        }
    }
}

/// A concrete point-to-point link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Technology class (determines defaults).
    pub class: LinkClass,
    /// Unidirectional bandwidth, bytes/second.
    pub bandwidth: f64,
    /// One-way latency, seconds.
    pub latency: f64,
}

impl Link {
    /// A link with its class's default characteristics.
    pub fn of(class: LinkClass) -> Self {
        Link { class, bandwidth: class.bandwidth(), latency: class.latency() }
    }

    /// Time to move `bytes` across this link: `latency + bytes/bandwidth`.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        if self.class == LinkClass::Local {
            return 0.0;
        }
        self.latency + bytes as f64 / self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvlink_beats_pcie_beats_ib() {
        let mb = 4_000_000; // a typical activation message
        let nv = Link::of(LinkClass::NvLink3).transfer_time(mb);
        let pcie = Link::of(LinkClass::Pcie4).transfer_time(mb);
        let ib = Link::of(LinkClass::InfiniBandHdr).transfer_time(mb);
        assert!(nv < pcie, "{nv} {pcie}");
        assert!(pcie < ib, "{pcie} {ib}");
    }

    #[test]
    fn local_is_free() {
        assert_eq!(Link::of(LinkClass::Local).transfer_time(1 << 30), 0.0);
    }

    #[test]
    fn latency_dominates_tiny_messages() {
        let l = Link::of(LinkClass::InfiniBandHdr);
        let t = l.transfer_time(64);
        assert!((t - l.latency) / t < 0.01);
    }

    #[test]
    fn transfer_time_is_monotone_in_bytes() {
        let l = Link::of(LinkClass::Pcie4);
        assert!(l.transfer_time(1_000_000) < l.transfer_time(2_000_000));
    }
}
