//! # hanayo-cluster
//!
//! Hardware models for the four computing environments of the paper's
//! evaluation (§5):
//!
//! * **TACC Lonestar6** — A100-40GB nodes with three GPUs each (GPU 0 on
//!   socket 0, GPUs 1–2 on socket 1), PCIe inside the node, InfiniBand HDR
//!   across nodes.
//! * **Tencent cloud (TC)** — 8× V100-32GB in a DGX-1-style NVLink hybrid
//!   cube mesh.
//! * **PC** — a local server with 8× A100-80GB where only the pairs
//!   (0,1), (2,3), (4,5), (6,7) share NVLink; everything else rides PCIe.
//! * **FC** — a local server with 8× A100-80GB fully connected through
//!   NVSwitch.
//!
//! A [`topology::ClusterSpec`] answers the three questions the simulator
//! asks: how fast is device `d` (effective FLOP/s), how long does moving
//! `n` bytes from `a` to `b` take ([`link::Link::transfer_time`]), and how
//! much memory does `d` have. [`collective`] adds the ring all-reduce used
//! for the data-parallel gradient synchronisation.

pub mod collective;
pub mod gpu;
pub mod link;
pub mod topology;

pub use gpu::GpuModel;
pub use link::{Link, LinkClass};
pub use topology::{ClusterSpec, SelectError};
