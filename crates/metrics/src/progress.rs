//! A throttled, TTY-gated stderr progress line for long sweeps.
//!
//! The line rewrites itself in place (`\r`), prints at most every 200 ms,
//! and is completely inert when stderr is not a terminal (CI, pipes,
//! tests) or when `HANAYO_PROGRESS=0` — in that case a tick is one atomic
//! add. Progress output is a side channel on stderr and never touches the
//! computation it reports on.

use std::io::{IsTerminal, Write as _};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Minimum interval between repaints.
const THROTTLE_NS: u64 = 200_000_000;

/// A monotonically advancing `done / total` tracker that paints
/// `label: done/total (rate/s, ETA ..s)` onto stderr.
pub struct Progress {
    label: String,
    total: u64,
    done: AtomicU64,
    start: Instant,
    /// Elapsed-ns of the last repaint (claimed via compare-exchange so
    /// concurrent tickers never double-paint).
    last_paint_ns: AtomicU64,
    active: bool,
    painted: AtomicU64,
}

impl Progress {
    /// A tracker for `total` units of work. Painting activates only when
    /// stderr is a terminal and `HANAYO_PROGRESS` is not `0`.
    pub fn new(label: impl Into<String>, total: u64) -> Progress {
        let suppressed = std::env::var("HANAYO_PROGRESS").is_ok_and(|v| v == "0");
        Progress {
            label: label.into(),
            total,
            done: AtomicU64::new(0),
            start: Instant::now(),
            last_paint_ns: AtomicU64::new(0),
            active: std::io::stderr().is_terminal() && !suppressed,
            painted: AtomicU64::new(0),
        }
    }

    /// Record one completed unit.
    pub fn tick(&self) {
        self.add(1);
    }

    /// Record `n` completed units and repaint if the throttle allows.
    pub fn add(&self, n: u64) {
        let done = self.done.fetch_add(n, Ordering::Relaxed).saturating_add(n);
        if !self.active {
            return;
        }
        let elapsed_ns = self.start.elapsed().as_nanos() as u64;
        let last = self.last_paint_ns.load(Ordering::Relaxed);
        if elapsed_ns.saturating_sub(last) < THROTTLE_NS {
            return;
        }
        if self
            .last_paint_ns
            .compare_exchange(last, elapsed_ns, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        self.paint(done, elapsed_ns);
    }

    /// Completed units so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Is this tracker painting (TTY present and not suppressed)?
    pub fn is_active(&self) -> bool {
        self.active
    }

    fn paint(&self, done: u64, elapsed_ns: u64) {
        let secs = (elapsed_ns as f64 / 1e9).max(1e-9);
        let rate = done as f64 / secs;
        let eta =
            if rate > 0.0 && self.total > done { (self.total - done) as f64 / rate } else { 0.0 };
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\r\x1b[2K{}: {done}/{} ({rate:.1}/s, ETA {eta:.0}s)",
            self.label, self.total
        );
        let _ = err.flush();
        self.painted.fetch_add(1, Ordering::Relaxed);
    }

    /// Clear the line (if anything was ever painted) and print a final
    /// one-shot summary ending in a newline.
    pub fn finish(&self) {
        if !self.active {
            return;
        }
        let done = self.done();
        let secs = (self.start.elapsed().as_nanos() as f64 / 1e9).max(1e-9);
        let mut err = std::io::stderr().lock();
        let _ = write!(err, "\r\x1b[2K");
        if self.painted.load(Ordering::Relaxed) > 0 {
            let _ = writeln!(
                err,
                "{}: {done}/{} in {secs:.1}s ({:.1}/s)",
                self.label,
                self.total,
                done as f64 / secs
            );
        }
        let _ = err.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_count_without_a_tty() {
        // Under `cargo test` stderr is not a terminal, so this exercises
        // the inert path: counting works, nothing is painted.
        let p = Progress::new("test", 10);
        assert!(!p.is_active(), "test harness stderr must not be a TTY");
        for _ in 0..7 {
            p.tick();
        }
        p.add(3);
        p.finish();
        assert_eq!(p.done(), 10);
        assert_eq!(p.painted.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn concurrent_ticks_are_exact() {
        let p = std::sync::Arc::new(Progress::new("mt", 400));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = std::sync::Arc::clone(&p);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        p.tick();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().map_err(|_| "ticker panicked").unwrap();
        }
        assert_eq!(p.done(), 400);
    }
}
