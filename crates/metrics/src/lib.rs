//! Zero-perturbation observability for the Hanayo workspace.
//!
//! This crate is the bottom of the dependency graph: a shard-per-thread
//! metrics registry (counters, gauges, fixed-bucket histograms with exact
//! `u64` sums), a leveled structured-logging facade with a `HANAYO_LOG`
//! env filter, two exposition formats (Prometheus text and a JSON
//! snapshot), and a throttled TTY progress line for long sweeps.
//!
//! ## The no-perturbation contract
//!
//! Instrumentation must never change what the instrumented run computes:
//!
//! * **Disabled is (almost) free.** The registry is off by default; every
//!   recording macro first reads one relaxed atomic and branches away.
//!   The criterion guard in `hanayo-bench` bounds this on the sim hot
//!   loop and the gemm dispatch path.
//! * **Enabled never feeds back.** Metrics are write-only from the
//!   instrumented code's point of view: nothing in the workspace reads a
//!   counter to make a decision, so losses, weights, schedules, reports
//!   and golden snapshots are bit-identical with metrics on or off (the
//!   integration suites assert exactly this).
//! * **Snapshots are deterministic.** Counters and histograms are exact
//!   `u64` arithmetic merged by summation, so any thread interleaving of
//!   the same operations yields the same totals; series are emitted in
//!   sorted `(name, labels)` order. Wall-clock observations are routed
//!   through [`set_clock`], so tests pin a [`ClockMode::Fixed`] clock and
//!   get byte-exact expositions.
//!
//! ## Recording
//!
//! ```
//! hanayo_metrics::set_enabled(true);
//! hanayo_metrics::count!("demo_ops_total", &[("kind", "fwd")], 3);
//! hanayo_metrics::gauge!("demo_live_bytes", &[], 4096.0);
//! hanayo_metrics::observe!("demo_wait_ns", &[], hanayo_metrics::NANOS_BUCKETS, 1500);
//! let snap = hanayo_metrics::snapshot();
//! assert_eq!(snap.series.len(), 3);
//! hanayo_metrics::set_enabled(false);
//! hanayo_metrics::reset();
//! ```

pub mod expo;
pub mod log;
pub mod progress;
pub mod registry;

pub use progress::Progress;
pub use registry::{
    counter_add, enabled, gauge_set, observe, reset, set_enabled, snapshot, Series, SeriesValue,
    Snapshot,
};

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Histogram bounds for wall-clock durations in nanoseconds (1µs .. 10s).
pub const NANOS_BUCKETS: &[u64] =
    &[1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000, 10_000_000_000];

/// Histogram bounds for payload sizes in bytes (1 KiB .. 1 GiB).
pub const BYTES_BUCKETS: &[u64] = &[1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26, 1 << 30];

/// Histogram bounds for small percentages (calibration error and the
/// like), in whole percent.
pub const PCT_BUCKETS: &[u64] = &[1, 2, 5, 10, 20, 40, 80, 160];

/// Histogram bounds for small cardinalities (queue depths, retry counts).
pub const COUNT_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Where timestamps and durations come from.
///
/// The default wall clock is what production runs use; tests install a
/// fixed clock so every timestamp renders as the same bytes and every
/// measured duration collapses to zero — making logs and histogram
/// expositions byte-exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Real time: `SystemTime` for timestamps, a monotonic `Instant` for
    /// durations.
    Wall,
    /// Every reading returns exactly this many nanoseconds.
    Fixed(u64),
}

const CLOCK_WALL: u8 = 0;
const CLOCK_FIXED: u8 = 1;

static CLOCK_MODE: AtomicU8 = AtomicU8::new(CLOCK_WALL);
static CLOCK_FIXED_NS: AtomicU64 = AtomicU64::new(0);
static PROCESS_START: OnceLock<Instant> = OnceLock::new();

/// Install the clock every timestamp and duration reading goes through.
pub fn set_clock(mode: ClockMode) {
    match mode {
        ClockMode::Wall => CLOCK_MODE.store(CLOCK_WALL, Ordering::SeqCst),
        ClockMode::Fixed(ns) => {
            CLOCK_FIXED_NS.store(ns, Ordering::SeqCst);
            CLOCK_MODE.store(CLOCK_FIXED, Ordering::SeqCst);
        }
    }
}

/// Wall-clock timestamp in nanoseconds since the Unix epoch (or the fixed
/// value under [`ClockMode::Fixed`]). Used for log timestamps and
/// heartbeat gauges.
pub fn now_nanos() -> u64 {
    if CLOCK_MODE.load(Ordering::Relaxed) == CLOCK_FIXED {
        return CLOCK_FIXED_NS.load(Ordering::Relaxed);
    }
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// Monotonic reading in nanoseconds for measuring durations
/// (`monotonic_nanos() - t0`). Under [`ClockMode::Fixed`] every reading
/// is the same value, so durations are exactly zero.
pub fn monotonic_nanos() -> u64 {
    if CLOCK_MODE.load(Ordering::Relaxed) == CLOCK_FIXED {
        return CLOCK_FIXED_NS.load(Ordering::Relaxed);
    }
    PROCESS_START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Increment a counter, compiled to a single relaxed load + branch when
/// metrics are disabled: `count!(name, labels, delta)` or
/// `count!(name, delta)`.
#[macro_export]
macro_rules! count {
    ($name:expr, $delta:expr) => {
        if $crate::enabled() {
            $crate::counter_add($name, &[], $delta);
        }
    };
    ($name:expr, $labels:expr, $delta:expr) => {
        if $crate::enabled() {
            $crate::counter_add($name, $labels, $delta);
        }
    };
}

/// Set a gauge (last write wins): `gauge!(name, labels, value)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $labels:expr, $value:expr) => {
        if $crate::enabled() {
            $crate::gauge_set($name, $labels, $value);
        }
    };
}

/// Record one histogram observation:
/// `observe!(name, labels, bounds, value)`.
#[macro_export]
macro_rules! observe {
    ($name:expr, $labels:expr, $bounds:expr, $value:expr) => {
        if $crate::enabled() {
            $crate::observe($name, $labels, $bounds, $value);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_clock_pins_both_axes() {
        set_clock(ClockMode::Fixed(42));
        assert_eq!(now_nanos(), 42);
        assert_eq!(monotonic_nanos(), 42);
        assert_eq!(monotonic_nanos().saturating_sub(monotonic_nanos()), 0);
        set_clock(ClockMode::Wall);
        let a = monotonic_nanos();
        let b = monotonic_nanos();
        assert!(b >= a);
    }

    #[test]
    fn bucket_tables_are_sorted() {
        for bounds in [NANOS_BUCKETS, BYTES_BUCKETS, PCT_BUCKETS, COUNT_BUCKETS] {
            assert!(bounds.windows(2).all(|w| w[0] < w[1]), "{bounds:?}");
        }
    }
}
