//! Leveled structured logging with a `HANAYO_LOG` env filter.
//!
//! Events carry a level, a target (the subsystem emitting them), a
//! message, and typed key/value fields. Two sinks: human-readable logfmt
//! lines and JSON lines, both written to stderr by default; tests install
//! a capture sink plus a fixed clock and assert byte-exact output.
//!
//! ## Filter grammar (`HANAYO_LOG`)
//!
//! Comma-separated directives; each is either a bare level (the default
//! for all targets) or `target=level`. The longest target prefix that
//! matches wins. Levels: `off`, `error`, `warn`, `info`, `debug`,
//! `trace`.
//!
//! ```text
//! HANAYO_LOG=info                    # everything at info and above
//! HANAYO_LOG=warn,tuner=debug        # debug for tuner, warn elsewhere
//! HANAYO_LOG=off,calibrate=info      # calibration attempts only
//! ```
//!
//! Unset (or `off`) means logging is disabled; the per-event cost is then
//! one relaxed atomic load.
//!
//! Format selection: `HANAYO_LOG_FORMAT=json` for JSON lines, anything
//! else (or unset) for logfmt.

use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, Once};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Event severity, ordered from most to least verbose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Fine-grained internal detail.
    Trace = 1,
    /// Diagnostic state transitions.
    Debug = 2,
    /// Progress and outcomes of normal operation.
    Info = 3,
    /// Something degraded but the run continues.
    Warn = 4,
    /// The operation failed.
    Error = 5,
}

impl Level {
    /// Lower-case name as it appears in filters and output.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    fn parse(s: &str) -> Option<Option<Level>> {
        match s.trim() {
            "off" => Some(None),
            "error" => Some(Some(Level::Error)),
            "warn" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            _ => None,
        }
    }
}

/// A typed field value on an event.
#[derive(Debug, Clone, Copy)]
pub enum Field<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rendered shortest round-trip).
    F64(f64),
    /// String (quoted/escaped).
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

/// One `target=level` directive (empty target = default).
#[derive(Debug, Clone)]
struct Directive {
    target: String,
    level: Option<Level>,
}

#[derive(Debug, Clone, Default)]
struct Filter {
    directives: Vec<Directive>,
}

impl Filter {
    /// Parse the `HANAYO_LOG` grammar; unknown fragments are ignored
    /// (a typo must not kill a training run).
    fn parse(spec: &str) -> Filter {
        let mut directives = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                Some((target, level)) => {
                    if let Some(level) = Level::parse(level) {
                        directives.push(Directive { target: target.trim().to_string(), level });
                    }
                }
                None => {
                    if let Some(level) = Level::parse(part) {
                        directives.push(Directive { target: String::new(), level });
                    }
                }
            }
        }
        Filter { directives }
    }

    /// Minimum level enabled for `target`: the longest matching target
    /// prefix wins; bare-level directives are the default.
    fn min_level(&self, target: &str) -> Option<Level> {
        let mut best: Option<(&Directive, usize)> = None;
        for d in &self.directives {
            if d.target.is_empty() || target.starts_with(d.target.as_str()) {
                let len = d.target.len();
                if best.is_none_or(|(_, blen)| len >= blen) {
                    best = Some((d, len));
                }
            }
        }
        best.and_then(|(d, _)| d.level)
    }

    /// The most verbose level any directive enables (the fast-path gate).
    fn floor(&self) -> u8 {
        self.directives.iter().filter_map(|d| d.level).map(|l| l as u8).min().unwrap_or(OFF)
    }
}

/// Output encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `ts=.. level=.. target=.. msg=".." k=v` lines.
    Logfmt,
    /// One JSON object per line.
    Json,
}

/// Where rendered lines go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sink {
    /// Standard error (the default).
    Stderr,
    /// An in-process buffer, drained with [`take_capture`] (tests).
    Capture,
}

struct State {
    filter: Filter,
    format: Format,
    sink: Sink,
}

impl Default for State {
    fn default() -> State {
        State { filter: Filter::default(), format: Format::Logfmt, sink: Sink::Stderr }
    }
}

/// `Level as u8` floor of the active filter; `OFF` (255) disables
/// everything and is the value the per-event fast path checks. Starts at
/// 0 (pass everything) so the very first event reaches the lazy env init
/// instead of being dropped before the filter exists.
const OFF: u8 = 255;
static FLOOR: AtomicU8 = AtomicU8::new(0);
static STATE: Mutex<Option<State>> = Mutex::new(None);
static CAPTURE: Mutex<String> = Mutex::new(String::new());
static INIT: Once = Once::new();

fn ensure_init() {
    INIT.call_once(|| {
        let spec = std::env::var("HANAYO_LOG").unwrap_or_default();
        let format = match std::env::var("HANAYO_LOG_FORMAT").as_deref() {
            Ok("json") => Format::Json,
            _ => Format::Logfmt,
        };
        install(&spec, format, Sink::Stderr);
    });
}

fn install(spec: &str, format: Format, sink: Sink) {
    let filter = Filter::parse(spec);
    FLOOR.store(filter.floor(), Ordering::SeqCst);
    *lock(&STATE) = Some(State { filter, format, sink });
}

/// Re-read `HANAYO_LOG` / `HANAYO_LOG_FORMAT` now (binaries call this at
/// startup so the first event does not pay the lazy init).
pub fn init_from_env() {
    ensure_init();
}

/// Install an explicit configuration, bypassing the environment — the
/// byte-exact tests use this together with a fixed clock.
pub fn set_config(spec: &str, format: Format, sink: Sink) {
    INIT.call_once(|| {});
    install(spec, format, sink);
}

/// Drain and return everything the capture sink has accumulated.
pub fn take_capture() -> String {
    std::mem::take(&mut lock(&CAPTURE))
}

/// Would an event at `level` for `target` be emitted? One relaxed load
/// when the whole facade is off.
#[inline]
pub fn log_enabled(level: Level, target: &str) -> bool {
    if (level as u8) < FLOOR.load(Ordering::Relaxed) {
        return false;
    }
    ensure_init();
    let state = lock(&STATE);
    state.as_ref().and_then(|s| s.filter.min_level(target)).is_some_and(|min| level >= min)
}

fn render_field_logfmt(out: &mut String, key: &str, value: &Field<'_>) {
    out.push(' ');
    out.push_str(key);
    out.push('=');
    match value {
        Field::U64(v) => out.push_str(&v.to_string()),
        Field::I64(v) => out.push_str(&v.to_string()),
        Field::F64(v) => out.push_str(&v.to_string()),
        Field::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        Field::Str(v) => {
            out.push('"');
            out.push_str(&v.replace('\\', "\\\\").replace('"', "\\\""));
            out.push('"');
        }
    }
}

fn render_field_json(out: &mut String, key: &str, value: &Field<'_>) {
    out.push_str(",\"");
    out.push_str(&json_escape(key));
    out.push_str("\":");
    match value {
        Field::U64(v) => out.push_str(&v.to_string()),
        Field::I64(v) => out.push_str(&v.to_string()),
        Field::F64(v) => {
            if v.is_finite() {
                out.push_str(&v.to_string());
            } else {
                out.push_str("null");
            }
        }
        Field::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        Field::Str(v) => {
            out.push('"');
            out.push_str(&json_escape(v));
            out.push('"');
        }
    }
}

fn json_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            other => out.push(other),
        }
    }
    out
}

/// Emit one structured event. Fields render in the order given.
pub fn event(level: Level, target: &str, msg: &str, fields: &[(&str, Field<'_>)]) {
    if !log_enabled(level, target) {
        return;
    }
    let ts = crate::now_nanos();
    let (format, sink) = {
        let state = lock(&STATE);
        match state.as_ref() {
            Some(s) => (s.format, s.sink),
            None => (Format::Logfmt, Sink::Stderr),
        }
    };
    let mut line = String::with_capacity(96);
    match format {
        Format::Logfmt => {
            line.push_str("ts_ns=");
            line.push_str(&ts.to_string());
            line.push_str(" level=");
            line.push_str(level.as_str());
            line.push_str(" target=");
            line.push_str(target);
            line.push_str(" msg=\"");
            line.push_str(&msg.replace('\\', "\\\\").replace('"', "\\\""));
            line.push('"');
            for (k, v) in fields {
                render_field_logfmt(&mut line, k, v);
            }
        }
        Format::Json => {
            line.push_str("{\"ts_ns\":");
            line.push_str(&ts.to_string());
            line.push_str(",\"level\":\"");
            line.push_str(level.as_str());
            line.push_str("\",\"target\":\"");
            line.push_str(&json_escape(target));
            line.push_str("\",\"msg\":\"");
            line.push_str(&json_escape(msg));
            line.push('"');
            for (k, v) in fields {
                render_field_json(&mut line, k, v);
            }
            line.push('}');
        }
    }
    line.push('\n');
    match sink {
        Sink::Stderr => {
            let mut err = std::io::stderr().lock();
            let _ = err.write_all(line.as_bytes());
        }
        Sink::Capture => lock(&CAPTURE).push_str(&line),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_clock, ClockMode};

    /// Logging state is process-global; serialize the tests that mutate
    /// it.
    fn isolated(f: impl FnOnce()) {
        static GATE: Mutex<()> = Mutex::new(());
        let _guard = lock(&GATE);
        take_capture();
        f();
        set_config("off", Format::Logfmt, Sink::Stderr);
        set_clock(ClockMode::Wall);
        take_capture();
    }

    #[test]
    fn filter_grammar() {
        let f = Filter::parse("warn,tuner=debug,tuner::inner=trace,junk=zzz,,nonsense");
        assert_eq!(f.min_level("worker"), Some(Level::Warn));
        assert_eq!(f.min_level("tuner"), Some(Level::Debug));
        assert_eq!(f.min_level("tuner::inner"), Some(Level::Trace));
        let off = Filter::parse("off,calibrate=info");
        assert_eq!(off.min_level("worker"), None);
        assert_eq!(off.min_level("calibrate"), Some(Level::Info));
        assert_eq!(Filter::parse("").min_level("x"), None);
    }

    #[test]
    fn logfmt_output_is_byte_exact_under_a_fixed_clock() {
        isolated(|| {
            set_clock(ClockMode::Fixed(1234));
            set_config("info", Format::Logfmt, Sink::Capture);
            event(
                Level::Info,
                "calibrate",
                "attempt done",
                &[
                    ("attempt", Field::U64(1)),
                    ("rel_err_pct", Field::F64(12.5)),
                    ("pass", Field::Bool(true)),
                    ("note", Field::Str("quote \" here")),
                ],
            );
            event(Level::Debug, "calibrate", "filtered out", &[]);
            assert_eq!(
                take_capture(),
                "ts_ns=1234 level=info target=calibrate msg=\"attempt done\" \
                 attempt=1 rel_err_pct=12.5 pass=true note=\"quote \\\" here\"\n"
            );
        });
    }

    #[test]
    fn json_output_is_byte_exact_under_a_fixed_clock() {
        isolated(|| {
            set_clock(ClockMode::Fixed(7));
            set_config("debug", Format::Json, Sink::Capture);
            event(
                Level::Warn,
                "ckpt",
                "crc mismatch",
                &[("stored", Field::U64(1)), ("computed", Field::U64(2))],
            );
            assert_eq!(
                take_capture(),
                "{\"ts_ns\":7,\"level\":\"warn\",\"target\":\"ckpt\",\
                 \"msg\":\"crc mismatch\",\"stored\":1,\"computed\":2}\n"
            );
        });
    }

    #[test]
    fn off_filter_emits_nothing() {
        isolated(|| {
            set_config("off", Format::Logfmt, Sink::Capture);
            event(Level::Error, "anything", "dropped", &[]);
            assert_eq!(take_capture(), "");
            assert!(!log_enabled(Level::Error, "anything"));
        });
    }
}
