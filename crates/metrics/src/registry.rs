//! The shard-per-thread metrics registry.
//!
//! Every thread that records gets its own shard (a small hash map behind
//! a mutex only that thread ever contends on); [`snapshot`] merges all
//! shards into one sorted, deterministic view. Counters and histogram
//! cells are exact `u64` arithmetic, so the merged totals are independent
//! of thread interleaving — the property the concurrent-writer proptests
//! pin against a serial replay.
//!
//! Gauges are last-write-wins across shards, ordered by a global write
//! sequence (not wall time), so "last" is well defined even when two
//! shards hold a value for the same series.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Lock a mutex, absorbing poisoning: a panic on another thread must not
/// cascade into the observability layer (the data is still consistent —
/// every cell update is a single guarded mutation).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is the registry recording? One relaxed load — this is the whole cost
/// of an instrumentation site when metrics are off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on or off (off is the default).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Identity of one series: metric name plus sorted-as-given label pairs.
/// Label *names* are static (they are part of the schema); label values
/// are rendered per call.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Key {
    name: &'static str,
    labels: Vec<(&'static str, String)>,
}

fn key(name: &'static str, labels: &[(&'static str, &str)]) -> Key {
    Key { name, labels: labels.iter().map(|&(k, v)| (k, v.to_string())).collect() }
}

enum Cell {
    Counter(u64),
    Gauge { seq: u64, value: f64 },
    Hist { bounds: &'static [u64], counts: Vec<u64>, sum: u64, count: u64 },
}

#[derive(Default)]
struct Shard {
    cells: Mutex<HashMap<Key, Cell>>,
}

struct Registry {
    shards: Mutex<Vec<Arc<Shard>>>,
    gauge_seq: AtomicU64,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY
        .get_or_init(|| Registry { shards: Mutex::new(Vec::new()), gauge_seq: AtomicU64::new(0) })
}

thread_local! {
    static LOCAL: std::cell::OnceCell<Arc<Shard>> = const { std::cell::OnceCell::new() };
}

fn with_shard(f: impl FnOnce(&Shard)) {
    LOCAL.with(|cell| {
        let shard = cell.get_or_init(|| {
            let shard = Arc::new(Shard::default());
            lock(&registry().shards).push(Arc::clone(&shard));
            shard
        });
        f(shard);
    });
}

/// Add `delta` to a counter series. No-op while disabled.
pub fn counter_add(name: &'static str, labels: &[(&'static str, &str)], delta: u64) {
    if !enabled() {
        return;
    }
    with_shard(|shard| {
        let mut cells = lock(&shard.cells);
        if let Cell::Counter(v) = cells.entry(key(name, labels)).or_insert(Cell::Counter(0)) {
            *v = v.saturating_add(delta);
        }
    });
}

/// Set a gauge series (last write wins, ordered by write sequence).
/// No-op while disabled.
pub fn gauge_set(name: &'static str, labels: &[(&'static str, &str)], value: f64) {
    if !enabled() {
        return;
    }
    let seq = registry().gauge_seq.fetch_add(1, Ordering::Relaxed);
    with_shard(|shard| {
        let mut cells = lock(&shard.cells);
        if let Cell::Gauge { seq: s, value: v } =
            cells.entry(key(name, labels)).or_insert(Cell::Gauge { seq, value })
        {
            if seq >= *s {
                *s = seq;
                *v = value;
            }
        }
    });
}

/// Record one observation in a fixed-bucket histogram series. `bounds`
/// must be strictly increasing upper bounds (`le` semantics; an implicit
/// `+Inf` bucket is appended). The first registration of a series fixes
/// its bounds. No-op while disabled.
pub fn observe(
    name: &'static str,
    labels: &[(&'static str, &str)],
    bounds: &'static [u64],
    value: u64,
) {
    if !enabled() {
        return;
    }
    with_shard(|shard| {
        let mut cells = lock(&shard.cells);
        let cell = cells.entry(key(name, labels)).or_insert_with(|| Cell::Hist {
            bounds,
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            count: 0,
        });
        if let Cell::Hist { bounds, counts, sum, count } = cell {
            let idx = bounds.iter().position(|&b| value <= b).unwrap_or(bounds.len());
            if let Some(c) = counts.get_mut(idx) {
                *c = c.saturating_add(1);
            }
            *sum = sum.saturating_add(value);
            *count = count.saturating_add(1);
        }
    });
}

/// One merged series in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Metric name.
    pub name: String,
    /// Label pairs, in recording order.
    pub labels: Vec<(String, String)>,
    /// Merged value.
    pub value: SeriesValue,
}

/// The merged value of a series.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesValue {
    /// Sum over shards.
    Counter(u64),
    /// Last write (by global write sequence) over shards.
    Gauge(f64),
    /// Element-wise sums over shards; `counts` has one entry per bound
    /// plus the trailing `+Inf` bucket.
    Histogram {
        /// Upper bounds (`le`), strictly increasing.
        bounds: Vec<u64>,
        /// Per-bucket observation counts.
        counts: Vec<u64>,
        /// Exact sum of all observed values.
        sum: u64,
        /// Total observations.
        count: u64,
    },
}

/// A deterministic, sorted view of every series across every shard.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Series sorted by `(name, labels)`.
    pub series: Vec<Series>,
}

enum Merged {
    Counter(u64),
    Gauge { seq: u64, value: f64 },
    Hist { bounds: Vec<u64>, counts: Vec<u64>, sum: u64, count: u64 },
}

/// Merge every shard into a sorted snapshot. Counters/histograms sum;
/// gauges keep the highest-sequence write. Series whose cell types
/// disagree across shards (a schema bug in the caller) keep the first
/// kind seen and ignore the rest rather than failing.
pub fn snapshot() -> Snapshot {
    let shards: Vec<Arc<Shard>> = lock(&registry().shards).clone();
    let mut merged: BTreeMap<Key, Merged> = BTreeMap::new();
    for shard in &shards {
        let cells = lock(&shard.cells);
        for (k, cell) in cells.iter() {
            match cell {
                Cell::Counter(v) => {
                    if let Merged::Counter(total) =
                        merged.entry(k.clone()).or_insert(Merged::Counter(0))
                    {
                        *total = total.saturating_add(*v);
                    }
                }
                Cell::Gauge { seq, value } => {
                    if let Merged::Gauge { seq: s, value: v } = merged
                        .entry(k.clone())
                        .or_insert(Merged::Gauge { seq: *seq, value: *value })
                    {
                        if *seq >= *s {
                            *s = *seq;
                            *v = *value;
                        }
                    }
                }
                Cell::Hist { bounds, counts, sum, count } => {
                    let entry = merged.entry(k.clone()).or_insert_with(|| Merged::Hist {
                        bounds: bounds.to_vec(),
                        counts: vec![0; counts.len()],
                        sum: 0,
                        count: 0,
                    });
                    if let Merged::Hist { counts: mc, sum: ms, count: mn, .. } = entry {
                        for (m, c) in mc.iter_mut().zip(counts.iter()) {
                            *m = m.saturating_add(*c);
                        }
                        *ms = ms.saturating_add(*sum);
                        *mn = mn.saturating_add(*count);
                    }
                }
            }
        }
    }
    let series = merged
        .into_iter()
        .map(|(k, v)| Series {
            name: k.name.to_string(),
            labels: k.labels.into_iter().map(|(n, val)| (n.to_string(), val)).collect(),
            value: match v {
                Merged::Counter(v) => SeriesValue::Counter(v),
                Merged::Gauge { value, .. } => SeriesValue::Gauge(value),
                Merged::Hist { bounds, counts, sum, count } => {
                    SeriesValue::Histogram { bounds, counts, sum, count }
                }
            },
        })
        .collect();
    Snapshot { series }
}

/// Clear every shard's cells (shard registrations survive — threads keep
/// their handle) and reset the gauge write sequence. Test isolation.
pub fn reset() {
    let shards: Vec<Arc<Shard>> = lock(&registry().shards).clone();
    for shard in &shards {
        lock(&shard.cells).clear();
    }
    registry().gauge_seq.store(0, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Registry state is process-global; every test that records runs
    /// under this lock and starts from a clean slate.
    fn isolated(f: impl FnOnce()) {
        static GATE: Mutex<()> = Mutex::new(());
        let _guard = lock(&GATE);
        reset();
        set_enabled(true);
        f();
        set_enabled(false);
        reset();
    }

    fn counter_value(snap: &Snapshot, name: &str) -> u64 {
        snap.series
            .iter()
            .find(|s| s.name == name)
            .map(|s| match s.value {
                SeriesValue::Counter(v) => v,
                _ => panic!("{name} is not a counter"),
            })
            .unwrap_or(0)
    }

    #[test]
    fn disabled_records_nothing() {
        isolated(|| {
            set_enabled(false);
            counter_add("off_total", &[], 5);
            gauge_set("off_gauge", &[], 1.0);
            observe("off_hist", &[], &[10], 3);
            set_enabled(true);
            assert!(snapshot().series.is_empty());
        });
    }

    #[test]
    fn counters_sum_across_threads() {
        isolated(|| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    std::thread::spawn(|| {
                        for _ in 0..100 {
                            counter_add("threads_total", &[], 1);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().map_err(|_| "worker panicked").unwrap();
            }
            assert_eq!(counter_value(&snapshot(), "threads_total"), 400);
        });
    }

    #[test]
    fn labels_split_series() {
        isolated(|| {
            counter_add("lbl_total", &[("kind", "a")], 1);
            counter_add("lbl_total", &[("kind", "b")], 2);
            counter_add("lbl_total", &[("kind", "a")], 3);
            let snap = snapshot();
            let values: Vec<(String, u64)> = snap
                .series
                .iter()
                .map(|s| {
                    let v = match s.value {
                        SeriesValue::Counter(v) => v,
                        _ => 0,
                    };
                    (s.labels[0].1.clone(), v)
                })
                .collect();
            assert_eq!(values, vec![("a".to_string(), 4), ("b".to_string(), 2)]);
        });
    }

    #[test]
    fn gauge_last_write_wins() {
        isolated(|| {
            gauge_set("g", &[], 1.0);
            gauge_set("g", &[], 2.5);
            let snap = snapshot();
            assert_eq!(snap.series[0].value, SeriesValue::Gauge(2.5));
        });
    }

    #[test]
    fn histogram_buckets_sum_and_count_exactly() {
        isolated(|| {
            let bounds: &'static [u64] = &[10, 100];
            for v in [5u64, 7, 50, 1000] {
                observe("h", &[], bounds, v);
            }
            let snap = snapshot();
            match &snap.series[0].value {
                SeriesValue::Histogram { bounds, counts, sum, count } => {
                    assert_eq!(bounds, &vec![10, 100]);
                    assert_eq!(counts, &vec![2, 1, 1]);
                    assert_eq!(*sum, 1062);
                    assert_eq!(*count, 4);
                }
                other => panic!("expected histogram, got {other:?}"),
            }
        });
    }

    #[test]
    fn snapshot_is_sorted_and_reset_clears() {
        isolated(|| {
            counter_add("z_total", &[], 1);
            counter_add("a_total", &[], 1);
            let names: Vec<String> = snapshot().series.into_iter().map(|s| s.name).collect();
            assert_eq!(names, vec!["a_total", "z_total"]);
            reset();
            assert!(snapshot().series.is_empty());
        });
    }
}
