//! Exposition: render a [`Snapshot`] as Prometheus text or as a JSON
//! document, and grammar-check the Prometheus rendering.
//!
//! Both renderings are pure functions of the snapshot, which is itself
//! sorted — so for a deterministic run the bytes are reproducible and can
//! be frozen as golden files. Floats render with Rust's shortest
//! round-trip formatting.

use crate::registry::{Series, SeriesValue, Snapshot};
use std::fmt::Write as _;

/// Schema tag of the JSON exposition.
pub const JSON_SCHEMA: &str = "hanayo-metrics-v1";

fn type_name(v: &SeriesValue) -> &'static str {
    match v {
        SeriesValue::Counter(_) => "counter",
        SeriesValue::Gauge(_) => "gauge",
        SeriesValue::Histogram { .. } => "histogram",
    }
}

/// Escape a label value per the Prometheus text format.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Render `{a="x",b="y"}`, optionally with a trailing `le` pair; empty
/// label sets render as the empty string (bare metric name).
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Render the snapshot in the Prometheus text exposition format. A
/// `# TYPE` comment precedes the first series of each metric name.
pub fn prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for s in &snap.series {
        if last_name != Some(s.name.as_str()) {
            let _ = writeln!(out, "# TYPE {} {}", s.name, type_name(&s.value));
            last_name = Some(s.name.as_str());
        }
        match &s.value {
            SeriesValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {v}", s.name, label_block(&s.labels, None));
            }
            SeriesValue::Gauge(v) => {
                let _ = writeln!(out, "{}{} {v}", s.name, label_block(&s.labels, None));
            }
            SeriesValue::Histogram { bounds, counts, sum, count } => {
                let mut cumulative = 0u64;
                for (b, c) in bounds.iter().zip(counts.iter()) {
                    cumulative = cumulative.saturating_add(*c);
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {cumulative}",
                        s.name,
                        label_block(&s.labels, Some(&b.to_string()))
                    );
                }
                cumulative = cumulative.saturating_add(*counts.last().unwrap_or(&0));
                let _ = writeln!(
                    out,
                    "{}_bucket{} {cumulative}",
                    s.name,
                    label_block(&s.labels, Some("+Inf"))
                );
                let _ = writeln!(out, "{}_sum{} {sum}", s.name, label_block(&s.labels, None));
                let _ = writeln!(out, "{}_count{} {count}", s.name, label_block(&s.labels, None));
            }
        }
    }
    out
}

fn json_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            other => out.push(other),
        }
    }
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", parts.join(","))
}

fn json_series(s: &Series) -> String {
    let head = format!(
        "{{\"name\":\"{}\",\"type\":\"{}\",\"labels\":{}",
        json_escape(&s.name),
        type_name(&s.value),
        json_labels(&s.labels)
    );
    match &s.value {
        SeriesValue::Counter(v) => format!("{head},\"value\":{v}}}"),
        SeriesValue::Gauge(v) => format!("{head},\"value\":{v}}}"),
        SeriesValue::Histogram { bounds, counts, sum, count } => {
            let buckets: Vec<String> = bounds
                .iter()
                .map(|b| b.to_string())
                .chain(std::iter::once("\"+Inf\"".to_string()))
                .zip(counts.iter())
                .map(|(le, c)| format!("[{le},{c}]"))
                .collect();
            format!("{head},\"buckets\":[{}],\"sum\":{sum},\"count\":{count}}}", buckets.join(","))
        }
    }
}

/// Render the snapshot as a single JSON document (schema
/// [`JSON_SCHEMA`]): `{"schema":...,"series":[...]}` with one object per
/// series in snapshot order. Histogram buckets are `[le, count]` pairs
/// with per-bucket (not cumulative) counts and a final `"+Inf"` bucket.
pub fn json(snap: &Snapshot) -> String {
    let series: Vec<String> = snap.series.iter().map(json_series).collect();
    format!("{{\"schema\":\"{JSON_SCHEMA}\",\"series\":[\n{}\n]}}\n", series.join(",\n"))
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Split `name{labels} value` into its three parts, validating the label
/// block's `k="v"` grammar.
fn parse_sample(line: &str) -> Result<(String, f64), String> {
    let (name_part, rest) = match line.find('{') {
        Some(open) => {
            let close = line.rfind('}').ok_or_else(|| format!("unclosed label block: {line:?}"))?;
            if close < open {
                return Err(format!("malformed label block: {line:?}"));
            }
            let labels = &line[open + 1..close];
            if !labels.is_empty() {
                for pair in split_label_pairs(labels)? {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("label pair without '=': {pair:?}"))?;
                    if !valid_label_name(k) {
                        return Err(format!("bad label name {k:?} in {line:?}"));
                    }
                    if !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                        return Err(format!("unquoted label value {v:?} in {line:?}"));
                    }
                }
            }
            (&line[..open], line[close + 1..].trim())
        }
        None => {
            let (n, v) =
                line.split_once(' ').ok_or_else(|| format!("sample without value: {line:?}"))?;
            (n, v.trim())
        }
    };
    if !valid_metric_name(name_part) {
        return Err(format!("bad metric name {name_part:?}"));
    }
    let value: f64 = if rest == "+Inf" {
        f64::INFINITY
    } else {
        rest.parse().map_err(|e| format!("bad sample value {rest:?}: {e}"))?
    };
    Ok((name_part.to_string(), value))
}

/// Split a label block on commas that sit outside quoted values.
fn split_label_pairs(block: &str) -> Result<Vec<String>, String> {
    let mut pairs = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut escaped = false;
    for c in block.chars() {
        if escaped {
            cur.push(c);
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => {
                cur.push(c);
                escaped = true;
            }
            '"' => {
                cur.push(c);
                in_quotes = !in_quotes;
            }
            ',' if !in_quotes => {
                pairs.push(std::mem::take(&mut cur));
            }
            other => cur.push(other),
        }
    }
    if in_quotes {
        return Err(format!("unterminated quote in label block {block:?}"));
    }
    if !cur.is_empty() {
        pairs.push(cur);
    }
    Ok(pairs)
}

/// Grammar-check a Prometheus text exposition: every sample line parses,
/// every metric name is legal, every sample's base name was declared by a
/// preceding `# TYPE` line, and histogram `_bucket` series are
/// cumulative-monotone. Returns the number of sample lines.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut typed: Vec<(String, String)> = Vec::new();
    let mut samples = 0usize;
    let mut last_bucket: Option<(String, f64)> = None;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let words: Vec<&str> = comment.split_whitespace().collect();
            if words.first() == Some(&"TYPE") {
                let name = words.get(1).ok_or(format!("line {lineno}: TYPE without name"))?;
                let kind = words.get(2).ok_or(format!("line {lineno}: TYPE without kind"))?;
                if !valid_metric_name(name) {
                    return Err(format!("line {lineno}: bad TYPE name {name:?}"));
                }
                if !["counter", "gauge", "histogram", "summary", "untyped"].contains(kind) {
                    return Err(format!("line {lineno}: unknown TYPE kind {kind:?}"));
                }
                typed.push((name.to_string(), kind.to_string()));
            }
            continue;
        }
        let (name, value) = parse_sample(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let declared = typed.iter().any(|(n, kind)| {
            name == *n
                || (kind == "histogram"
                    && [format!("{n}_bucket"), format!("{n}_sum"), format!("{n}_count")]
                        .contains(&name))
        });
        if !declared {
            return Err(format!("line {lineno}: sample {name:?} has no preceding TYPE"));
        }
        if name.ends_with("_bucket") {
            let series = line.split(' ').next().unwrap_or("").to_string();
            let series_base = series.split("le=").next().unwrap_or("").to_string();
            if let Some((prev_base, prev)) = &last_bucket {
                if *prev_base == series_base && value < *prev {
                    return Err(format!(
                        "line {lineno}: histogram buckets not cumulative ({value} < {prev})"
                    ));
                }
            }
            last_bucket = Some((series_base, value));
        } else {
            last_bucket = None;
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples".to_string());
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            series: vec![
                Series {
                    name: "a_total".into(),
                    labels: vec![("kind".into(), "x\"y".into())],
                    value: SeriesValue::Counter(7),
                },
                Series { name: "g_bytes".into(), labels: vec![], value: SeriesValue::Gauge(2.5) },
                Series {
                    name: "h_ns".into(),
                    labels: vec![("device".into(), "0".into())],
                    value: SeriesValue::Histogram {
                        bounds: vec![10, 100],
                        counts: vec![2, 1, 1],
                        sum: 1062,
                        count: 4,
                    },
                },
            ],
        }
    }

    #[test]
    fn prometheus_rendering_is_exact() {
        let text = prometheus(&sample_snapshot());
        let expected = "\
# TYPE a_total counter
a_total{kind=\"x\\\"y\"} 7
# TYPE g_bytes gauge
g_bytes 2.5
# TYPE h_ns histogram
h_ns_bucket{device=\"0\",le=\"10\"} 2
h_ns_bucket{device=\"0\",le=\"100\"} 3
h_ns_bucket{device=\"0\",le=\"+Inf\"} 4
h_ns_sum{device=\"0\"} 1062
h_ns_count{device=\"0\"} 4
";
        assert_eq!(text, expected);
    }

    #[test]
    fn own_rendering_validates() {
        let text = prometheus(&sample_snapshot());
        assert_eq!(validate_prometheus(&text).unwrap(), 7);
    }

    #[test]
    fn validator_rejects_bad_documents() {
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("x_total 1\n").is_err(), "sample without TYPE");
        assert!(validate_prometheus("# TYPE x_total counter\nx_total{k=v} 1\n").is_err());
        assert!(validate_prometheus("# TYPE x_total counter\nx_total oops\n").is_err());
        assert!(validate_prometheus("# TYPE 9bad counter\n9bad 1\n").is_err());
        let shrinking = "# TYPE h histogram\n\
                         h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n";
        assert!(validate_prometheus(shrinking).is_err(), "non-cumulative buckets");
    }

    #[test]
    fn json_rendering_is_exact() {
        let text = json(&sample_snapshot());
        let expected = "{\"schema\":\"hanayo-metrics-v1\",\"series\":[\n\
            {\"name\":\"a_total\",\"type\":\"counter\",\"labels\":{\"kind\":\"x\\\"y\"},\"value\":7},\n\
            {\"name\":\"g_bytes\",\"type\":\"gauge\",\"labels\":{},\"value\":2.5},\n\
            {\"name\":\"h_ns\",\"type\":\"histogram\",\"labels\":{\"device\":\"0\"},\"buckets\":[[10,2],[100,1],[\"+Inf\",1]],\"sum\":1062,\"count\":4}\n\
            ]}\n";
        assert_eq!(text, expected);
    }
}
