//! Typed verdicts of the static analyses.

use hanayo_core::action::MsgTag;
use hanayo_core::ids::DeviceId;
use hanayo_core::schedule::table::TableError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One step of a happens-before cycle: an action coordinate plus its
/// rendered form, so the offending slot cycle reads like the schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleNode {
    /// Device whose action list contains the step.
    pub device: DeviceId,
    /// Index into that device's action list.
    pub index: usize,
    /// Display form of the action (`F(mb0,S1)`, `recv[act:mb0@S1 <- P0]`).
    pub action: String,
}

impl fmt::Display for CycleNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}:{}", self.device, self.index, self.action)
    }
}

/// A statically-provable defect in a schedule. Every variant names the
/// offending coordinates, mirroring [`TableError`]'s convention.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AnalysisError {
    /// The tabular IR itself is malformed (shape, completeness, chain
    /// order, recompute typing, stash caps) — surfaced before any DAG is
    /// built when analysing a table.
    Table(TableError),
    /// The cost table's stage count differs from the schedule's.
    StageCountMismatch {
        /// Stages in the schedule's stage map.
        schedule: u32,
        /// Stages in the cost table.
        cost: u32,
    },
    /// The cluster's device count differs from the schedule's.
    DeviceCountMismatch {
        /// Devices in the schedule.
        schedule: usize,
        /// Devices in the cluster.
        cluster: usize,
    },
    /// A receive with no matching send on the named peer.
    UnmatchedRecv {
        /// Device posting the receive.
        device: DeviceId,
        /// Index of the action containing it.
        index: usize,
        /// The orphaned message.
        tag: MsgTag,
    },
    /// A send whose destination never posts the matching receive.
    UnmatchedSend {
        /// Device posting the send.
        device: DeviceId,
        /// Index of the action containing it.
        index: usize,
        /// The orphaned message.
        tag: MsgTag,
    },
    /// The same message is sent or received more than once.
    DuplicateMessage {
        /// Device of the second occurrence.
        device: DeviceId,
        /// Action index of the second occurrence.
        index: usize,
        /// The duplicated message.
        tag: MsgTag,
    },
    /// A receive naming the wrong peer for its matching send.
    PeerMismatch {
        /// Device posting the receive.
        device: DeviceId,
        /// Action index of the receive.
        index: usize,
        /// The message.
        tag: MsgTag,
        /// Peer the receive names.
        declared: DeviceId,
        /// Device actually posting the send.
        actual: DeviceId,
    },
    /// Two messages on the same directed link whose sender order inverts
    /// their receiver order — a FIFO channel (NCCL p2p without tags)
    /// would deadlock on this pair even though tag matching does not.
    FifoInversion {
        /// Sending device of the link.
        src: DeviceId,
        /// Receiving device of the link.
        dst: DeviceId,
        /// Message posted first by the sender.
        first: MsgTag,
        /// Message the receiver blocks on first.
        second: MsgTag,
    },
    /// The happens-before DAG has a cycle: the schedule deadlocks. The
    /// cycle lists the wait chain in order, ending where it began.
    Cycle {
        /// The offending action cycle.
        cycle: Vec<CycleNode>,
    },
}

impl From<TableError> for AnalysisError {
    fn from(e: TableError) -> Self {
        AnalysisError::Table(e)
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Table(e) => write!(f, "table invariant violated: {e}"),
            AnalysisError::StageCountMismatch { schedule, cost } => {
                write!(f, "schedule has {schedule} stages, cost table has {cost}")
            }
            AnalysisError::DeviceCountMismatch { schedule, cluster } => {
                write!(f, "schedule has {schedule} devices, cluster has {cluster}")
            }
            AnalysisError::UnmatchedRecv { device, index, tag } => {
                write!(f, "recv[{tag}] at {device}#{index} has no matching send")
            }
            AnalysisError::UnmatchedSend { device, index, tag } => {
                write!(f, "send[{tag}] at {device}#{index} has no matching recv")
            }
            AnalysisError::DuplicateMessage { device, index, tag } => {
                write!(f, "message {tag} duplicated at {device}#{index}")
            }
            AnalysisError::PeerMismatch { device, index, tag, declared, actual } => {
                write!(
                    f,
                    "recv[{tag}] at {device}#{index} names peer {declared}, sender is {actual}"
                )
            }
            AnalysisError::FifoInversion { src, dst, first, second } => {
                write!(
                    f,
                    "link {src}->{dst}: sender posts {first} before {second}, \
                     receiver blocks on {second} first"
                )
            }
            AnalysisError::Cycle { cycle } => {
                write!(f, "happens-before cycle: ")?;
                for (i, node) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{node}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for AnalysisError {}
