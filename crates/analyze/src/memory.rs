//! Static peak-memory bounds via activation-liveness dataflow.
//!
//! A device's compute is serial, so its memory trajectory is a pure
//! function of its op *order*: every forward acquires its stage's stash
//! bytes, every backward releases them, and the engine samples the peak
//! after each forward. Replaying that prefix sum over the schedule
//! reproduces the simulator's `peak_mem` *exactly* — not merely a bound —
//! which is what lets the tuner reject OOM candidates without simulating.
//! The four-way invariant (runtime stash == sim stash == unit replay ==
//! this analysis) is pinned by `tests/memory_truth.rs`.

use hanayo_core::action::{Action, Schedule};
use hanayo_core::chain::ComputeSchedule;
use hanayo_core::ids::DeviceId;
use hanayo_core::stage_map::StageMap;
use hanayo_model::CostTable;

/// Static weight+optimizer bytes per device: the sum of
/// [`CostTable::weight_bytes`] over the stages each device holds
/// (replicated groups count twice). Matches the engine's baseline.
pub fn device_weight_mem(stage_map: &StageMap, cost: &CostTable) -> Vec<u64> {
    (0..stage_map.devices)
        .map(|d| {
            stage_map
                .modules_on(DeviceId(d))
                .iter()
                .map(|&(_, stage)| cost.weight_bytes[stage.idx()])
                .sum()
        })
        .collect()
}

/// Replay one device's op order: `(backward, stage)` pairs in execution
/// order, against the engine's exact accounting — start at the weight
/// baseline, add stash at forward completion (sampling the peak there),
/// saturating-subtract at backward completion.
fn replay_device(ops: impl Iterator<Item = (bool, usize)>, weight: u64, cost: &CostTable) -> u64 {
    let mut cur = weight;
    let mut peak = weight;
    for (backward, stage) in ops {
        let bytes = cost.stash_bytes[stage];
        if backward {
            cur = cur.saturating_sub(bytes);
        } else {
            cur += bytes;
            peak = peak.max(cur);
        }
    }
    peak
}

/// Static peak bytes per device of a lowered schedule — equal to the
/// simulator's `SimReport::peak_mem` on every schedule the simulator
/// completes.
pub fn static_peak_mem(schedule: &Schedule, cost: &CostTable) -> Vec<u64> {
    let weights = device_weight_mem(&schedule.stage_map, cost);
    schedule
        .lists
        .iter()
        .zip(&weights)
        .map(|(list, &w)| {
            let ops = list.actions.iter().filter_map(|a| match *a {
                Action::Forward { stage, .. } => Some((false, stage.idx())),
                Action::Backward { stage, .. } => Some((true, stage.idx())),
                _ => None,
            });
            replay_device(ops, w, cost)
        })
        .collect()
}

/// [`static_peak_mem`] over the compute-only form (tables lower to this
/// before communication insertion; comm does not move memory).
pub fn static_peak_mem_compute(cs: &ComputeSchedule, cost: &CostTable) -> Vec<u64> {
    let weights = device_weight_mem(&cs.stage_map, cost);
    cs.per_device
        .iter()
        .zip(&weights)
        .map(|(ops, &w)| replay_device(ops.iter().map(|op| (op.backward, op.stage.idx())), w, cost))
        .collect()
}

/// The activation-stash component of the peak: `peak − weight` per
/// device. This is the quantity the memory-truth suite compares across
/// the runtime, the simulator, the unit replay and this analysis.
pub fn static_stash_peak(schedule: &Schedule, cost: &CostTable) -> Vec<u64> {
    let weights = device_weight_mem(&schedule.stage_map, cost);
    static_peak_mem(schedule, cost).iter().zip(&weights).map(|(&p, &w)| p - w).collect()
}
