//! # hanayo-analyze
//!
//! Static verification of pipeline schedules — proofs the simulator would
//! otherwise only discover by running:
//!
//! * **Deadlock freedom** — the explicit happens-before DAG over a
//!   lowered [`hanayo_core::action::Schedule`] (program order per device,
//!   matched send→recv message edges, enter/exit splitting for batched
//!   comm) is acyclic iff the simulator never reports a deadlock. Cycles
//!   come back as [`AnalysisError::Cycle`] naming the wait chain.
//! * **Communication well-formedness** — every cross-stage dependency has
//!   exactly one matched send/recv pair with consistent peers. Per-link
//!   FIFO order is additionally *reported* (not enforced): tag-matched
//!   rendezvous tolerates inversions and legal searched tables produce
//!   them, but a strict FIFO channel would deadlock on one.
//! * **Static peak memory** — an activation-liveness replay over each
//!   device's serial op order that reproduces the simulator's `peak_mem`
//!   *exactly*, making OOM a statically decidable verdict
//!   ([`memory::static_peak_mem`]).
//! * **Critical-path bound** — the longest path through the DAG weighted
//!   by a [`hanayo_model::CostTable`] and a
//!   [`hanayo_cluster::ClusterSpec`]; an admissible lower bound on the
//!   simulated iteration time ([`critical::critical_path`]).
//!
//! [`report::analyze`] / [`report::analyze_table`] bundle all four into
//! one [`AnalysisReport`]; `hanayo-sim` consumes the pieces as a pre-pass
//! that rejects deadlocked or OOM candidates before paying for a
//! simulation.

pub mod critical;
pub mod dag;
pub mod error;
pub mod memory;
pub mod report;

pub use critical::critical_path;
pub use dag::{EdgeKind, HappensBefore, Message};
pub use error::{AnalysisError, CycleNode};
pub use memory::{device_weight_mem, static_peak_mem, static_peak_mem_compute, static_stash_peak};
pub use report::{analyze, analyze_table, check_deadlock_free, AnalysisReport, DagStats};
