//! The explicit happens-before DAG of a lowered [`Schedule`].
//!
//! Every action is split into an *enter* and an *exit* node, because the
//! engine's blocking semantics are asymmetric within one action: a
//! [`Action::BatchedComm`] posts its member sends the moment the device
//! reaches it (enter) but completes only when every member receive has
//! arrived (exit). Modelling the batch as a single node would manufacture
//! cycles for exactly the §4.2 cross-communication pattern the batching
//! exists to make safe.
//!
//! Edges:
//!
//! * **span** `enter(a) → exit(a)` — the action's own duration;
//! * **program order** `exit(d, i) → enter(d, i+1)` — devices execute
//!   their lists serially;
//! * **message** `enter(send) → exit(recv)` — a rendezvous transfer can
//!   start once the send is posted, and the receiver cannot pass its
//!   blocking point before the message arrives.
//!
//! A cycle in this graph is precisely a schedule the simulator reports as
//! [`SimError::Deadlock`]: sends never block, so the only wait chains run
//! through receive exits, and those are exactly the message edges.
//! Per-link FIFO serialisation is a *resource* constraint (transfers
//! queue, but the queue always drains), so it can delay a schedule but
//! never deadlock it — it is checked separately by
//! [`HappensBefore::check_fifo`] as a well-formedness property.
//!
//! [`SimError::Deadlock`]: https://docs.rs/hanayo-sim

use crate::error::{AnalysisError, CycleNode};
use hanayo_core::action::{Action, CommDir, MsgTag, Schedule};
use hanayo_core::ids::DeviceId;
use std::collections::HashMap;

/// Why an edge exists — enough to weight it later without storing floats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Program order between consecutive actions of one device.
    Seq,
    /// Enter → exit of a single action (carries compute duration).
    Span,
    /// A matched point-to-point message from `src` to `dst`.
    Msg {
        /// Sending device.
        src: u32,
        /// Receiving device.
        dst: u32,
    },
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Edge {
    pub(crate) to: u32,
    pub(crate) kind: EdgeKind,
}

/// One matched message, with both program coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Sending device.
    pub src: DeviceId,
    /// Receiving device.
    pub dst: DeviceId,
    /// Message identity.
    pub tag: MsgTag,
    /// Index of the action posting the send in `src`'s list.
    pub send_index: usize,
    /// Index of the action blocking on the receive in `dst`'s list.
    pub recv_index: usize,
}

/// The happens-before DAG of one lowered schedule.
pub struct HappensBefore<'a> {
    schedule: &'a Schedule,
    /// First global action index of each device, plus the total as a cap.
    offsets: Vec<usize>,
    succs: Vec<Vec<Edge>>,
    edge_count: usize,
    messages: Vec<Message>,
    batched_comms: usize,
}

impl<'a> HappensBefore<'a> {
    /// Build the DAG, matching every send to its receive. Returns the
    /// first communication defect (unmatched/duplicated message, wrong
    /// peer) in deterministic device/action order.
    pub fn build(schedule: &'a Schedule) -> Result<HappensBefore<'a>, AnalysisError> {
        let mut offsets = Vec::with_capacity(schedule.lists.len() + 1);
        let mut total = 0usize;
        for list in &schedule.lists {
            offsets.push(total);
            total += list.actions.len();
        }
        offsets.push(total);

        let mut dag = HappensBefore {
            schedule,
            offsets,
            succs: vec![Vec::new(); 2 * total],
            edge_count: 0,
            messages: Vec::new(),
            batched_comms: 0,
        };

        // Structural edges: span + program order.
        for (d, list) in schedule.lists.iter().enumerate() {
            for i in 0..list.actions.len() {
                let g = dag.offsets[d] + i;
                dag.push_edge(2 * g as u32, (2 * g + 1) as u32, EdgeKind::Span);
                if i + 1 < list.actions.len() {
                    dag.push_edge((2 * g + 1) as u32, (2 * (g + 1)) as u32, EdgeKind::Seq);
                }
            }
            dag.batched_comms +=
                list.actions.iter().filter(|a| matches!(a, Action::BatchedComm(_))).count();
        }

        // Receive index: (receiving device, tag) → (action index, declared
        // peer, matched?). Duplicates are defects.
        let mut recvs: HashMap<(u32, MsgTag), (usize, DeviceId, bool)> = HashMap::new();
        for (d, list) in schedule.lists.iter().enumerate() {
            let device = DeviceId(d as u32);
            for (i, action) in list.actions.iter().enumerate() {
                for op in action.comm_ops() {
                    if op.dir != CommDir::Recv {
                        continue;
                    }
                    if recvs.insert((d as u32, op.tag), (i, op.peer, false)).is_some() {
                        return Err(AnalysisError::DuplicateMessage {
                            device,
                            index: i,
                            tag: op.tag,
                        });
                    }
                }
            }
        }

        // Match sends against the receive index and add message edges.
        for (d, list) in schedule.lists.iter().enumerate() {
            let device = DeviceId(d as u32);
            for (i, action) in list.actions.iter().enumerate() {
                for op in action.comm_ops() {
                    if op.dir != CommDir::Send {
                        continue;
                    }
                    let Some(entry) = recvs.get_mut(&(op.peer.0, op.tag)) else {
                        return Err(AnalysisError::UnmatchedSend { device, index: i, tag: op.tag });
                    };
                    let (recv_index, declared, matched) = *entry;
                    if matched {
                        return Err(AnalysisError::DuplicateMessage {
                            device,
                            index: i,
                            tag: op.tag,
                        });
                    }
                    if declared != device {
                        return Err(AnalysisError::PeerMismatch {
                            device: op.peer,
                            index: recv_index,
                            tag: op.tag,
                            declared,
                            actual: device,
                        });
                    }
                    entry.2 = true;
                    let from = 2 * (dag.offsets[d] + i) as u32;
                    let to = (2 * (dag.offsets[op.peer.0 as usize] + recv_index) + 1) as u32;
                    dag.push_edge(from, to, EdgeKind::Msg { src: d as u32, dst: op.peer.0 });
                    dag.messages.push(Message {
                        src: device,
                        dst: op.peer,
                        tag: op.tag,
                        send_index: i,
                        recv_index,
                    });
                }
            }
        }

        // Any receive left unmatched, reported in program order.
        for (d, list) in schedule.lists.iter().enumerate() {
            for (i, action) in list.actions.iter().enumerate() {
                for op in action.comm_ops() {
                    if op.dir == CommDir::Recv && !recvs[&(d as u32, op.tag)].2 {
                        return Err(AnalysisError::UnmatchedRecv {
                            device: DeviceId(d as u32),
                            index: i,
                            tag: op.tag,
                        });
                    }
                }
            }
        }

        Ok(dag)
    }

    fn push_edge(&mut self, from: u32, to: u32, kind: EdgeKind) {
        self.succs[from as usize].push(Edge { to, kind });
        self.edge_count += 1;
    }

    /// Number of nodes (two per action).
    pub fn node_count(&self) -> usize {
        self.succs.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The matched messages, in sender program order.
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// Number of `BatchedComm` actions in the schedule.
    pub fn batched_comms(&self) -> usize {
        self.batched_comms
    }

    /// The schedule this DAG was built over.
    pub fn schedule(&self) -> &Schedule {
        self.schedule
    }

    /// Outgoing edges of a node.
    pub(crate) fn successors(&self, node: u32) -> &[Edge] {
        &self.succs[node as usize]
    }

    /// Map a node id back to its `(device, action index)` coordinate.
    pub(crate) fn locate(&self, node: u32) -> (usize, usize) {
        let g = node as usize / 2;
        // offsets is sorted; the device owning g is the last offset <= g.
        let d = self.offsets.partition_point(|&o| o <= g) - 1;
        (d, g - self.offsets[d])
    }

    fn cycle_node(&self, node: u32) -> CycleNode {
        let (d, i) = self.locate(node);
        CycleNode {
            device: DeviceId(d as u32),
            index: i,
            action: self.schedule.lists[d].actions[i].to_string(),
        }
    }

    /// Topological order of the nodes, or the happens-before cycle that
    /// prevents one — which is exactly a deadlock witness.
    pub fn topo_order(&self) -> Result<Vec<u32>, AnalysisError> {
        let n = self.succs.len();
        // 0 = unvisited, 1 = on the DFS path, 2 = done.
        let mut color = vec![0u8; n];
        let mut order: Vec<u32> = Vec::with_capacity(n);
        // (node, next successor index) — an explicit DFS stack.
        let mut stack: Vec<(u32, usize)> = Vec::new();
        for root in 0..n as u32 {
            if color[root as usize] != 0 {
                continue;
            }
            color[root as usize] = 1;
            stack.push((root, 0));
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                if let Some(edge) = self.succs[node as usize].get(*next) {
                    *next += 1;
                    match color[edge.to as usize] {
                        0 => {
                            color[edge.to as usize] = 1;
                            stack.push((edge.to, 0));
                        }
                        1 => {
                            // Back edge: the path from `edge.to` to `node`
                            // plus this edge is the cycle. Deduplicate
                            // enter/exit pairs into action coordinates.
                            let start = stack.iter().position(|&(v, _)| v == edge.to).unwrap_or(0);
                            let mut cycle: Vec<CycleNode> = Vec::new();
                            for &(v, _) in &stack[start..] {
                                let step = self.cycle_node(v);
                                if cycle.last() != Some(&step) {
                                    cycle.push(step);
                                }
                            }
                            cycle.push(self.cycle_node(edge.to));
                            return Err(AnalysisError::Cycle { cycle });
                        }
                        _ => {}
                    }
                } else {
                    color[node as usize] = 2;
                    order.push(node);
                    stack.pop();
                }
            }
        }
        order.reverse();
        Ok(order)
    }

    /// Per-link FIFO consistency: on every directed link, the receiver
    /// must block on messages in the order the sender posts them (ties —
    /// messages posted or awaited by the same action — are unordered and
    /// always fine). Tag-matched rendezvous tolerates inversions, but a
    /// FIFO channel would deadlock on one, so generators must not emit
    /// them.
    pub fn check_fifo(&self) -> Result<(), AnalysisError> {
        // messages() is already in sender program order per (src, dst).
        let mut per_link: HashMap<(u32, u32), Vec<&Message>> = HashMap::new();
        for m in &self.messages {
            per_link.entry((m.src.0, m.dst.0)).or_default().push(m);
        }
        let mut links: Vec<_> = per_link.into_iter().collect();
        links.sort_by_key(|&((s, d), _)| (s, d));
        for ((_, _), msgs) in links {
            // Running max of recv indices over strictly-earlier sends.
            let mut frontier: Option<&Message> = None;
            let mut i = 0;
            while i < msgs.len() {
                // One group of equal send indices at a time.
                let mut j = i;
                while j < msgs.len() && msgs[j].send_index == msgs[i].send_index {
                    if let Some(prev) = frontier {
                        if msgs[j].recv_index < prev.recv_index {
                            return Err(AnalysisError::FifoInversion {
                                src: prev.src,
                                dst: prev.dst,
                                first: prev.tag,
                                second: msgs[j].tag,
                            });
                        }
                    }
                    j += 1;
                }
                for m in &msgs[i..j] {
                    if frontier.is_none_or(|p| m.recv_index > p.recv_index) {
                        frontier = Some(m);
                    }
                }
                i = j;
            }
        }
        Ok(())
    }
}
