//! Critical-path lower bound on makespan.
//!
//! Longest path through the happens-before DAG with:
//!
//! * span edges of compute actions weighted `flops / effective_flops`,
//!   exactly the engine's compute duration;
//! * message edges weighted `msg_bytes / bandwidth + latency` (zero
//!   occupancy on infinite-bandwidth links), exactly the engine's
//!   uncontended transfer time;
//! * everything else zero.
//!
//! The engine adds only *waiting* on top of these (link contention,
//! rendezvous alignment, batch synchronisation), so the longest path is
//! an admissible lower bound: simulated `iteration_time` can never fall
//! below it. That makes it a sound pruning bound for schedule search.

use crate::dag::{EdgeKind, HappensBefore};
use crate::error::AnalysisError;
use hanayo_cluster::ClusterSpec;
use hanayo_core::action::Action;
use hanayo_model::CostTable;

/// Duration of one action's span edge on `device`.
fn span_weight(action: &Action, device: usize, cost: &CostTable, cluster: &ClusterSpec) -> f64 {
    match action {
        Action::Forward { stage, .. } => {
            cost.fwd_flops[stage.idx()] / cluster.effective_flops(device)
        }
        Action::Backward { stage, .. } => {
            cost.bwd_flops[stage.idx()] / cluster.effective_flops(device)
        }
        _ => 0.0,
    }
}

/// Uncontended transfer time of one message, matching the engine's
/// occupancy + latency arithmetic (zero occupancy when bandwidth is
/// infinite, e.g. device-local links).
fn msg_weight(src: usize, dst: usize, cost: &CostTable, cluster: &ClusterSpec) -> f64 {
    let link = cluster.p2p(src, dst);
    let occupancy =
        if link.bandwidth.is_finite() { cost.msg_bytes as f64 / link.bandwidth } else { 0.0 };
    occupancy + link.latency
}

/// Longest weighted path through the DAG, in seconds. Fails with the
/// deadlock cycle if the graph is cyclic, or with a shape mismatch if the
/// cluster does not fit the schedule.
pub fn critical_path(
    dag: &HappensBefore<'_>,
    cost: &CostTable,
    cluster: &ClusterSpec,
) -> Result<f64, AnalysisError> {
    let schedule = dag.schedule();
    if cluster.len() != schedule.lists.len() {
        return Err(AnalysisError::DeviceCountMismatch {
            schedule: schedule.lists.len(),
            cluster: cluster.len(),
        });
    }
    let stages = schedule.stage_map.stages;
    if cost.fwd_flops.len() != stages as usize {
        return Err(AnalysisError::StageCountMismatch {
            schedule: stages,
            cost: cost.fwd_flops.len() as u32,
        });
    }

    let order = dag.topo_order()?;
    let mut dist = vec![0.0f64; dag.node_count()];
    let mut bound = 0.0f64;
    for &node in &order {
        let d = dist[node as usize];
        bound = bound.max(d);
        for edge in dag.successors(node) {
            let w = match edge.kind {
                EdgeKind::Seq => 0.0,
                EdgeKind::Span => {
                    let (device, index) = dag.locate(node);
                    span_weight(&schedule.lists[device].actions[index], device, cost, cluster)
                }
                EdgeKind::Msg { src, dst } => msg_weight(src as usize, dst as usize, cost, cluster),
            };
            let t = d + w;
            if t > dist[edge.to as usize] {
                dist[edge.to as usize] = t;
            }
        }
    }
    Ok(bound)
}
