//! The combined analysis entry points and their serializable report.

use crate::critical::critical_path;
use crate::dag::HappensBefore;
use crate::error::AnalysisError;
use crate::memory::{device_weight_mem, static_peak_mem};
use hanayo_cluster::ClusterSpec;
use hanayo_core::action::Schedule;
use hanayo_core::comm;
use hanayo_core::schedule::table::{check_table_with, ScheduleTable, TableLimits};
use hanayo_model::CostTable;
use serde::{Deserialize, Serialize};

/// Size of the happens-before DAG, for reports and sanity checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DagStats {
    /// Nodes (two per action: enter and exit).
    pub nodes: usize,
    /// Edges (span + program order + message).
    pub edges: usize,
    /// Matched point-to-point messages.
    pub messages: usize,
    /// `BatchedComm` actions (the §4.2 cross-communication batches).
    pub batched_comms: usize,
}

/// Everything the static analysis proves about one schedule. A report is
/// only produced when the hard properties hold — failures surface as the
/// typed [`AnalysisError`] instead, so those boolean verdicts exist for
/// the JSON consumer's benefit. The one soft verdict is
/// [`fifo_consistent`](Self::fifo_consistent), which reports a hazard the
/// rendezvous engines tolerate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Pipeline width.
    pub devices: u32,
    /// Global stage count.
    pub stages: u32,
    /// Micro-batches per iteration.
    pub micro_batches: u32,
    /// DAG size.
    pub dag: DagStats,
    /// No happens-before cycle: the simulator cannot deadlock on this
    /// schedule.
    pub deadlock_free: bool,
    /// Every cross-stage dependency has exactly one matched send/recv
    /// pair with consistent peers.
    pub comm_well_formed: bool,
    /// Per-link FIFO order holds (sender post order never inverts
    /// receiver block order). Unlike the other verdicts this one can be
    /// `false` in an `Ok` report: tag-matched rendezvous (what the
    /// simulator and the runtime implement) tolerates inversions, and
    /// legal searched tables do produce them — but a strict FIFO channel
    /// (real NCCL p2p without tags) would deadlock, so the report
    /// surfaces the hazard instead of enforcing it. Every *generated*
    /// scheme is FIFO-clean (pinned by the golden snapshots).
    pub fifo_consistent: bool,
    /// Static weight+optimizer bytes per device.
    pub weight_mem: Vec<u64>,
    /// Static activation-stash peak per device (`peak_mem − weight_mem`).
    pub stash_peak: Vec<u64>,
    /// Static peak bytes per device — equals the simulator's `peak_mem`
    /// exactly on every schedule the simulator completes.
    pub peak_mem: Vec<u64>,
    /// Critical-path lower bound on the iteration time, seconds.
    pub critical_path_s: f64,
}

/// Prove deadlock freedom and communication well-formedness of a lowered
/// schedule: matched messages, consistent peers, acyclic happens-before
/// DAG. The cheap core of the tuner's static pre-pass.
pub fn check_deadlock_free(schedule: &Schedule) -> Result<(), AnalysisError> {
    let dag = HappensBefore::build(schedule)?;
    dag.topo_order()?;
    Ok(())
}

/// Run every static analysis over a lowered schedule: communication
/// well-formedness, per-link FIFO consistency, deadlock freedom, the
/// exact static memory peaks, and the critical-path bound.
pub fn analyze(
    schedule: &Schedule,
    cost: &CostTable,
    cluster: &ClusterSpec,
) -> Result<AnalysisReport, AnalysisError> {
    let dag = HappensBefore::build(schedule)?;
    let fifo_consistent = dag.check_fifo().is_ok();
    let critical_path_s = critical_path(&dag, cost, cluster)?;
    let weight_mem = device_weight_mem(&schedule.stage_map, cost);
    let peak_mem = static_peak_mem(schedule, cost);
    let stash_peak: Vec<u64> = peak_mem.iter().zip(&weight_mem).map(|(&p, &w)| p - w).collect();
    Ok(AnalysisReport {
        devices: schedule.stage_map.devices,
        stages: schedule.stage_map.stages,
        micro_batches: schedule.config.micro_batches,
        dag: DagStats {
            nodes: dag.node_count(),
            edges: dag.edge_count(),
            messages: dag.messages().len(),
            batched_comms: dag.batched_comms(),
        },
        deadlock_free: true,
        comm_well_formed: true,
        fifo_consistent,
        weight_mem,
        stash_peak,
        peak_mem,
        critical_path_s,
    })
}

/// [`analyze`] for the tabular IR: the table-level invariants run first
/// (shape, completeness, chain order, recompute typing, stash caps), then
/// the table is lowered through the same path the simulator executes and
/// the DAG analyses follow.
pub fn analyze_table(
    table: &ScheduleTable,
    cost: &CostTable,
    cluster: &ClusterSpec,
    limits: TableLimits,
) -> Result<AnalysisReport, AnalysisError> {
    check_table_with(table, limits)?;
    analyze(&comm::lower(&table.to_compute()), cost, cluster)
}
