//! Property tests for the static analyzer, cross-validated against the
//! simulator on random shapes:
//!
//! * random *legal* tables (gated random walks from generated seeds) are
//!   accepted by the analyzer and never deadlock the simulator;
//! * random corruptions — a dropped receive, a swapped chain pair — are
//!   rejected with the right typed [`AnalysisError`], and the DAG cycle
//!   verdict always agrees with the simulator's deadlock verdict;
//! * the static memory replay equals the simulated `peak_mem` exactly on
//!   random `(scheme, P, B, recompute)` shapes — the bound is tight, not
//!   merely sound.

use hanayo_analyze::{analyze_table, check_deadlock_free, static_peak_mem, AnalysisError};
use hanayo_cluster::topology::fc_full_nvlink;
use hanayo_core::action::CommDir;
use hanayo_core::comm;
use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::schedule::search::{apply_move, sample_legal_moves};
use hanayo_core::schedule::table::{check_table, ScheduleTable, Slot, TableError, TableLimits};
use hanayo_core::schedule::{build_compute_schedule, build_schedule};
use hanayo_model::{CostTable, ModelConfig, Recompute};
use hanayo_sim::{try_simulate, SimError, SimOptions};
use proptest::prelude::*;

fn any_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::GPipe),
        Just(Scheme::Dapple),
        Just(Scheme::AsyncPipeDream),
        (1u32..=4).prop_map(|w| Scheme::Hanayo { waves: w }),
        (2u32..=4).prop_map(|v| Scheme::Interleaved { chunks: v }),
        Just(Scheme::Chimera),
    ]
}

/// Make a shape valid for the drawn scheme (Chimera needs even splits).
fn legalise(p: u32, b: u32, scheme: Scheme) -> (u32, u32) {
    if matches!(scheme, Scheme::Chimera) {
        ((p + p % 2).max(2), (b + b % 2).max(2))
    } else {
        (p, b)
    }
}

fn table_for(p: u32, b: u32, scheme: Scheme) -> ScheduleTable {
    let cfg = PipelineConfig::new(p, b, scheme).unwrap();
    ScheduleTable::from_compute(&build_compute_schedule(&cfg).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn accepted_random_tables_never_deadlock_the_simulator(
        p in 2u32..=5,
        b in 2u32..=6,
        scheme in any_scheme(),
        seed in 0u64..u64::MAX,
        steps in 1usize..=16,
    ) {
        // Walk to an arbitrary legal table no generator emits, then prove
        // it statically and execute it: acceptance must imply the
        // simulator completes (zero false accepts on deadlock).
        let (p, b) = legalise(p, b, scheme);
        let mut table = table_for(p, b, scheme);
        for mv in sample_legal_moves(&table, seed, steps) {
            let mut candidate = table.clone();
            if apply_move(&mut candidate, mv) && check_table(&candidate).is_ok() {
                table = candidate;
            }
        }
        let cluster = fc_full_nvlink(p as usize);
        let cost = CostTable::build(&ModelConfig::bert64(), table.config.stages(), 1);
        let report = analyze_table(&table, &cost, &cluster, TableLimits::default());
        prop_assert!(report.is_ok(), "legal table rejected: {:?}", report);

        let schedule = comm::lower(&table.to_compute());
        let sim = try_simulate(&schedule, &cost, &cluster, SimOptions::default());
        prop_assert!(
            !matches!(sim, Err(SimError::Deadlock { .. })),
            "analyzer accepted a deadlocking table"
        );
        // And the bounds the report carries hold against the execution.
        let (report, sim) = (report.unwrap(), sim.unwrap());
        prop_assert_eq!(&report.peak_mem, &sim.peak_mem);
        prop_assert!(report.critical_path_s <= sim.iteration_time * (1.0 + 1e-9));
    }

    #[test]
    fn dropped_recv_is_a_typed_defect(
        p in 2u32..=5,
        b in 2u32..=6,
        scheme in any_scheme(),
        pick in 0u64..u64::MAX,
    ) {
        let (p, b) = legalise(p, b, scheme);
        let cfg = PipelineConfig::new(p, b, scheme).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        // Every (device, action) whose action posts at least one receive.
        let recv_sites: Vec<(usize, usize)> = schedule
            .lists
            .iter()
            .enumerate()
            .flat_map(|(d, list)| {
                list.actions.iter().enumerate().filter_map(move |(i, a)| {
                    a.comm_ops().iter().any(|op| op.dir == CommDir::Recv).then_some((d, i))
                })
            })
            .collect();
        prop_assert!(!recv_sites.is_empty(), "every pipeline communicates");
        let (d, i) = recv_sites[(pick % recv_sites.len() as u64) as usize];
        let mut corrupted = schedule;
        corrupted.lists[d].actions.remove(i);
        let err = check_deadlock_free(&corrupted).unwrap_err();
        prop_assert!(
            matches!(
                err,
                AnalysisError::UnmatchedSend { .. } | AnalysisError::UnmatchedRecv { .. }
            ),
            "expected an unmatched-message defect, got {err}"
        );
    }

    #[test]
    fn swapped_chain_pair_is_rejected_and_agrees_with_simulator(
        p in 2u32..=5,
        b in 2u32..=6,
        scheme in any_scheme(),
        pick in 0u64..u64::MAX,
    ) {
        // Swap a forward with the backward of the same micro-batch on one
        // device. At the table layer this is a typed chain violation; at
        // the DAG layer the lowered order either cycles (simulator
        // deadlocks) or happens to stay executable — the two verdicts must
        // match either way.
        let (p, b) = legalise(p, b, scheme);
        let mut table = table_for(p, b, scheme);
        let d = (pick % table.rows.len() as u64) as usize;
        let row = &mut table.rows[d];
        let Some(mb) = row.iter().find_map(|s| match s {
            Slot::Fwd { mb, .. } => Some(*mb),
            _ => None,
        }) else {
            return Ok(());
        };
        let fwd = row.iter().position(|s| matches!(s, Slot::Fwd { mb: m, .. } if *m == mb));
        let bwd = row.iter().position(|s| matches!(s, Slot::Bwd { mb: m, .. } if *m == mb));
        let (Some(fwd), Some(bwd)) = (fwd, bwd) else { return Ok(()) };
        row.swap(fwd, bwd);

        let cluster = fc_full_nvlink(p as usize);
        let cost = CostTable::build(&ModelConfig::bert64(), table.config.stages(), 1);
        let report = analyze_table(&table, &cost, &cluster, TableLimits::default());
        prop_assert!(
            matches!(
                report,
                Err(AnalysisError::Table(TableError::DependencyViolation { .. }))
            ),
            "expected the chain violation, got {:?}",
            report
        );

        let schedule = comm::lower(&table.to_compute());
        let static_verdict = check_deadlock_free(&schedule);
        let sim_verdict = try_simulate(&schedule, &cost, &cluster, SimOptions::default());
        match (&static_verdict, &sim_verdict) {
            (Err(AnalysisError::Cycle { .. }), Err(SimError::Deadlock { .. })) => {}
            (Ok(()), Ok(_)) => {}
            _ => prop_assert!(
                false,
                "verdicts disagree: static {:?}, sim deadlock {}",
                static_verdict,
                matches!(sim_verdict, Err(SimError::Deadlock { .. }))
            ),
        }
    }

    #[test]
    fn static_memory_equals_simulated_peaks_on_random_shapes(
        p in 2u32..=6,
        b in 2u32..=8,
        scheme in any_scheme(),
        mbs in 1u32..=2,
        ckpt in 0u32..=1,
    ) {
        let (p, b) = legalise(p, b, scheme);
        let cfg = PipelineConfig::new(p, b, scheme).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let mode = if ckpt == 1 { Recompute::Full } else { Recompute::None };
        let cost = CostTable::build_with(&ModelConfig::bert64(), cfg.stages(), mbs, mode);
        let cluster = fc_full_nvlink(p as usize);
        let sim = try_simulate(&schedule, &cost, &cluster, SimOptions::default()).unwrap();
        let bound = static_peak_mem(&schedule, &cost);
        // Sound (never below the truth) *and* tight (equal).
        for (d, (&s, &t)) in bound.iter().zip(&sim.peak_mem).enumerate() {
            prop_assert!(s >= t, "device {d}: static {s} below simulated {t}");
        }
        prop_assert_eq!(bound, sim.peak_mem);
    }
}
