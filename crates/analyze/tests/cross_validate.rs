//! Cross-validation of the static analyzer against the simulator: every
//! accepted schedule simulates without deadlock, the static memory replay
//! reproduces the engine's `peak_mem` exactly, the critical-path bound
//! never exceeds the simulated iteration time, and corrupting a schedule
//! flips the two verdicts together.

use hanayo_analyze::{analyze, check_deadlock_free, AnalysisError};
use hanayo_cluster::topology::fc_full_nvlink;
use hanayo_core::action::Schedule;
use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::schedule::build_schedule;
use hanayo_model::{CostTable, ModelConfig};
use hanayo_sim::{try_simulate, SimError, SimOptions};

const P: u32 = 8;
const M: u32 = 8;

fn schemes() -> [Scheme; 7] {
    [
        Scheme::Hanayo { waves: 2 },
        Scheme::Hanayo { waves: 1 },
        Scheme::Chimera,
        Scheme::Dapple,
        Scheme::Interleaved { chunks: 2 },
        Scheme::GPipe,
        Scheme::AsyncPipeDream,
    ]
}

fn build(scheme: Scheme) -> (Schedule, CostTable) {
    let cfg = PipelineConfig::new(P, M, scheme).unwrap();
    let schedule = build_schedule(&cfg).unwrap();
    let cost = CostTable::build(&ModelConfig::bert64(), cfg.stages(), 1);
    (schedule, cost)
}

/// Accepted schedules never deadlock, the static peaks equal the engine's
/// measured peaks exactly, and the critical path lower-bounds the
/// simulated makespan — on all seven named schemes.
#[test]
fn analyzer_matches_simulator_on_named_schemes() {
    let cluster = fc_full_nvlink(P as usize);
    for scheme in schemes() {
        let (schedule, cost) = build(scheme);
        let report = analyze(&schedule, &cost, &cluster)
            .unwrap_or_else(|e| panic!("{scheme:?} rejected: {e}"));
        let sim = try_simulate(&schedule, &cost, &cluster, SimOptions::default())
            .unwrap_or_else(|e| panic!("{scheme:?} failed to simulate: {e}"));

        assert!(report.fifo_consistent, "{scheme:?}: generated schemes are FIFO-clean");
        assert_eq!(report.peak_mem, sim.peak_mem, "{scheme:?}: static peak != engine peak");
        assert_eq!(report.weight_mem, sim.weight_mem, "{scheme:?}: weight mem mismatch");
        let stash: Vec<u64> =
            sim.peak_mem.iter().zip(&sim.weight_mem).map(|(&p, &w)| p - w).collect();
        assert_eq!(report.stash_peak, stash, "{scheme:?}: stash peak mismatch");

        assert!(
            report.critical_path_s <= sim.iteration_time * (1.0 + 1e-9),
            "{scheme:?}: critical path {} exceeds simulated {}",
            report.critical_path_s,
            sim.iteration_time
        );
        assert!(report.critical_path_s > 0.0, "{scheme:?}: degenerate critical path");
    }
}

/// Reversing one device's action list creates a circular wait (or, if it
/// happens not to, leaves the schedule executable). Whatever the outcome,
/// the static verdict and the simulator's verdict must agree — the
/// soundness *and* completeness half of the deadlock claim.
#[test]
fn corrupted_verdicts_agree_with_simulator() {
    let cluster = fc_full_nvlink(P as usize);
    let mut deadlocks = 0usize;
    for scheme in schemes() {
        let (schedule, cost) = build(scheme);
        for victim in [0usize, P as usize / 2, P as usize - 1] {
            let mut corrupted = schedule.clone();
            corrupted.lists[victim].actions.reverse();
            let static_verdict = check_deadlock_free(&corrupted);
            let sim_verdict = try_simulate(&corrupted, &cost, &cluster, SimOptions::default());
            match (&static_verdict, &sim_verdict) {
                (Err(AnalysisError::Cycle { cycle }), Err(SimError::Deadlock { .. })) => {
                    deadlocks += 1;
                    assert!(cycle.len() >= 2, "{scheme:?}: trivial cycle witness");
                    // The witness must start and end at the same action.
                    assert_eq!(cycle.first(), cycle.last(), "{scheme:?}: unclosed cycle");
                }
                (Ok(()), Ok(_)) => {}
                (s, v) => panic!(
                    "{scheme:?} (device {victim} reversed): static verdict {s:?} \
                     disagrees with simulator {}",
                    match v {
                        Ok(_) => "Ok".to_string(),
                        Err(e) => format!("{e}"),
                    }
                ),
            }
        }
    }
    assert!(deadlocks >= 7, "corruption produced only {deadlocks} deadlocks — too weak a test");
}

/// Dropping a single receive turns up as `UnmatchedSend` (its sender has
/// nobody to hand the message to), never as a false acceptance.
#[test]
fn dropped_recv_is_rejected() {
    let (schedule, _) = build(Scheme::Dapple);
    for d in 0..P as usize {
        let Some(pos) = schedule.lists[d].actions.iter().position(|a| {
            a.comm_ops().iter().any(|op| op.dir == hanayo_core::action::CommDir::Recv)
        }) else {
            continue;
        };
        let mut corrupted = schedule.clone();
        corrupted.lists[d].actions.remove(pos);
        let err = check_deadlock_free(&corrupted).unwrap_err();
        assert!(
            matches!(
                err,
                AnalysisError::UnmatchedSend { .. } | AnalysisError::UnmatchedRecv { .. }
            ),
            "device {d}: expected an unmatched-message defect, got {err}"
        );
        return;
    }
    panic!("no receive found to drop");
}
