//! Property tests for the tabular schedule IR: random legal tables are
//! accepted by the standalone checker, random corruptions (swap, drop,
//! duplicate) are rejected with the right typed error, and the
//! `ComputeSchedule ⇄ ScheduleTable` round-trip is bit-exact over random
//! `(scheme, P, B)` shapes.

use hanayo_core::chain::ComputeOp;
use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::schedule::build_compute_schedule;
use hanayo_core::schedule::search::{apply_move, check_move, sample_legal_moves};
use hanayo_core::schedule::table::{
    check_table, check_table_with, ScheduleTable, Slot, TableError, TableLimits,
};
use proptest::prelude::*;

fn any_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::GPipe),
        Just(Scheme::Dapple),
        Just(Scheme::AsyncPipeDream),
        (1u32..=4).prop_map(|w| Scheme::Hanayo { waves: w }),
        (2u32..=4).prop_map(|v| Scheme::Interleaved { chunks: v }),
        Just(Scheme::Chimera),
    ]
}

/// Make a shape valid for the drawn scheme (Chimera needs even splits).
fn legalise(p: u32, b: u32, scheme: Scheme) -> (u32, u32) {
    if matches!(scheme, Scheme::Chimera) {
        ((p + p % 2).max(2), (b + b % 2).max(2))
    } else {
        (p, b)
    }
}

fn table_for(p: u32, b: u32, scheme: Scheme) -> ScheduleTable {
    let cfg = PipelineConfig::new(p, b, scheme).unwrap();
    ScheduleTable::from_compute(&build_compute_schedule(&cfg).unwrap())
}

/// The op at a slot, as `(mb, pos)` — the chain key the checker uses.
fn op_of(slot: Slot, stages: u32) -> Option<(u32, u32)> {
    slot.compute_op().map(|op: ComputeOp| (op.mb.0, op.pos(stages)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_tables_are_always_accepted(
        p in 2u32..=6,
        b in 2u32..=10,
        scheme in any_scheme(),
    ) {
        let (p, b) = legalise(p, b, scheme);
        let table = table_for(p, b, scheme);
        prop_assert!(check_table(&table).is_ok(), "{} P={} B={}", scheme, p, b);
    }

    #[test]
    fn random_legal_tables_are_accepted(
        p in 2u32..=5,
        b in 2u32..=8,
        scheme in any_scheme(),
        seed in 0u64..u64::MAX,
        steps in 1usize..=24,
    ) {
        // Walk away from the generated point with random *gated* moves:
        // every intermediate table the walk keeps passed the checker, so
        // the endpoint is an arbitrary legal table no generator emits.
        let (p, b) = legalise(p, b, scheme);
        let mut table = table_for(p, b, scheme);
        let occupied = table.occupied();
        for mv in sample_legal_moves(&table, seed, steps) {
            let mut candidate = table.clone();
            if apply_move(&mut candidate, mv) && check_table(&candidate).is_ok() {
                table = candidate;
            }
        }
        prop_assert!(check_table(&table).is_ok(), "walked table must stay legal");
        // Moves rearrange work; they never create or destroy it.
        prop_assert_eq!(table.occupied(), occupied);
        // And the walked table still strips to a complete compute order.
        let cs = table.to_compute();
        let total: usize = cs.per_device.iter().map(Vec::len).sum();
        prop_assert_eq!(total, occupied);
    }

    #[test]
    fn swapping_a_chain_pair_is_rejected(
        p in 2u32..=5,
        b in 2u32..=8,
        scheme in any_scheme(),
        dev_pick in 0u64..u64::MAX,
    ) {
        // Swap a forward with the backward of the same micro-batch on one
        // device: the chain runs forward-then-backward, so the result
        // must be a dependency violation (columns are unchanged, only the
        // occupants swap).
        let (p, b) = legalise(p, b, scheme);
        let mut table = table_for(p, b, scheme);
        let d = (dev_pick % table.rows.len() as u64) as usize;
        let row = &mut table.rows[d];
        let Some(mb) = row.iter().find_map(|s| match s {
            Slot::Fwd { mb, .. } => Some(*mb),
            _ => None,
        }) else {
            return Ok(());
        };
        let fwd = row
            .iter()
            .position(|s| matches!(s, Slot::Fwd { mb: m, .. } if *m == mb))
            .unwrap();
        let Some(bwd) =
            row.iter().position(|s| matches!(s, Slot::Bwd { mb: m, .. } if *m == mb))
        else {
            return Ok(());
        };
        row.swap(fwd, bwd);
        prop_assert!(
            matches!(check_table(&table), Err(TableError::DependencyViolation { .. })),
            "expected DependencyViolation, got {:?}",
            check_table(&table)
        );
    }

    #[test]
    fn dropping_any_op_is_rejected(
        p in 2u32..=5,
        b in 2u32..=8,
        scheme in any_scheme(),
        pick in 0u64..u64::MAX,
    ) {
        let (p, b) = legalise(p, b, scheme);
        let mut table = table_for(p, b, scheme);
        let d = (pick % table.rows.len() as u64) as usize;
        let occupied: Vec<usize> = (0..table.width())
            .filter(|&t| !table.rows[d][t].is_idle())
            .collect();
        prop_assert!(!occupied.is_empty(), "every device row has work");
        let t = occupied[((pick >> 8) % occupied.len() as u64) as usize];
        let stages = table.stage_map.stages;
        let dropped = op_of(table.rows[d][t], stages).unwrap();
        table.rows[d][t] = Slot::Idle;
        match check_table(&table) {
            Err(TableError::MissingOp(op)) => {
                prop_assert_eq!((op.mb.0, op.pos(stages)), dropped);
            }
            other => prop_assert!(false, "expected MissingOp, got {:?}", other),
        }
    }

    #[test]
    fn duplicating_any_op_is_rejected(
        p in 2u32..=5,
        b in 2u32..=8,
        scheme in any_scheme(),
        pick in 0u64..u64::MAX,
    ) {
        let (p, b) = legalise(p, b, scheme);
        let mut table = table_for(p, b, scheme);
        let d = (pick % table.rows.len() as u64) as usize;
        let row = &table.rows[d];
        let occupied: Vec<usize> = (0..row.len()).filter(|&t| !row[t].is_idle()).collect();
        let idle: Vec<usize> = (0..row.len()).filter(|&t| row[t].is_idle()).collect();
        if occupied.is_empty() || idle.is_empty() {
            return Ok(());
        }
        let from = occupied[((pick >> 8) % occupied.len() as u64) as usize];
        let to = idle[((pick >> 16) % idle.len() as u64) as usize];
        table.rows[d][to] = table.rows[d][from];
        // A duplicate on the same device is either caught as a duplicate
        // or (if the copy lands first in scan order) as the now-broken
        // chain around the second occurrence. Either way: rejected.
        prop_assert!(
            matches!(
                check_table(&table),
                Err(TableError::DuplicateOp { .. } | TableError::DependencyViolation { .. })
            ),
            "expected DuplicateOp or DependencyViolation, got {:?}",
            check_table(&table)
        );
    }

    #[test]
    fn move_check_matches_full_checker(
        p in 2u32..=5,
        b in 2u32..=8,
        scheme in any_scheme(),
        seed in 0u64..u64::MAX,
        steps in 1usize..=32,
        raw_cap in 0u32..=6,
    ) {
        // The incremental per-move check must reach the same verdict as a
        // full table pass on every candidate reachable from a valid
        // incumbent — the invariant that lets `local_search` gate moves in
        // O(width) instead of O(table).
        let (p, b) = legalise(p, b, scheme);
        // 0 means "no cap" — the vendored proptest has no option strategy.
        let limits = TableLimits { stash_cap: (raw_cap > 0).then_some(raw_cap) };
        let mut table = table_for(p, b, scheme);
        if check_table_with(&table, limits).is_err() {
            // The cap can reject the seed itself; nothing to walk from.
            return Ok(());
        }
        for mv in sample_legal_moves(&table, seed, steps) {
            let mut candidate = table.clone();
            if !apply_move(&mut candidate, mv) {
                continue;
            }
            let fast = check_move(&candidate, mv, limits);
            let full = check_table_with(&candidate, limits);
            prop_assert_eq!(
                fast.is_ok(),
                full.is_ok(),
                "verdicts diverge on {:?}: fast {:?}, full {:?}",
                mv,
                fast,
                full
            );
            if full.is_ok() {
                table = candidate;
            }
        }
    }

    #[test]
    fn move_check_covers_recompute_windows(
        p in 2u32..=4,
        b in 3u32..=6,
        seed in 0u64..u64::MAX,
        steps in 1usize..=24,
    ) {
        // Generators never emit Recompute slots, so inject one by hand
        // (forward strictly before, backward strictly after, idle slot in
        // between) and random-walk around it: moves that drag an endpoint
        // across the replay must flip both verdicts together.
        let mut table = table_for(p, b, Scheme::GPipe);
        let mut injected = false;
        'rows: for row in &mut table.rows {
            for t in 0..row.len() {
                let Slot::Fwd { mb, stage } = row[t] else { continue };
                let Some(bwd) = row
                    .iter()
                    .position(|s| *s == Slot::Bwd { mb, stage })
                else { continue };
                if let Some(idle) =
                    (t + 1..bwd).find(|&i| row[i].is_idle())
                {
                    row[idle] = Slot::Recompute { mb, stage };
                    injected = true;
                    break 'rows;
                }
            }
        }
        if !injected {
            return Ok(());
        }
        prop_assert!(check_table(&table).is_ok(), "injected recompute must be legal");
        for mv in sample_legal_moves(&table, seed, steps) {
            let mut candidate = table.clone();
            if !apply_move(&mut candidate, mv) {
                continue;
            }
            let fast = check_move(&candidate, mv, TableLimits::default());
            let full = check_table(&candidate);
            prop_assert_eq!(
                fast.is_ok(),
                full.is_ok(),
                "recompute verdicts diverge on {:?}: fast {:?}, full {:?}",
                mv,
                fast,
                full
            );
            if full.is_ok() {
                table = candidate;
            }
        }
    }

    #[test]
    fn roundtrip_is_bit_exact(
        p in 2u32..=6,
        b in 2u32..=10,
        scheme in any_scheme(),
    ) {
        let (p, b) = legalise(p, b, scheme);
        let cfg = PipelineConfig::new(p, b, scheme).unwrap();
        let cs = build_compute_schedule(&cfg).unwrap();
        let table = ScheduleTable::from_compute(&cs);
        prop_assert_eq!(table.to_compute(), cs);
    }

    #[test]
    fn tables_serde_roundtrip(
        p in 2u32..=4,
        b in 2u32..=6,
        scheme in any_scheme(),
    ) {
        let (p, b) = legalise(p, b, scheme);
        let table = table_for(p, b, scheme);
        let json = serde_json::to_string(&table).unwrap();
        let back: ScheduleTable = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(table, back);
    }

    #[test]
    fn checker_agrees_with_forward_swap_legality(
        p in 2u32..=5,
        b in 3u32..=8,
        scheme in any_scheme(),
    ) {
        // Swapping two forwards on one device permutes its service order —
        // legal exactly when every op still sits strictly after its chain
        // predecessor. The checker must judge by columns alone, not by
        // generator shape, so verify its verdict against a direct
        // recomputation of that ground truth.
        let (p, b) = legalise(p, b, scheme);
        let mut table = table_for(p, b, scheme);
        let stages = table.stage_map.stages;
        let row = &mut table.rows[0];
        let picks: Vec<usize> = (0..row.len())
            .filter(|&t| matches!(row[t], Slot::Fwd { .. }))
            .collect();
        if picks.len() < 2 {
            return Ok(());
        }
        let (a, z) = (picks[0], picks[picks.len() - 1]);
        row.swap(a, z);
        let verdict = check_table(&table);
        // Recompute the ground truth: every op strictly after its chain
        // predecessor, per column positions in the mutated table.
        let mut columns = std::collections::HashMap::new();
        for row in &table.rows {
            for (t, slot) in row.iter().enumerate() {
                if let Some(key) = op_of(*slot, stages) {
                    columns.insert(key, t);
                }
            }
        }
        let legal = (0..b).all(|m| {
            (1..2 * stages).all(|pos| columns[&(m, pos)] > columns[&(m, pos - 1)])
        });
        prop_assert_eq!(verdict.is_ok(), legal, "verdict {:?}", verdict);
    }
}
