//! Property tests for the schedule layer: generation, lowering,
//! validation, memory replay, timing replay and serialization, over
//! randomly drawn pipeline shapes.

use hanayo_core::action::{Action, CommDir, Schedule};
use hanayo_core::config::{PipelineConfig, Scheme};
use hanayo_core::gantt::replay_timeline;
use hanayo_core::memory::unit_profile;
use hanayo_core::schedule::{build_compute_schedule, build_schedule};
use hanayo_core::transform::chimera_to_waves;
use hanayo_core::validate::validate;
use proptest::prelude::*;

fn any_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::GPipe),
        Just(Scheme::Dapple),
        (1u32..=4).prop_map(|w| Scheme::Hanayo { waves: w }),
        (2u32..=4).prop_map(|v| Scheme::Interleaved { chunks: v }),
        Just(Scheme::Chimera),
    ]
}

/// Make a shape valid for the drawn scheme (Chimera needs even splits).
fn legalise(p: u32, b: u32, scheme: Scheme) -> (u32, u32) {
    if matches!(scheme, Scheme::Chimera) {
        ((p + p % 2).max(2), (b + b % 2).max(2))
    } else {
        (p, b)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_schedules_always_validate(
        p in 2u32..=7,
        b in 2u32..=14,
        scheme in any_scheme(),
    ) {
        let (p, b) = legalise(p, b, scheme);
        let cfg = PipelineConfig::new(p, b, scheme).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        validate(&schedule).unwrap();
    }

    #[test]
    fn sends_equal_recvs_per_schedule(
        p in 2u32..=6,
        b in 2u32..=10,
        scheme in any_scheme(),
    ) {
        let (p, b) = legalise(p, b, scheme);
        let cfg = PipelineConfig::new(p, b, scheme).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let mut sends = 0usize;
        let mut recvs = 0usize;
        for (_, a) in schedule.iter_actions() {
            for op in a.comm_ops() {
                match op.dir {
                    CommDir::Send => sends += 1,
                    CommDir::Recv => recvs += 1,
                }
            }
        }
        prop_assert_eq!(sends, recvs);
    }

    #[test]
    fn replay_busy_time_is_exactly_total_work(
        p in 2u32..=6,
        b in 2u32..=10,
        scheme in any_scheme(),
        f_cost in 1u64..=3,
        b_cost in 1u64..=5,
    ) {
        let (p, b) = legalise(p, b, scheme);
        let cfg = PipelineConfig::new(p, b, scheme).unwrap();
        let cs = build_compute_schedule(&cfg).unwrap();
        let tl = replay_timeline(&cs, f_cost, b_cost, 0);
        let s = cs.stage_map.stages as u64;
        let busy: u64 = tl.busy_per_device().iter().sum();
        prop_assert_eq!(busy, (f_cost + b_cost) * s * b as u64);
    }

    #[test]
    fn memory_replay_peaks_bounded_by_gpipe(
        p in 2u32..=6,
        b in 2u32..=10,
        scheme in any_scheme(),
    ) {
        let (p, b) = legalise(p, b, scheme);
        let cfg = PipelineConfig::new(p, b, scheme).unwrap();
        let cs = build_compute_schedule(&cfg).unwrap();
        let prof = unit_profile(&cs);
        for &ma in &prof.ma_peak_units {
            // Nothing can stash more than every micro-batch of every one of
            // its chunks: B units per weight-copy share.
            let copies = cfg.scheme.weight_replicas() as f64;
            prop_assert!(ma <= copies * b as f64 + 1e-9, "{scheme}: {ma}");
        }
    }

    #[test]
    fn schedules_serde_roundtrip(
        p in 2u32..=5,
        b in 2u32..=6,
        scheme in any_scheme(),
    ) {
        let (p, b) = legalise(p, b, scheme);
        let cfg = PipelineConfig::new(p, b, scheme).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        let json = serde_json::to_string(&schedule).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(schedule, back);
    }

    #[test]
    fn generation_is_deterministic(
        p in 2u32..=6,
        b in 2u32..=10,
        scheme in any_scheme(),
    ) {
        let (p, b) = legalise(p, b, scheme);
        let cfg = PipelineConfig::new(p, b, scheme).unwrap();
        prop_assert_eq!(build_schedule(&cfg).unwrap(), build_schedule(&cfg).unwrap());
    }

    #[test]
    fn wave_transformation_never_slower(p in 1u32..=5, b in 1u32..=6) {
        let (p, b) = (2 * p, 2 * b);
        let t = chimera_to_waves(p, b).unwrap();
        let r = t.report();
        prop_assert!(r.wave_makespan <= r.chimera_makespan);
        prop_assert!(r.wave_mw < r.chimera_mw);
    }

    #[test]
    fn optimizer_step_is_always_last(
        p in 2u32..=6,
        b in 2u32..=8,
        scheme in any_scheme(),
    ) {
        let (p, b) = legalise(p, b, scheme);
        let cfg = PipelineConfig::new(p, b, scheme).unwrap();
        let schedule = build_schedule(&cfg).unwrap();
        for list in &schedule.lists {
            prop_assert_eq!(list.actions.last(), Some(&Action::OptimizerStep));
            let steps = list
                .actions
                .iter()
                .filter(|a| **a == Action::OptimizerStep)
                .count();
            prop_assert_eq!(steps, 1, "exactly one flush per device");
        }
    }
}
