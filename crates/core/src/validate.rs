//! Schedule well-formedness: the safety net under every generator.
//!
//! [`validate`] checks a lowered [`Schedule`] for:
//!
//! 1. **Completeness** — every `(micro-batch, stage)` forward and backward
//!    appears exactly once, on the device the [`StageMap`] assigns.
//! 2. **Chain order** — per device, ops of one micro-batch appear in chain
//!    order.
//! 3. **Matched communication** — every send has exactly one matching
//!    receive on the right peer and vice versa.
//! 4. **Executability** — an abstract interpreter walks all action lists
//!    concurrently and proves the program runs to completion without
//!    deadlock under the engines' semantics (async sends, blocking recvs,
//!    atomically-posted batches).
//! 5. **Flush** — every device ends with `OptimizerStep`.

use crate::action::{Action, CommDir, MsgTag, Schedule};
use crate::chain::ComputeOp;
use crate::ids::{DeviceId, MicroBatch};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// An expected compute op never appears.
    MissingOp(ComputeOp),
    /// A compute op appears more than once.
    DuplicateOp(ComputeOp),
    /// A compute op appears on a device other than its placement.
    WrongDevice(ComputeOp, DeviceId),
    /// Two ops of one micro-batch appear out of chain order on one device.
    OrderViolation(ComputeOp, ComputeOp),
    /// A send without a matching recv (or vice versa).
    UnmatchedComm(MsgTag),
    /// The abstract interpreter stalled before completion.
    Deadlock {
        /// Actions executed before the stall.
        executed: usize,
        /// Total actions in the schedule.
        total: usize,
    },
    /// A device's list does not end with the optimizer step.
    MissingFlush(DeviceId),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::MissingOp(op) => write!(f, "missing op {op}"),
            ValidationError::DuplicateOp(op) => write!(f, "duplicate op {op}"),
            ValidationError::WrongDevice(op, d) => write!(f, "{op} scheduled on wrong device {d}"),
            ValidationError::OrderViolation(a, b) => write!(f, "{b} listed before {a}"),
            ValidationError::UnmatchedComm(tag) => write!(f, "unmatched message {tag}"),
            ValidationError::Deadlock { executed, total } => {
                write!(f, "deadlock after {executed}/{total} actions")
            }
            ValidationError::MissingFlush(d) => write!(f, "device {d} missing optimizer step"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validate a lowered schedule. Returns the first violated invariant.
pub fn validate(schedule: &Schedule) -> Result<(), ValidationError> {
    check_completeness(schedule)?;
    check_chain_order(schedule)?;
    check_comm_matching(schedule)?;
    check_executability(schedule)?;
    check_flush(schedule)?;
    Ok(())
}

fn check_completeness(schedule: &Schedule) -> Result<(), ValidationError> {
    let s = schedule.stage_map.stages;
    let b = schedule.config.micro_batches;
    let mut seen: HashSet<(u32, u32, bool)> = HashSet::with_capacity((2 * s * b) as usize);
    for (dev, action) in schedule.iter_actions() {
        let (mb, stage, backward) = match action {
            Action::Forward { mb, stage } => (*mb, *stage, false),
            Action::Backward { mb, stage } => (*mb, *stage, true),
            _ => continue,
        };
        let op = ComputeOp { mb, stage, backward };
        if !seen.insert((mb.0, stage.0, backward)) {
            return Err(ValidationError::DuplicateOp(op));
        }
        if schedule.stage_map.device_of(mb, stage) != dev {
            return Err(ValidationError::WrongDevice(op, dev));
        }
    }
    for m in 0..b {
        for st in 0..s {
            for backward in [false, true] {
                if !seen.contains(&(m, st, backward)) {
                    return Err(ValidationError::MissingOp(ComputeOp {
                        mb: MicroBatch(m),
                        stage: crate::ids::StageId(st),
                        backward,
                    }));
                }
            }
        }
    }
    Ok(())
}

fn check_chain_order(schedule: &Schedule) -> Result<(), ValidationError> {
    let s = schedule.stage_map.stages;
    for list in &schedule.lists {
        let mut last_pos: HashMap<u32, (u32, ComputeOp)> = HashMap::new();
        for action in &list.actions {
            let op = match action {
                Action::Forward { mb, stage } => {
                    ComputeOp { mb: *mb, stage: *stage, backward: false }
                }
                Action::Backward { mb, stage } => {
                    ComputeOp { mb: *mb, stage: *stage, backward: true }
                }
                _ => continue,
            };
            let pos = op.pos(s);
            if let Some(&(prev_pos, prev_op)) = last_pos.get(&op.mb.0) {
                if pos < prev_pos {
                    return Err(ValidationError::OrderViolation(op, prev_op));
                }
            }
            last_pos.insert(op.mb.0, (pos, op));
        }
    }
    Ok(())
}

fn check_comm_matching(schedule: &Schedule) -> Result<(), ValidationError> {
    // sends keyed by (destination, tag); recvs keyed by (executing device, tag).
    let mut sends: HashMap<(u32, MsgTag), i64> = HashMap::new();
    for (dev, action) in schedule.iter_actions() {
        for op in action.comm_ops() {
            match op.dir {
                CommDir::Send => *sends.entry((op.peer.0, op.tag)).or_default() += 1,
                CommDir::Recv => *sends.entry((dev.0, op.tag)).or_default() -= 1,
            }
        }
    }
    for ((_, tag), count) in sends {
        if count != 0 {
            return Err(ValidationError::UnmatchedComm(tag));
        }
    }
    Ok(())
}

/// Abstract interpretation under engine semantics.
fn check_executability(schedule: &Schedule) -> Result<(), ValidationError> {
    let s = schedule.stage_map.stages;
    let n_dev = schedule.lists.len();
    let total: usize = schedule.lists.iter().map(|l| l.actions.len()).sum();
    let mut pc = vec![0usize; n_dev];
    // messages in flight: (receiver, tag)
    let mut sent: HashSet<(u32, MsgTag)> = HashSet::new();
    // completed compute ops: (mb, pos)
    let mut done: HashSet<(u32, u32)> = HashSet::new();
    // batches whose sends are already posted: (device, pc)
    let mut posted: HashSet<(usize, usize)> = HashSet::new();
    let mut executed = 0usize;

    loop {
        let mut progress = false;
        for (d, list) in schedule.lists.iter().enumerate() {
            // Advance this device as far as possible.
            while pc[d] < list.actions.len() {
                let action = &list.actions[pc[d]];
                let can_run = match action {
                    Action::Forward { mb, stage } | Action::Backward { mb, stage } => {
                        let op = ComputeOp {
                            mb: *mb,
                            stage: *stage,
                            backward: matches!(action, Action::Backward { .. }),
                        };
                        let pos = op.pos(s);
                        pos == 0 || done.contains(&(mb.0, pos - 1))
                    }
                    Action::Comm(op) => match op.dir {
                        CommDir::Send => {
                            sent.insert((op.peer.0, op.tag));
                            true
                        }
                        CommDir::Recv => sent.contains(&(d as u32, op.tag)),
                    },
                    Action::BatchedComm(ops) => {
                        // Post all sends atomically the first time we reach
                        // the batch, then wait for every member recv.
                        if posted.insert((d, pc[d])) {
                            for op in ops {
                                if op.dir == CommDir::Send {
                                    sent.insert((op.peer.0, op.tag));
                                }
                            }
                        }
                        ops.iter()
                            .filter(|o| o.dir == CommDir::Recv)
                            .all(|o| sent.contains(&(d as u32, o.tag)))
                    }
                    Action::OptimizerStep => true,
                };
                if !can_run {
                    break;
                }
                if let Action::Forward { mb, stage } | Action::Backward { mb, stage } = action {
                    let op = ComputeOp {
                        mb: *mb,
                        stage: *stage,
                        backward: matches!(action, Action::Backward { .. }),
                    };
                    done.insert((mb.0, op.pos(s)));
                }
                pc[d] += 1;
                executed += 1;
                progress = true;
            }
        }
        if pc.iter().enumerate().all(|(d, &p)| p == schedule.lists[d].actions.len()) {
            return Ok(());
        }
        if !progress {
            return Err(ValidationError::Deadlock { executed, total });
        }
    }
}

fn check_flush(schedule: &Schedule) -> Result<(), ValidationError> {
    for list in &schedule.lists {
        if list.actions.last() != Some(&Action::OptimizerStep) {
            return Err(ValidationError::MissingFlush(list.device));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PipelineConfig, Scheme};
    use crate::schedule::build_schedule;

    fn schemes() -> Vec<Scheme> {
        vec![
            Scheme::GPipe,
            Scheme::Dapple,
            Scheme::Interleaved { chunks: 2 },
            Scheme::Chimera,
            Scheme::Hanayo { waves: 1 },
            Scheme::Hanayo { waves: 2 },
            Scheme::Hanayo { waves: 3 },
        ]
    }

    #[test]
    fn all_generated_schedules_validate() {
        for p in [2u32, 4, 6, 8] {
            for b in [p, 2 * p, 3 * p] {
                for scheme in schemes() {
                    if matches!(scheme, Scheme::Chimera) && (p % 2 != 0 || b % 2 != 0) {
                        continue;
                    }
                    let cfg = PipelineConfig::new(p, b, scheme).unwrap();
                    let s = build_schedule(&cfg).unwrap();
                    validate(&s).unwrap_or_else(|e| panic!("{scheme} P={p} B={b}: {e}"));
                }
            }
        }
    }

    #[test]
    fn detects_missing_flush() {
        let cfg = PipelineConfig::new(2, 2, Scheme::GPipe).unwrap();
        let mut s = build_schedule(&cfg).unwrap();
        s.lists[0].actions.pop();
        assert!(matches!(validate(&s), Err(ValidationError::MissingFlush(_))));
    }

    #[test]
    fn detects_duplicate_op() {
        let cfg = PipelineConfig::new(2, 2, Scheme::GPipe).unwrap();
        let mut s = build_schedule(&cfg).unwrap();
        let dup = s.lists[0].actions.iter().find(|a| a.is_compute()).cloned().unwrap();
        s.lists[0].actions.insert(0, dup);
        assert!(matches!(
            validate(&s),
            Err(ValidationError::DuplicateOp(_) | ValidationError::OrderViolation(_, _))
        ));
    }

    #[test]
    fn detects_missing_op() {
        let cfg = PipelineConfig::new(2, 2, Scheme::GPipe).unwrap();
        let mut s = build_schedule(&cfg).unwrap();
        let idx =
            s.lists[1].actions.iter().position(|a| matches!(a, Action::Backward { .. })).unwrap();
        s.lists[1].actions.remove(idx);
        assert!(matches!(validate(&s), Err(ValidationError::MissingOp(_))));
    }

    #[test]
    fn detects_unmatched_comm() {
        let cfg = PipelineConfig::new(2, 2, Scheme::GPipe).unwrap();
        let mut s = build_schedule(&cfg).unwrap();
        // Remove the first recv from device 1.
        let idx = s.lists[1]
            .actions
            .iter()
            .position(|a| a.comm_ops().iter().any(|o| o.dir == CommDir::Recv))
            .unwrap();
        s.lists[1].actions.remove(idx);
        assert!(matches!(validate(&s), Err(ValidationError::UnmatchedComm(_))));
    }

    #[test]
    fn detects_deadlock_from_reordered_recv() {
        // Swap a recv on device 1 to before the send it depends on cannot be
        // constructed directly (send is on device 0), so instead reorder
        // device 1's compute before its recv: the interpreter must stall.
        let cfg = PipelineConfig::new(2, 2, Scheme::GPipe).unwrap();
        let mut s = build_schedule(&cfg).unwrap();
        // Device 1 list starts: recv, F(...). Swap them: F needs the recv's
        // data (chain dep), so the abstract interpreter blocks forever on
        // the compute (its predecessor never "done" before... actually the
        // recv is what stalls; the compute stalls on chain dep).
        let acts = &mut s.lists[1].actions;
        acts.swap(0, 1);
        // Also strip device 0's sends so the message never arrives.
        s.lists[0].actions.retain(|a| !a.comm_ops().iter().any(|o| o.dir == CommDir::Send));
        let r = validate(&s);
        assert!(
            matches!(r, Err(ValidationError::Deadlock { .. } | ValidationError::UnmatchedComm(_))),
            "got {r:?}"
        );
    }
}
