//! Communication lowering: from compute order to a full action list.
//!
//! Given a [`ComputeSchedule`] (per-device op order), this pass inserts the
//! point-to-point transfers implied by the dependency chains:
//!
//! * after a compute op whose successor runs on another device → `Send`,
//! * before a compute op whose predecessor ran on another device → `Recv`,
//! * a final `OptimizerStep` (the synchronous flush) on every device.
//!
//! A second pass reproduces the paper's §4.2 NCCL workaround: when the comm
//! ops between two compute slots on a device exchange messages with the
//! *same peer in both directions* (cross-communication at wave folds), they
//! are merged into a single [`Action::BatchedComm`] — the analogue of
//! `batch_isend_irecv`, whose extra synchronisation is one of the four
//! bubble sources of Fig. 7.

use crate::action::{Action, ActionList, CommDir, CommOp, MsgTag, Payload, Schedule};
use crate::chain::{ComputeOp, ComputeSchedule};
use crate::ids::DeviceId;

/// Producer of the message consumed by `op`, if any: `(producer_device,
/// tag)`. `None` when `op` has no upstream dependency (first forward) or the
/// dependency is device-local.
fn upstream(cs: &ComputeSchedule, op: ComputeOp) -> Option<(DeviceId, MsgTag)> {
    let s = cs.stage_map.stages;
    let pos = op.pos(s);
    if pos == 0 {
        return None;
    }
    let prev = ComputeOp::from_pos(op.mb, pos - 1, s);
    let here = cs.stage_map.device_of(op.mb, op.stage);
    let there = cs.stage_map.device_of(prev.mb, prev.stage);
    if here == there {
        return None;
    }
    let payload = if op.backward { Payload::Gradient } else { Payload::Activation };
    Some((there, MsgTag { mb: op.mb, stage: op.stage, payload }))
}

/// Consumer of the message produced by `op`, if any: `(consumer_device,
/// tag)`.
fn downstream(cs: &ComputeSchedule, op: ComputeOp) -> Option<(DeviceId, MsgTag)> {
    let s = cs.stage_map.stages;
    let pos = op.pos(s);
    if pos + 1 >= 2 * s {
        return None;
    }
    let next = ComputeOp::from_pos(op.mb, pos + 1, s);
    let here = cs.stage_map.device_of(op.mb, op.stage);
    let there = cs.stage_map.device_of(next.mb, next.stage);
    if here == there {
        return None;
    }
    let payload = if next.backward { Payload::Gradient } else { Payload::Activation };
    Some((there, MsgTag { mb: next.mb, stage: next.stage, payload }))
}

/// Merge a run of comm ops into actions, batching bidirectional exchanges
/// with a common peer (cross-communication).
fn emit_run(run: &mut Vec<CommOp>, out: &mut Vec<Action>) {
    if run.is_empty() {
        return;
    }
    let cross = run.iter().any(|a| {
        a.dir == CommDir::Send && run.iter().any(|b| b.dir == CommDir::Recv && b.peer == a.peer)
    });
    if cross && run.len() > 1 {
        out.push(Action::BatchedComm(std::mem::take(run)));
    } else {
        out.extend(run.drain(..).map(Action::Comm));
    }
}

/// Lower a compute schedule into a complete executable [`Schedule`].
pub fn lower(cs: &ComputeSchedule) -> Schedule {
    let mut lists = Vec::with_capacity(cs.per_device.len());
    for (d, ops) in cs.per_device.iter().enumerate() {
        let device = DeviceId(d as u32);
        let mut actions: Vec<Action> = Vec::with_capacity(ops.len() * 2 + 1);
        // Pending comm ops not yet flushed into `actions` (the current run).
        let mut run: Vec<CommOp> = Vec::new();
        for &op in ops {
            if let Some((peer, tag)) = upstream(cs, op) {
                run.push(CommOp { dir: CommDir::Recv, peer, tag });
            }
            emit_run(&mut run, &mut actions);
            actions.push(if op.backward {
                Action::Backward { mb: op.mb, stage: op.stage }
            } else {
                Action::Forward { mb: op.mb, stage: op.stage }
            });
            if let Some((peer, tag)) = downstream(cs, op) {
                run.push(CommOp { dir: CommDir::Send, peer, tag });
            }
        }
        emit_run(&mut run, &mut actions);
        actions.push(Action::OptimizerStep);
        lists.push(ActionList { device, actions });
    }
    Schedule { config: cs.config, stage_map: cs.stage_map.clone(), lists }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PipelineConfig, Scheme};
    use crate::schedule::build_compute_schedule;
    use std::collections::HashMap;

    fn lowered(p: u32, b: u32, scheme: Scheme) -> Schedule {
        let cfg = PipelineConfig::new(p, b, scheme).unwrap();
        lower(&build_compute_schedule(&cfg).unwrap())
    }

    /// Every send must have exactly one matching recv on the named peer and
    /// vice versa.
    fn assert_matched(s: &Schedule) {
        let mut sends: HashMap<(u32, MsgTag), u32> = HashMap::new();
        let mut recvs: HashMap<(u32, MsgTag), u32> = HashMap::new();
        for (dev, action) in s.iter_actions() {
            for op in action.comm_ops() {
                match op.dir {
                    CommDir::Send => {
                        // send lives on `dev`, targets `op.peer`
                        *sends.entry((op.peer.0, op.tag)).or_default() += 1;
                        // the matching recv must name `dev` as its peer
                    }
                    CommDir::Recv => {
                        *recvs.entry((dev.0, op.tag)).or_default() += 1;
                    }
                }
            }
        }
        assert_eq!(sends, recvs, "unmatched sends/recvs");
        for count in sends.values() {
            assert_eq!(*count, 1, "duplicate message");
        }
    }

    #[test]
    fn sends_and_recvs_match_for_all_schemes() {
        for scheme in [
            Scheme::GPipe,
            Scheme::Dapple,
            Scheme::Chimera,
            Scheme::Hanayo { waves: 1 },
            Scheme::Hanayo { waves: 2 },
            Scheme::Interleaved { chunks: 2 },
        ] {
            assert_matched(&lowered(4, 4, scheme));
            assert_matched(&lowered(4, 8, scheme));
        }
    }

    #[test]
    fn straight_pipe_batches_only_at_phase_boundary() {
        // In GPipe the only bidirectional exchange with a single peer is
        // the forward/backward turnaround (send last activation downstream,
        // receive first gradient from the same peer). Any batch must
        // therefore pair exactly one activation send with gradient recvs —
        // never two messages of the same payload in the same direction pair.
        let s = lowered(4, 4, Scheme::GPipe);
        for (_, a) in s.iter_actions() {
            if let Action::BatchedComm(ops) = a {
                let act_sends = ops
                    .iter()
                    .filter(|o| o.dir == CommDir::Send && o.tag.payload == Payload::Activation)
                    .count();
                let grad_recvs = ops
                    .iter()
                    .filter(|o| o.dir == CommDir::Recv && o.tag.payload == Payload::Gradient)
                    .count();
                assert_eq!(
                    (act_sends + grad_recvs),
                    ops.len(),
                    "GPipe batch must be the turnaround pattern: {a}"
                );
            }
        }
    }

    #[test]
    fn wave_folds_produce_batched_cross_comm() {
        // Hanayo with ≥1 wave on ≥4 devices must batch at least one
        // bidirectional exchange (the §4.2 deadlock-avoidance case).
        let s = lowered(4, 4, Scheme::Hanayo { waves: 2 });
        let batches = s.iter_actions().filter(|(_, a)| matches!(a, Action::BatchedComm(_))).count();
        assert!(batches > 0, "expected cross-communication batches");
    }

    #[test]
    fn fold_and_wave_boundaries_are_silent() {
        // The fold (stage P-1 → P) shares a device, so no *activation* ever
        // flows into stage P and no *gradient* ever flows into stage P-1.
        let s = lowered(4, 4, Scheme::Hanayo { waves: 1 });
        for (_, a) in s.iter_actions() {
            for op in a.comm_ops() {
                match op.tag.payload {
                    Payload::Activation => {
                        assert_ne!(op.tag.stage.0, 4, "fold activation should be local")
                    }
                    Payload::Gradient => {
                        assert_ne!(op.tag.stage.0, 3, "fold gradient should be local")
                    }
                }
            }
        }
    }

    #[test]
    fn message_volume_scales_with_waves() {
        let count = |s: &Schedule| {
            s.iter_actions()
                .map(|(_, a)| a.comm_ops().iter().filter(|o| o.dir == CommDir::Send).count())
                .sum::<usize>()
        };
        let h1 = count(&lowered(4, 4, Scheme::Hanayo { waves: 1 }));
        let h2 = count(&lowered(4, 4, Scheme::Hanayo { waves: 2 }));
        let h4 = count(&lowered(4, 4, Scheme::Hanayo { waves: 4 }));
        assert!(h1 < h2 && h2 < h4, "waves must add communication: {h1} {h2} {h4}");
    }

    #[test]
    fn first_forward_never_receives() {
        let s = lowered(4, 4, Scheme::Dapple);
        // Device 0's first action must be compute (stage 0 has no input).
        assert!(s.lists[0].actions[0].is_compute());
    }
}
