//! Stage→device placement: the geometric heart of every pipeline scheme.
//!
//! The paper's central observation (§3.2) is that a pipeline's *shape* is a
//! path through devices: GPipe/DAPPLE walk straight down, Chimera runs two
//! straight pipes in opposite directions, and Hanayo folds a single pipe
//! into `W` "V"-shaped waves. A [`StageMap`] captures exactly this: for each
//! group of micro-batches, the sequence of devices visited by stages
//! `0..S`.

use crate::config::{PipelineConfig, Scheme};
use crate::ids::{DeviceId, MicroBatch, ReplicaId, StageId};
use serde::{Deserialize, Serialize};

/// One pipeline "direction group": a set of micro-batches that share the
/// same stage→device path and weight replica.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathGroup {
    /// `path[s]` is the device executing stage `s` for this group's
    /// micro-batches. Length `S`.
    pub path: Vec<DeviceId>,
    /// Which weight copy this group trains. All schemes except Chimera use
    /// replica 0 everywhere.
    pub replica: ReplicaId,
}

/// Complete placement of stages on devices for one pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageMap {
    /// `P`: number of devices.
    pub devices: u32,
    /// `S`: number of stages.
    pub stages: u32,
    /// The direction groups (1 for most schemes, 2 for Chimera).
    pub groups: Vec<PathGroup>,
    /// `mb_group[m]` is the group index of micro-batch `m`. Length `B`.
    pub mb_group: Vec<usize>,
}

impl StageMap {
    /// Build the placement for a validated configuration.
    pub fn for_config(cfg: &PipelineConfig) -> StageMap {
        let p = cfg.devices;
        let b = cfg.micro_batches;
        match cfg.scheme {
            Scheme::GPipe | Scheme::Dapple | Scheme::AsyncPipeDream => {
                let path = (0..p).map(DeviceId).collect();
                StageMap {
                    devices: p,
                    stages: p,
                    groups: vec![PathGroup { path, replica: ReplicaId(0) }],
                    mb_group: vec![0; b as usize],
                }
            }
            Scheme::Interleaved { chunks } => {
                // Megatron-LM interleaving: stage s lives on device s mod P,
                // so each device holds `chunks` evenly spaced model chunks.
                let s = p * chunks;
                let path = (0..s).map(|st| DeviceId(st % p)).collect();
                StageMap {
                    devices: p,
                    stages: s,
                    groups: vec![PathGroup { path, replica: ReplicaId(0) }],
                    mb_group: vec![0; b as usize],
                }
            }
            Scheme::Chimera => {
                // Two straight pipes in opposite directions, each with its
                // own weight replica. Down-pipe micro-batches are the first
                // half (Fig. 3c / Fig. 5: "micro-batch 0 and 1 are
                // Pipe_bright ... 2 and 3 are Pipe_dark").
                let down = (0..p).map(DeviceId).collect();
                let up = (0..p).rev().map(DeviceId).collect();
                let half = (b / 2) as usize;
                let mut mb_group = vec![0usize; b as usize];
                for g in mb_group.iter_mut().skip(half) {
                    *g = 1;
                }
                StageMap {
                    devices: p,
                    stages: p,
                    groups: vec![
                        PathGroup { path: down, replica: ReplicaId(0) },
                        PathGroup { path: up, replica: ReplicaId(1) },
                    ],
                    mb_group,
                }
            }
            Scheme::Hanayo { waves } => {
                let path = wave_path(p, waves);
                StageMap {
                    devices: p,
                    stages: 2 * waves * p,
                    groups: vec![PathGroup { path, replica: ReplicaId(0) }],
                    mb_group: vec![0; b as usize],
                }
            }
        }
    }

    /// Device executing `stage` for micro-batch `mb`.
    #[inline]
    pub fn device_of(&self, mb: MicroBatch, stage: StageId) -> DeviceId {
        self.groups[self.mb_group[mb.idx()]].path[stage.idx()]
    }

    /// Group index of a micro-batch.
    #[inline]
    pub fn group_of(&self, mb: MicroBatch) -> usize {
        self.mb_group[mb.idx()]
    }

    /// All `(group, stage)` partitions resident on `device`, i.e. the local
    /// modules it must hold. Order: by group, then stage.
    pub fn modules_on(&self, device: DeviceId) -> Vec<(usize, StageId)> {
        let mut out = Vec::new();
        for (g, group) in self.groups.iter().enumerate() {
            for (s, &d) in group.path.iter().enumerate() {
                if d == device {
                    out.push((g, StageId(s as u32)));
                }
            }
        }
        out
    }

    /// Number of model-stage partitions held by each device, counting
    /// replicated groups separately (this drives weight memory).
    pub fn stages_held(&self) -> Vec<usize> {
        let mut held = vec![0usize; self.devices as usize];
        for group in &self.groups {
            for &d in &group.path {
                held[d.idx()] += 1;
            }
        }
        held
    }
}

/// The wave path of §3.2/§3.3: `W` "V"s. Wave `k` descends through devices
/// `0..P` (stages `2kP .. 2kP+P`) and ascends back through `P-1..0` (stages
/// `2kP+P .. 2kP+2P`). Consecutive stages at the fold (`P-1`→`P`) and at
/// wave boundaries (`2P-1`→`2P`) share a device, which is exactly why the
/// swap in Fig. 5 removes communication.
pub fn wave_path(devices: u32, waves: u32) -> Vec<DeviceId> {
    let p = devices;
    let mut path = Vec::with_capacity((2 * waves * p) as usize);
    for _ in 0..waves {
        path.extend((0..p).map(DeviceId));
        path.extend((0..p).rev().map(DeviceId));
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;

    fn cfg(p: u32, b: u32, scheme: Scheme) -> PipelineConfig {
        PipelineConfig::new(p, b, scheme).unwrap()
    }

    #[test]
    fn wave_path_is_w_shaped() {
        let path = wave_path(4, 2);
        let ranks: Vec<u32> = path.iter().map(|d| d.0).collect();
        assert_eq!(ranks, vec![0, 1, 2, 3, 3, 2, 1, 0, 0, 1, 2, 3, 3, 2, 1, 0]);
    }

    #[test]
    fn wave_folds_are_local() {
        // No communication at the V fold or at wave boundaries.
        for (p, w) in [(2, 1), (4, 2), (8, 4), (3, 3)] {
            let path = wave_path(p, w);
            // fold points: indices P-1, P within each wave; boundaries 2kP.
            for k in 0..w {
                let base = (2 * k * p) as usize;
                assert_eq!(path[base + p as usize - 1], path[base + p as usize]);
                if k > 0 {
                    assert_eq!(path[base - 1], path[base]);
                }
            }
        }
    }

    #[test]
    fn hanayo_each_device_holds_2w_stages() {
        let map = StageMap::for_config(&cfg(4, 4, Scheme::Hanayo { waves: 2 }));
        assert_eq!(map.stages, 16);
        for held in map.stages_held() {
            assert_eq!(held, 4); // 2W = 4
        }
    }

    #[test]
    fn chimera_devices_hold_one_stage_per_replica() {
        let map = StageMap::for_config(&cfg(4, 4, Scheme::Chimera));
        assert_eq!(map.stages, 4);
        for held in map.stages_held() {
            assert_eq!(held, 2);
        }
        // Down pipe: mb0 stage0 on P0; up pipe: mb2 stage0 on P3.
        assert_eq!(map.device_of(MicroBatch(0), StageId(0)), DeviceId(0));
        assert_eq!(map.device_of(MicroBatch(2), StageId(0)), DeviceId(3));
        assert_eq!(map.device_of(MicroBatch(3), StageId(3)), DeviceId(0));
    }

    #[test]
    fn straight_pipes_are_identity() {
        for scheme in [Scheme::GPipe, Scheme::Dapple] {
            let map = StageMap::for_config(&cfg(8, 8, scheme));
            for s in 0..8 {
                assert_eq!(map.device_of(MicroBatch(0), StageId(s)), DeviceId(s));
            }
        }
    }

    #[test]
    fn interleaved_round_robin() {
        let map = StageMap::for_config(&cfg(4, 4, Scheme::Interleaved { chunks: 2 }));
        assert_eq!(map.stages, 8);
        assert_eq!(map.device_of(MicroBatch(0), StageId(5)), DeviceId(1));
        for held in map.stages_held() {
            assert_eq!(held, 2);
        }
    }

    #[test]
    fn modules_on_reports_local_partitions() {
        let map = StageMap::for_config(&cfg(4, 4, Scheme::Hanayo { waves: 1 }));
        // Device 0 holds stage 0 (down leg) and stage 7 (up leg end).
        let mods = map.modules_on(DeviceId(0));
        assert_eq!(mods, vec![(0, StageId(0)), (0, StageId(7))]);
        let mods3 = map.modules_on(DeviceId(3));
        assert_eq!(mods3, vec![(0, StageId(3)), (0, StageId(4))]);
    }

    #[test]
    fn hanayo_last_stage_lands_on_device_zero() {
        // The loss is computed where backward begins: device 0. This is the
        // property that lets Hanayo start backward without an extra hop.
        for (p, w) in [(2, 1), (4, 1), (4, 2), (8, 2), (8, 4)] {
            let map = StageMap::for_config(&cfg(p, p, Scheme::Hanayo { waves: w }));
            let last = StageId(map.stages - 1);
            assert_eq!(map.device_of(MicroBatch(0), last), DeviceId(0));
        }
    }
}
