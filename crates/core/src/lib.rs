//! # hanayo-core
//!
//! Core library reproducing the scheduling contribution of
//! *"Hanayo: Harnessing Wave-like Pipeline Parallelism for Enhanced Large
//! Model Training Efficiency"* (Liu, Cheng, Zhou & You, SC '23).
//!
//! The crate is organised around one central idea taken directly from the
//! paper: **a pipeline-parallel algorithm is data**. A [`schedule::Scheduler`]
//! turns a [`config::PipelineConfig`] into a frozen [`action::Schedule`] — a
//! per-device list of fine-grained actions (forward/backward of one
//! micro-batch on one local model partition, sends/receives of activations
//! and gradients, batched cross-communication, the optimizer step). The
//! schedule can then be executed by any engine: the discrete-event simulator
//! in `hanayo-sim` or the real threaded runtime in `hanayo-runtime`.
//!
//! Implemented schedules:
//!
//! * **GPipe** — all forwards then all backwards ([`schedule::gpipe`]).
//! * **DAPPLE / 1F1B** — the one-forward-one-backward schedule
//!   ([`schedule::dapple`]).
//! * **Interleaved 1F1B** — Megatron-LM's virtual-stage variant
//!   ([`schedule::interleaved`]).
//! * **Chimera** — bidirectional pipelines with two weight replicas
//!   ([`schedule::chimera`]).
//! * **Hanayo** — the paper's wave-like pipeline with an arbitrary number of
//!   waves ([`schedule::hanayo`]); `waves = 1` on `P/2` devices is exactly
//!   the paper's *Chimera-wave* transformation (see [`transform`]).
//! * **PipeDream-style asynchronous 1F1B** — for the paper's Fig. 4
//!   illustration ([`schedule::async_pipedream`]).
//!
//! The analytical side of the paper (Table 1, Fig. 1, Fig. 2, Eq. 1 and the
//! Fig. 7 bubble-zone taxonomy) lives in [`analysis`]. The unit-based peak
//! memory accounting used in Fig. 3's `M_w`/`M_a` annotations lives in
//! [`memory`], and the textual Gantt rendering of Figs. 3/5/6 in [`gantt`].

pub mod abort;
pub mod action;
pub mod analysis;
pub mod chain;
pub mod comm;
pub mod config;
pub mod gantt;
pub mod ids;
pub mod memory;
pub mod schedule;
pub mod stage_map;
pub mod transform;
pub mod validate;

pub mod prelude {
    //! Convenient glob import of the most frequently used items.
    pub use crate::action::{Action, ActionList, CommOp, MsgTag, Payload, Schedule};
    pub use crate::config::{PipelineConfig, Scheme};
    pub use crate::ids::{DeviceId, MicroBatch, StageId};
    pub use crate::schedule::{build_schedule, ScheduleError};
    pub use crate::stage_map::StageMap;
}
