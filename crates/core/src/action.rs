//! The action-list IR: the paper's §4.1 instruction set.
//!
//! Hanayo's runtime "breaks instructions into smaller granularities and
//! augments them with target device rank information and local module rank".
//! We mirror that: every action names the micro-batch, the global stage (from
//! which the local module is derived), and — for communication — the peer
//! device. A [`Schedule`] is the frozen program: one [`ActionList`] per
//! worker plus the [`StageMap`] needed to interpret stage ids.

use crate::config::PipelineConfig;
use crate::ids::{DeviceId, MicroBatch, StageId};
use crate::stage_map::StageMap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a point-to-point message carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Payload {
    /// Output activation of a stage, consumed by the next stage's forward.
    Activation,
    /// Gradient w.r.t. a stage's output, consumed by that stage's backward.
    Gradient,
}

/// Unique identifier of one message within an iteration.
///
/// The tag names the *consumer*: for an activation flowing `s → s+1` the tag
/// stage is `s+1`; for a gradient flowing `s+1 → s` the tag stage is `s`.
/// `(mb, stage, payload)` is unique per iteration, which is what the
/// runtime's tag-matching mailbox relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MsgTag {
    /// Micro-batch the message belongs to.
    pub mb: MicroBatch,
    /// Stage that will consume the message.
    pub stage: StageId,
    /// Activation or gradient.
    pub payload: Payload,
}

impl fmt::Display for MsgTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.payload {
            Payload::Activation => "act",
            Payload::Gradient => "grad",
        };
        write!(f, "{}:{}@{}", k, self.mb, self.stage)
    }
}

/// Direction of a communication op from the executing device's view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommDir {
    /// Post a send to `peer` (non-blocking for the sender in both engines).
    Send,
    /// Wait for a message from `peer` (blocking, but prefetchable).
    Recv,
}

/// One point-to-point communication operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CommOp {
    /// Send or receive.
    pub dir: CommDir,
    /// The other endpoint.
    pub peer: DeviceId,
    /// Message identity.
    pub tag: MsgTag,
}

/// One instruction in a worker's action list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Run the forward pass of `stage` on micro-batch `mb`.
    Forward {
        /// Micro-batch to process.
        mb: MicroBatch,
        /// Global stage id; the local module rank is derived via
        /// [`StageMap::modules_on`].
        stage: StageId,
    },
    /// Run the backward pass of `stage` on micro-batch `mb`, consuming the
    /// stashed forward activation.
    Backward {
        /// Micro-batch to process.
        mb: MicroBatch,
        /// Global stage id.
        stage: StageId,
    },
    /// A single point-to-point send or receive.
    Comm(CommOp),
    /// Cross-communication batched together before initiation — the paper's
    /// `batch_isend_irecv` workaround for NCCL deadlock. All member ops are
    /// posted atomically and the action completes when every member does.
    BatchedComm(Vec<CommOp>),
    /// Synchronous flush: apply accumulated gradients. Terminates every
    /// synchronous schedule.
    OptimizerStep,
}

impl Action {
    /// Is this a compute action (forward or backward)?
    #[inline]
    pub fn is_compute(&self) -> bool {
        matches!(self, Action::Forward { .. } | Action::Backward { .. })
    }

    /// The communication ops contained in this action (empty for compute).
    pub fn comm_ops(&self) -> &[CommOp] {
        match self {
            Action::Comm(op) => std::slice::from_ref(op),
            Action::BatchedComm(ops) => ops,
            _ => &[],
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Forward { mb, stage } => write!(f, "F({mb},{stage})"),
            Action::Backward { mb, stage } => write!(f, "B({mb},{stage})"),
            Action::Comm(CommOp { dir: CommDir::Send, peer, tag }) => {
                write!(f, "send[{tag} -> {peer}]")
            }
            Action::Comm(CommOp { dir: CommDir::Recv, peer, tag }) => {
                write!(f, "recv[{tag} <- {peer}]")
            }
            Action::BatchedComm(ops) => {
                write!(f, "batch{{")?;
                for (i, op) in ops.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", Action::Comm(*op))?;
                }
                write!(f, "}}")
            }
            Action::OptimizerStep => write!(f, "optimizer-step"),
        }
    }
}

/// The ordered instruction stream of one worker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionList {
    /// The worker executing this list.
    pub device: DeviceId,
    /// Instructions in execution order.
    pub actions: Vec<Action>,
}

impl ActionList {
    /// Count of compute actions (forwards + backwards).
    pub fn compute_count(&self) -> usize {
        self.actions.iter().filter(|a| a.is_compute()).count()
    }
}

/// A frozen pipeline program: the output of a scheduler, the input of both
/// execution engines.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// The configuration this schedule was generated from.
    pub config: PipelineConfig,
    /// Stage→device placement.
    pub stage_map: StageMap,
    /// One action list per device, indexed by rank.
    pub lists: Vec<ActionList>,
}

impl Schedule {
    /// Total number of compute actions across all devices. Every schedule
    /// must contain exactly `2 · B · S` (one forward and one backward per
    /// micro-batch per stage).
    pub fn total_compute(&self) -> usize {
        self.lists.iter().map(ActionList::compute_count).sum()
    }

    /// Iterate `(device, action)` pairs in list order.
    pub fn iter_actions(&self) -> impl Iterator<Item = (DeviceId, &Action)> {
        self.lists.iter().flat_map(|l| l.actions.iter().map(move |a| (l.device, a)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_display_is_compact() {
        let tag = MsgTag { mb: MicroBatch(3), stage: StageId(5), payload: Payload::Activation };
        assert_eq!(tag.to_string(), "act:mb3@S5");
    }

    #[test]
    fn action_display_reads_like_the_paper() {
        let a = Action::Forward { mb: MicroBatch(0), stage: StageId(2) };
        assert_eq!(a.to_string(), "F(mb0,S2)");
        let c = Action::Comm(CommOp {
            dir: CommDir::Send,
            peer: DeviceId(1),
            tag: MsgTag { mb: MicroBatch(0), stage: StageId(3), payload: Payload::Activation },
        });
        assert_eq!(c.to_string(), "send[act:mb0@S3 -> P1]");
    }

    #[test]
    fn comm_ops_accessor() {
        let op = CommOp {
            dir: CommDir::Recv,
            peer: DeviceId(0),
            tag: MsgTag { mb: MicroBatch(1), stage: StageId(1), payload: Payload::Gradient },
        };
        assert_eq!(Action::Comm(op).comm_ops().len(), 1);
        assert_eq!(Action::BatchedComm(vec![op, op]).comm_ops().len(), 2);
        assert!(Action::OptimizerStep.comm_ops().is_empty());
        assert!(Action::Forward { mb: MicroBatch(0), stage: StageId(0) }.comm_ops().is_empty());
    }

    #[test]
    fn compute_predicate() {
        assert!(Action::Forward { mb: MicroBatch(0), stage: StageId(0) }.is_compute());
        assert!(Action::Backward { mb: MicroBatch(0), stage: StageId(0) }.is_compute());
        assert!(!Action::OptimizerStep.is_compute());
    }
}
