//! Abstract-time replay and textual Gantt rendering (Figs. 3, 5, 6).
//!
//! [`replay_timeline`] assigns start/end ticks to every compute op of a
//! schedule under abstract unit costs (`T_F`-chunk, `T_B`-chunk, `T_C`),
//! respecting both the per-device order frozen by the generator and the
//! cross-device dependency chains. [`render`] draws the result as one text
//! row per device — forward blocks print the micro-batch as `0-9A-Z`,
//! backward blocks as `a-z`, idle as `.`:
//!
//! ```text
//! P0 |0123aabbccdd..
//! P1 |.0123aabbccdd.
//! ```

use crate::chain::{ComputeOp, ComputeSchedule};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A scheduled compute op with its abstract time span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Tick at which the op starts.
    pub start: u64,
    /// Tick at which the op ends (exclusive).
    pub end: u64,
    /// The op itself.
    pub op: ComputeOp,
}

/// Per-device spans plus the overall makespan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    /// `spans[d]` are device `d`'s ops in execution order.
    pub spans: Vec<Vec<Span>>,
    /// End tick of the last op.
    pub makespan: u64,
}

impl Timeline {
    /// Fraction of device-ticks spent idle between tick 0 and the makespan —
    /// the *bubble ratio* as measured on an executed schedule.
    pub fn bubble_ratio(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        let total = self.makespan * self.spans.len() as u64;
        let busy: u64 = self.spans.iter().flat_map(|s| s.iter()).map(|s| s.end - s.start).sum();
        1.0 - busy as f64 / total as f64
    }

    /// Busy ticks per device.
    pub fn busy_per_device(&self) -> Vec<u64> {
        self.spans.iter().map(|s| s.iter().map(|x| x.end - x.start).sum()).collect()
    }
}

/// Replay a compute schedule under abstract unit costs.
///
/// `f_cost`/`b_cost` are per stage-chunk; `comm_cost` is charged on every
/// cross-device dependency edge (a simple `T_C` model — the full link-level
/// model lives in `hanayo-sim`).
pub fn replay_timeline(cs: &ComputeSchedule, f_cost: u64, b_cost: u64, comm_cost: u64) -> Timeline {
    let s = cs.stage_map.stages;
    let n = cs.per_device.len();
    let mut pc = vec![0usize; n];
    let mut free = vec![0u64; n];
    let mut done: HashMap<(u32, u32), u64> = HashMap::new();
    let mut spans: Vec<Vec<Span>> = (0..n).map(|_| Vec::new()).collect();
    let mut remaining: usize = cs.per_device.iter().map(Vec::len).sum();

    while remaining > 0 {
        let mut progress = false;
        for d in 0..n {
            while pc[d] < cs.per_device[d].len() {
                let op = cs.per_device[d][pc[d]];
                let pos = op.pos(s);
                let dep_ready = if pos == 0 {
                    Some(0)
                } else {
                    done.get(&(op.mb.0, pos - 1)).map(|&t| {
                        let prev = ComputeOp::from_pos(op.mb, pos - 1, s);
                        let prev_dev = cs.stage_map.device_of(prev.mb, prev.stage);
                        if prev_dev.idx() == d {
                            t
                        } else {
                            t + comm_cost
                        }
                    })
                };
                let Some(ready) = dep_ready else { break };
                let start = ready.max(free[d]);
                let cost = if op.backward { b_cost } else { f_cost };
                let end = start + cost;
                spans[d].push(Span { start, end, op });
                done.insert((op.mb.0, pos), end);
                free[d] = end;
                pc[d] += 1;
                remaining -= 1;
                progress = true;
            }
        }
        assert!(progress, "replay stalled on an invalid schedule");
    }

    let makespan = free.into_iter().max().unwrap_or(0);
    Timeline { spans, makespan }
}

/// Forward blocks print the micro-batch as `0-9A-Z`; backward blocks as
/// `a-z` (so forward and backward are distinguishable even for digit
/// indices); `*` beyond the drawable range. Public because it is the
/// shared visual language of every Gantt in the workspace — `hanayo-trace`
/// paints real (simulated-seconds and wall-clock) timelines with the same
/// alphabet.
pub fn block_char(mb: u32, backward: bool) -> char {
    if backward {
        match mb {
            0..=25 => (b'a' + mb as u8) as char,
            _ => '*',
        }
    } else {
        match mb {
            0..=9 => (b'0' + mb as u8) as char,
            10..=35 => (b'A' + (mb - 10) as u8) as char,
            _ => '*',
        }
    }
}

/// The span-agnostic painter behind every ASCII Gantt: one device per
/// row, `rows[d]` holding `(start_col, end_col, char)` cells to fill.
/// [`render`] instantiates it for abstract-tick timelines; `hanayo-trace`
/// instantiates it for real (measured or simulated) timelines scaled to a
/// column budget.
pub fn paint_rows(width: usize, rows: &[Vec<(usize, usize, char)>]) -> String {
    let mut out = String::with_capacity((width + 8) * rows.len());
    for (d, cells) in rows.iter().enumerate() {
        let mut row = vec!['.'; width];
        for &(start, end, ch) in cells {
            for cell in row.iter_mut().take(end.min(width)).skip(start) {
                *cell = ch;
            }
        }
        out.push_str(&format!("P{d:<2}|"));
        out.extend(row);
        out.push('\n');
    }
    out
}

/// Render a timeline as text, one device per row.
pub fn render(tl: &Timeline) -> String {
    let rows: Vec<Vec<(usize, usize, char)>> = tl
        .spans
        .iter()
        .map(|spans| {
            spans
                .iter()
                .map(|span| {
                    (
                        span.start as usize,
                        span.end as usize,
                        block_char(span.op.mb.0, span.op.backward),
                    )
                })
                .collect()
        })
        .collect();
    paint_rows(tl.makespan as usize, &rows)
}

/// Convenience: replay with the paper's drawing costs (`T_B = 2 T_F`,
/// `T_C = 0`) and render.
pub fn render_paper_style(cs: &ComputeSchedule) -> String {
    render(&replay_timeline(cs, 1, 2, 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PipelineConfig, Scheme};
    use crate::schedule::build_compute_schedule;

    fn timeline(p: u32, b: u32, scheme: Scheme) -> Timeline {
        let cfg = PipelineConfig::new(p, b, scheme).unwrap();
        replay_timeline(&build_compute_schedule(&cfg).unwrap(), 1, 2, 0)
    }

    #[test]
    fn gpipe_makespan_matches_closed_form() {
        // (B + P - 1) * (TF + TB) with TF=1, TB=2.
        let tl = timeline(4, 4, Scheme::GPipe);
        assert_eq!(tl.makespan, (4 + 4 - 1) * 3);
    }

    #[test]
    fn dapple_makespan_equals_gpipe_under_unit_costs() {
        // 1F1B does not shorten the critical path, it only moves memory.
        let g = timeline(4, 4, Scheme::GPipe);
        let d = timeline(4, 4, Scheme::Dapple);
        assert_eq!(g.makespan, d.makespan);
    }

    #[test]
    fn bubble_ratio_matches_gpipe_formula() {
        let tl = timeline(8, 8, Scheme::GPipe);
        let expect = 7.0 / 15.0; // (P-1)/(P-1+B)
        assert!((tl.bubble_ratio() - expect).abs() < 1e-9, "{}", tl.bubble_ratio());
    }

    #[test]
    fn hanayo_two_waves_beats_one_wave_beats_dapple() {
        let d = timeline(8, 8, Scheme::Dapple).bubble_ratio();
        let h1 = timeline(8, 8, Scheme::Hanayo { waves: 1 }).bubble_ratio();
        let h2 = timeline(8, 8, Scheme::Hanayo { waves: 2 }).bubble_ratio();
        assert!(h1 < d, "H-1 {h1} vs DAPPLE {d}");
        assert!(h2 < h1, "H-2 {h2} vs H-1 {h1}");
    }

    #[test]
    fn busy_time_is_conserved_across_schemes() {
        // Total busy ticks = 2S per mb per... each mb costs (1+2) per chunk,
        // S chunks: 3S per mb; B mbs → 3SB total, independent of schedule.
        for scheme in [Scheme::GPipe, Scheme::Dapple, Scheme::Hanayo { waves: 2 }] {
            let tl = timeline(4, 4, scheme);
            let busy: u64 = tl.busy_per_device().iter().sum();
            let s = match scheme {
                Scheme::Hanayo { .. } => 16,
                _ => 4,
            };
            assert_eq!(busy, 3 * s * 4, "{scheme}");
        }
    }

    #[test]
    fn render_shapes_are_consistent() {
        let cfg = PipelineConfig::new(4, 4, Scheme::GPipe).unwrap();
        let cs = build_compute_schedule(&cfg).unwrap();
        let text = render_paper_style(&cs);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // all rows equal length
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        // device 0 starts immediately with mb 0 forward
        assert!(lines[0].starts_with("P0 |0"));
    }

    #[test]
    fn block_chars_cover_bases() {
        assert_eq!(block_char(0, false), '0');
        assert_eq!(block_char(0, true), 'a');
        assert_eq!(block_char(10, false), 'A');
        assert_eq!(block_char(10, true), 'k');
        assert_eq!(block_char(99, false), '*');
        assert_eq!(block_char(99, true), '*');
    }
}
