//! Schedule generators: one module per pipeline-parallel algorithm.
//!
//! The entry point is [`build_schedule`], which dispatches on
//! [`Scheme`](crate::config::Scheme), generates the per-device compute order,
//! lowers communication ([`crate::comm`]), and appends the optimizer step.
//! All generators are deterministic.

pub mod async_pipedream;
pub mod chimera;
pub mod custom;
pub mod dapple;
pub mod gpipe;
pub mod hanayo;
pub mod interleaved;
pub mod listsched;
pub mod search;
pub mod table;

use crate::action::Schedule;
use crate::chain::ComputeSchedule;
use crate::comm;
use crate::config::{ConfigError, PipelineConfig, Scheme};
use custom::CustomMapError;
use std::fmt;

/// Errors from schedule generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The configuration itself is invalid.
    Config(ConfigError),
    /// A user-provided stage map is malformed (carries the offending
    /// group/micro-batch index).
    CustomMap(CustomMapError),
    /// The generator could not make progress (a bug guard: indicates a
    /// cyclic placement; never expected for the shipped schemes).
    Deadlock {
        /// Ops scheduled before the generator stalled.
        scheduled: usize,
        /// Ops that should have been scheduled.
        expected: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Config(e) => write!(f, "invalid configuration: {e}"),
            ScheduleError::CustomMap(e) => write!(f, "invalid stage map: {e}"),
            ScheduleError::Deadlock { scheduled, expected } => {
                write!(f, "scheduler deadlock: placed {scheduled} of {expected} compute ops")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<ConfigError> for ScheduleError {
    fn from(e: ConfigError) -> Self {
        ScheduleError::Config(e)
    }
}

impl From<CustomMapError> for ScheduleError {
    fn from(e: CustomMapError) -> Self {
        ScheduleError::CustomMap(e)
    }
}

/// Generate the compute-only schedule (per-device op order) for a
/// configuration. Most callers want [`build_schedule`] instead.
pub fn build_compute_schedule(cfg: &PipelineConfig) -> Result<ComputeSchedule, ScheduleError> {
    cfg.validate()?;
    match cfg.scheme {
        Scheme::GPipe => gpipe::generate(cfg),
        Scheme::Dapple => dapple::generate(cfg),
        Scheme::Interleaved { .. } => interleaved::generate(cfg),
        Scheme::Chimera => chimera::generate(cfg),
        Scheme::Hanayo { .. } => hanayo::generate(cfg),
        Scheme::AsyncPipeDream => async_pipedream::generate(cfg),
    }
}

/// Generate a complete, executable [`Schedule`] (compute order + lowered
/// communication + optimizer step) for a configuration.
///
/// ```
/// use hanayo_core::config::{PipelineConfig, Scheme};
/// use hanayo_core::schedule::build_schedule;
///
/// let cfg = PipelineConfig::new(4, 4, Scheme::Hanayo { waves: 2 }).unwrap();
/// let schedule = build_schedule(&cfg).unwrap();
/// assert_eq!(schedule.lists.len(), 4);
/// // 2 compute ops (fwd+bwd) per micro-batch per stage: 2*4*16
/// assert_eq!(schedule.total_compute(), 128);
/// ```
pub fn build_schedule(cfg: &PipelineConfig) -> Result<Schedule, ScheduleError> {
    let compute = build_compute_schedule(cfg)?;
    Ok(comm::lower(&compute))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_schemes(p: u32) -> Vec<Scheme> {
        vec![
            Scheme::GPipe,
            Scheme::Dapple,
            Scheme::Interleaved { chunks: 2 },
            Scheme::Chimera,
            Scheme::Hanayo { waves: 1 },
            Scheme::Hanayo { waves: 2 },
            Scheme::AsyncPipeDream,
        ]
        .into_iter()
        .filter(move |s| !matches!(s, Scheme::Chimera) || p.is_multiple_of(2))
        .collect()
    }

    #[test]
    fn every_scheme_generates_complete_schedules() {
        for p in [1u32, 2, 4, 8] {
            // B ≥ P, B < P (b = max(1, p/2)) and B = 1 are all legal shapes
            // and must yield complete schedules — no warmup underflow, no
            // truncation.
            for b in [p, 2 * p, (p / 2).max(1), 1] {
                for scheme in all_schemes(p) {
                    if matches!(scheme, Scheme::Chimera) && !b.is_multiple_of(2) {
                        continue;
                    }
                    let cfg = PipelineConfig::new(p, b, scheme).unwrap();
                    let cs = build_compute_schedule(&cfg)
                        .unwrap_or_else(|e| panic!("{scheme} P={p} B={b}: {e}"));
                    assert_eq!(cs.total_ops(), cs.expected_ops(), "{scheme} P={p} B={b} op count");
                }
            }
        }
    }

    #[test]
    fn degenerate_shapes_reject_with_named_reasons() {
        // Every generator returns the structural rejection as a typed
        // `ScheduleError::Config` with the named reason — even when the
        // (pub-field) config bypassed `PipelineConfig::new`.
        for scheme in all_schemes(2) {
            let zero_p = PipelineConfig { devices: 0, micro_batches: 4, scheme };
            assert_eq!(
                build_compute_schedule(&zero_p).unwrap_err(),
                ScheduleError::Config(ConfigError::Empty),
                "{scheme} P=0"
            );
            let zero_b = PipelineConfig { devices: 4, micro_batches: 0, scheme };
            assert_eq!(
                build_compute_schedule(&zero_b).unwrap_err(),
                ScheduleError::Config(ConfigError::Empty),
                "{scheme} B=0"
            );
        }
        let odd_chimera = PipelineConfig { devices: 3, micro_batches: 4, scheme: Scheme::Chimera };
        assert_eq!(
            build_compute_schedule(&odd_chimera).unwrap_err(),
            ScheduleError::Config(ConfigError::ChimeraNeedsEvenSplit)
        );
        let overflow = PipelineConfig {
            devices: 4,
            micro_batches: 4,
            scheme: Scheme::Hanayo { waves: u32::MAX / 4 },
        };
        assert_eq!(
            build_compute_schedule(&overflow).unwrap_err(),
            ScheduleError::Config(ConfigError::StageOverflow)
        );
    }

    #[test]
    fn build_schedule_appends_optimizer_step() {
        let cfg = PipelineConfig::new(4, 4, Scheme::Dapple).unwrap();
        let s = build_schedule(&cfg).unwrap();
        for list in &s.lists {
            assert_eq!(
                list.actions.last(),
                Some(&crate::action::Action::OptimizerStep),
                "every worker flushes"
            );
        }
    }
}
