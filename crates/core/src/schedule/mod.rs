//! Schedule generators: one module per pipeline-parallel algorithm.
//!
//! The entry point is [`build_schedule`], which dispatches on
//! [`Scheme`](crate::config::Scheme), generates the per-device compute order,
//! lowers communication ([`crate::comm`]), and appends the optimizer step.
//! All generators are deterministic.

pub mod async_pipedream;
pub mod chimera;
pub mod custom;
pub mod dapple;
pub mod gpipe;
pub mod hanayo;
pub mod interleaved;
pub mod listsched;

use crate::action::Schedule;
use crate::chain::ComputeSchedule;
use crate::comm;
use crate::config::{ConfigError, PipelineConfig, Scheme};
use std::fmt;

/// Errors from schedule generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The configuration itself is invalid.
    Config(ConfigError),
    /// The generator could not make progress (a bug guard: indicates a
    /// cyclic placement; never expected for the shipped schemes).
    Deadlock {
        /// Ops scheduled before the generator stalled.
        scheduled: usize,
        /// Ops that should have been scheduled.
        expected: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Config(e) => write!(f, "invalid configuration: {e}"),
            ScheduleError::Deadlock { scheduled, expected } => {
                write!(f, "scheduler deadlock: placed {scheduled} of {expected} compute ops")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<ConfigError> for ScheduleError {
    fn from(e: ConfigError) -> Self {
        ScheduleError::Config(e)
    }
}

/// Generate the compute-only schedule (per-device op order) for a
/// configuration. Most callers want [`build_schedule`] instead.
pub fn build_compute_schedule(cfg: &PipelineConfig) -> Result<ComputeSchedule, ScheduleError> {
    cfg.validate()?;
    match cfg.scheme {
        Scheme::GPipe => Ok(gpipe::generate(cfg)),
        Scheme::Dapple => Ok(dapple::generate(cfg)),
        Scheme::Interleaved { .. } => interleaved::generate(cfg),
        Scheme::Chimera => chimera::generate(cfg),
        Scheme::Hanayo { .. } => hanayo::generate(cfg),
        Scheme::AsyncPipeDream => Ok(async_pipedream::generate(cfg)),
    }
}

/// Generate a complete, executable [`Schedule`] (compute order + lowered
/// communication + optimizer step) for a configuration.
///
/// ```
/// use hanayo_core::config::{PipelineConfig, Scheme};
/// use hanayo_core::schedule::build_schedule;
///
/// let cfg = PipelineConfig::new(4, 4, Scheme::Hanayo { waves: 2 }).unwrap();
/// let schedule = build_schedule(&cfg).unwrap();
/// assert_eq!(schedule.lists.len(), 4);
/// // 2 compute ops (fwd+bwd) per micro-batch per stage: 2*4*16
/// assert_eq!(schedule.total_compute(), 128);
/// ```
pub fn build_schedule(cfg: &PipelineConfig) -> Result<Schedule, ScheduleError> {
    let compute = build_compute_schedule(cfg)?;
    Ok(comm::lower(&compute))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_schemes(p: u32) -> Vec<Scheme> {
        vec![
            Scheme::GPipe,
            Scheme::Dapple,
            Scheme::Interleaved { chunks: 2 },
            Scheme::Chimera,
            Scheme::Hanayo { waves: 1 },
            Scheme::Hanayo { waves: 2 },
            Scheme::AsyncPipeDream,
        ]
        .into_iter()
        .filter(move |s| !matches!(s, Scheme::Chimera) || p.is_multiple_of(2))
        .collect()
    }

    #[test]
    fn every_scheme_generates_complete_schedules() {
        for p in [2u32, 4, 8] {
            for b in [p, 2 * p] {
                for scheme in all_schemes(p) {
                    let cfg = PipelineConfig::new(p, b, scheme).unwrap();
                    let cs = build_compute_schedule(&cfg)
                        .unwrap_or_else(|e| panic!("{scheme} P={p} B={b}: {e}"));
                    assert_eq!(cs.total_ops(), cs.expected_ops(), "{scheme} P={p} B={b} op count");
                }
            }
        }
    }

    #[test]
    fn build_schedule_appends_optimizer_step() {
        let cfg = PipelineConfig::new(4, 4, Scheme::Dapple).unwrap();
        let s = build_schedule(&cfg).unwrap();
        for list in &s.lists {
            assert_eq!(
                list.actions.last(),
                Some(&crate::action::Action::OptimizerStep),
                "every worker flushes"
            );
        }
    }
}
