//! Megatron-LM's interleaved 1F1B (Narayanan et al. 2021).
//!
//! Each device holds `v` model chunks assigned round-robin (stage `s` on
//! device `s mod P`), shrinking the per-stage time and thus the warm-up
//! bubble at the cost of `v×` more communication. The paper discusses it
//! (§2.2) as the 1F1B improvement Hanayo's waves generalise; we include it
//! for ablations. The order comes from the generic list scheduler with a
//! 1F1B-style in-flight cap of `P`.

use crate::chain::ComputeSchedule;
use crate::config::PipelineConfig;
use crate::schedule::listsched::{list_schedule, ListParams, RetireRule};
use crate::schedule::ScheduleError;
use crate::stage_map::StageMap;

/// Generate the interleaved 1F1B per-device compute order.
pub fn generate(cfg: &PipelineConfig) -> Result<ComputeSchedule, ScheduleError> {
    let map = StageMap::for_config(cfg);
    let params = ListParams {
        cap: Some(cfg.devices),
        retire: RetireRule::ForwardComplete,
        ..Default::default()
    };
    list_schedule(cfg, map, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;

    #[test]
    fn complete_schedules() {
        for (p, b, v) in [(2, 2, 2), (4, 4, 2), (4, 8, 4)] {
            let cfg = PipelineConfig::new(p, b, Scheme::Interleaved { chunks: v }).unwrap();
            let cs = generate(&cfg).unwrap();
            assert_eq!(cs.total_ops(), cs.expected_ops(), "P={p} B={b} v={v}");
        }
    }

    #[test]
    fn chunks_distributed_round_robin() {
        let cfg = PipelineConfig::new(4, 4, Scheme::Interleaved { chunks: 2 }).unwrap();
        let cs = generate(&cfg).unwrap();
        // Device 0 executes stages 0 and 4 only.
        for op in &cs.per_device[0] {
            assert!(op.stage.0 % 4 == 0, "unexpected stage {} on device 0", op.stage);
        }
    }
}
