//! User-defined pipeline schemes.
//!
//! The paper's framework "offer[s] interfaces for users to modify existing
//! schemes or develop their own" (§4.1). This module is that interface:
//! hand the generator an arbitrary [`StageMap`] — any stage→device path(s)
//! you can draw — plus scheduling knobs, and get back a validated,
//! executable schedule usable by both engines.
//!
//! ```
//! use hanayo_core::config::{PipelineConfig, Scheme};
//! use hanayo_core::ids::{DeviceId, ReplicaId};
//! use hanayo_core::schedule::custom::build_custom_schedule;
//! use hanayo_core::schedule::listsched::ListParams;
//! use hanayo_core::stage_map::{PathGroup, StageMap};
//! use hanayo_core::validate::validate;
//!
//! // A "zigzag" pipeline: 0→1→2→3→1→2 (stages revisit the middle).
//! let path = [0u32, 1, 2, 3, 1, 2].map(DeviceId).to_vec();
//! let map = StageMap {
//!     devices: 4,
//!     stages: 6,
//!     groups: vec![PathGroup { path, replica: ReplicaId(0) }],
//!     mb_group: vec![0; 4],
//! };
//! let cfg = PipelineConfig::new(4, 4, Scheme::GPipe).unwrap(); // P and B only
//! let schedule = build_custom_schedule(&cfg, map, ListParams::default()).unwrap();
//! validate(&schedule).unwrap();
//! ```

use crate::action::Schedule;
use crate::comm;
use crate::config::PipelineConfig;
use crate::schedule::listsched::{list_schedule, ListParams};
use crate::schedule::ScheduleError;
use crate::stage_map::StageMap;
use std::fmt;

/// Errors specific to user-provided stage maps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CustomMapError {
    /// A path references a device rank ≥ `devices`.
    DeviceOutOfRange,
    /// `mb_group` length does not match the micro-batch count, or an entry
    /// references a missing group.
    BadGroupAssignment,
    /// A group's path length differs from `stages`.
    BadPathLength,
    /// The map declares no groups.
    NoGroups,
}

impl fmt::Display for CustomMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CustomMapError::DeviceOutOfRange => write!(f, "path references an unknown device"),
            CustomMapError::BadGroupAssignment => write!(f, "bad micro-batch group assignment"),
            CustomMapError::BadPathLength => write!(f, "group path length != stage count"),
            CustomMapError::NoGroups => write!(f, "stage map has no groups"),
        }
    }
}

impl std::error::Error for CustomMapError {}

/// Check a user-provided map against a configuration.
pub fn check_map(cfg: &PipelineConfig, map: &StageMap) -> Result<(), CustomMapError> {
    if map.groups.is_empty() {
        return Err(CustomMapError::NoGroups);
    }
    for group in &map.groups {
        if group.path.len() != map.stages as usize {
            return Err(CustomMapError::BadPathLength);
        }
        if group.path.iter().any(|d| d.0 >= map.devices) {
            return Err(CustomMapError::DeviceOutOfRange);
        }
    }
    if map.mb_group.len() != cfg.micro_batches as usize
        || map.mb_group.iter().any(|&g| g >= map.groups.len())
    {
        return Err(CustomMapError::BadGroupAssignment);
    }
    Ok(())
}

/// Build a complete schedule from a user-provided stage map. The
/// configuration contributes `P` and `B`; its `scheme` field is ignored
/// (the map *is* the scheme).
pub fn build_custom_schedule(
    cfg: &PipelineConfig,
    map: StageMap,
    params: ListParams,
) -> Result<Schedule, ScheduleError> {
    check_map(cfg, &map).map_err(|_| ScheduleError::Config(crate::config::ConfigError::Empty))?;
    let cs = list_schedule(cfg, map, params)?;
    Ok(comm::lower(&cs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use crate::ids::{DeviceId, ReplicaId};
    use crate::stage_map::PathGroup;
    use crate::validate::validate;

    fn cfg(p: u32, b: u32) -> PipelineConfig {
        PipelineConfig::new(p, b, Scheme::GPipe).unwrap()
    }

    fn map(devices: u32, path: Vec<u32>, b: u32) -> StageMap {
        StageMap {
            devices,
            stages: path.len() as u32,
            groups: vec![PathGroup {
                path: path.into_iter().map(DeviceId).collect(),
                replica: ReplicaId(0),
            }],
            mb_group: vec![0; b as usize],
        }
    }

    #[test]
    fn zigzag_pipeline_schedules_and_validates() {
        let m = map(4, vec![0, 1, 2, 3, 1, 2], 4);
        let s = build_custom_schedule(&cfg(4, 4), m, ListParams::default()).unwrap();
        validate(&s).unwrap();
    }

    #[test]
    fn single_device_chain_works() {
        // Degenerate: the whole "pipeline" on one device — still valid.
        let m = map(1, vec![0, 0, 0], 2);
        let s = build_custom_schedule(&cfg(1, 2), m, ListParams::default()).unwrap();
        validate(&s).unwrap();
        // No communication at all.
        for (_, a) in s.iter_actions() {
            assert!(
                a.comm_ops().is_empty()
                    || a.is_compute()
                    || a == &crate::action::Action::OptimizerStep
            );
        }
    }

    #[test]
    fn reversed_pipeline_is_just_as_valid() {
        let m = map(3, vec![2, 1, 0], 3);
        let s = build_custom_schedule(&cfg(3, 3), m, ListParams::default()).unwrap();
        validate(&s).unwrap();
    }

    #[test]
    fn rejects_out_of_range_device() {
        let m = map(2, vec![0, 5], 2);
        assert_eq!(check_map(&cfg(2, 2), &m), Err(CustomMapError::DeviceOutOfRange));
    }

    #[test]
    fn rejects_bad_group_assignment() {
        let mut m = map(2, vec![0, 1], 2);
        m.mb_group = vec![0, 7];
        assert_eq!(check_map(&cfg(2, 2), &m), Err(CustomMapError::BadGroupAssignment));
        m.mb_group = vec![0];
        assert_eq!(check_map(&cfg(2, 2), &m), Err(CustomMapError::BadGroupAssignment));
    }

    #[test]
    fn rejects_path_length_mismatch() {
        let mut m = map(2, vec![0, 1], 2);
        m.stages = 3;
        assert_eq!(check_map(&cfg(2, 2), &m), Err(CustomMapError::BadPathLength));
    }
}
