//! User-defined pipeline schemes.
//!
//! The paper's framework "offer[s] interfaces for users to modify existing
//! schemes or develop their own" (§4.1). This module is that interface:
//! hand the generator an arbitrary [`StageMap`] — any stage→device path(s)
//! you can draw — plus scheduling knobs, and get back a validated,
//! executable schedule usable by both engines.
//!
//! ```
//! use hanayo_core::config::{PipelineConfig, Scheme};
//! use hanayo_core::ids::{DeviceId, ReplicaId};
//! use hanayo_core::schedule::custom::build_custom_schedule;
//! use hanayo_core::schedule::listsched::ListParams;
//! use hanayo_core::stage_map::{PathGroup, StageMap};
//! use hanayo_core::validate::validate;
//!
//! // A "zigzag" pipeline: 0→1→2→3→1→2 (stages revisit the middle).
//! let path = [0u32, 1, 2, 3, 1, 2].map(DeviceId).to_vec();
//! let map = StageMap {
//!     devices: 4,
//!     stages: 6,
//!     groups: vec![PathGroup { path, replica: ReplicaId(0) }],
//!     mb_group: vec![0; 4],
//! };
//! let cfg = PipelineConfig::new(4, 4, Scheme::GPipe).unwrap(); // P and B only
//! let schedule = build_custom_schedule(&cfg, map, ListParams::default()).unwrap();
//! validate(&schedule).unwrap();
//! ```

use crate::action::Schedule;
use crate::comm;
use crate::config::PipelineConfig;
use crate::schedule::listsched::{list_schedule, ListParams};
use crate::schedule::ScheduleError;
use crate::stage_map::StageMap;
use std::fmt;

/// Errors specific to user-provided stage maps. Every variant names the
/// offending group/stage/micro-batch index, so a bad map in a batch of
/// hand-written schemes is locatable without bisecting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CustomMapError {
    /// A path references a device rank ≥ `devices`.
    DeviceOutOfRange {
        /// Offending group index.
        group: usize,
        /// Stage position within the group's path.
        stage: usize,
        /// The out-of-range rank.
        device: u32,
        /// Number of devices the map declares.
        devices: u32,
    },
    /// `mb_group` length does not match the micro-batch count.
    WrongGroupCount {
        /// `mb_group.len()`.
        got: usize,
        /// `cfg.micro_batches`.
        expected: usize,
    },
    /// A micro-batch's `mb_group` entry references a missing group.
    GroupOutOfRange {
        /// Offending micro-batch index.
        mb: usize,
        /// The out-of-range group it names.
        group: usize,
        /// Number of groups the map declares.
        groups: usize,
    },
    /// A group's path length differs from `stages`.
    BadPathLength {
        /// Offending group index.
        group: usize,
        /// Its path length.
        got: usize,
        /// The map's declared stage count.
        expected: u32,
    },
    /// The map declares no groups.
    NoGroups,
}

impl fmt::Display for CustomMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CustomMapError::DeviceOutOfRange { group, stage, device, devices } => write!(
                f,
                "group {group} stage {stage} references device {device}, only {devices} devices"
            ),
            CustomMapError::WrongGroupCount { got, expected } => {
                write!(f, "mb_group has {got} entries for {expected} micro-batches")
            }
            CustomMapError::GroupOutOfRange { mb, group, groups } => {
                write!(f, "micro-batch {mb} assigned to group {group}, only {groups} groups")
            }
            CustomMapError::BadPathLength { group, got, expected } => {
                write!(f, "group {group} path has {got} stages, map declares {expected}")
            }
            CustomMapError::NoGroups => write!(f, "stage map has no groups"),
        }
    }
}

impl std::error::Error for CustomMapError {}

/// Check a user-provided map against a configuration.
pub fn check_map(cfg: &PipelineConfig, map: &StageMap) -> Result<(), CustomMapError> {
    if map.groups.is_empty() {
        return Err(CustomMapError::NoGroups);
    }
    for (g, group) in map.groups.iter().enumerate() {
        if group.path.len() != map.stages as usize {
            return Err(CustomMapError::BadPathLength {
                group: g,
                got: group.path.len(),
                expected: map.stages,
            });
        }
        if let Some((s, d)) = group.path.iter().enumerate().find(|(_, d)| d.0 >= map.devices) {
            return Err(CustomMapError::DeviceOutOfRange {
                group: g,
                stage: s,
                device: d.0,
                devices: map.devices,
            });
        }
    }
    if map.mb_group.len() != cfg.micro_batches as usize {
        return Err(CustomMapError::WrongGroupCount {
            got: map.mb_group.len(),
            expected: cfg.micro_batches as usize,
        });
    }
    if let Some((m, &g)) = map.mb_group.iter().enumerate().find(|(_, &g)| g >= map.groups.len()) {
        return Err(CustomMapError::GroupOutOfRange { mb: m, group: g, groups: map.groups.len() });
    }
    Ok(())
}

/// Build a complete schedule from a user-provided stage map. The
/// configuration contributes `P` and `B`; its `scheme` field is ignored
/// (the map *is* the scheme).
pub fn build_custom_schedule(
    cfg: &PipelineConfig,
    map: StageMap,
    params: ListParams,
) -> Result<Schedule, ScheduleError> {
    check_map(cfg, &map)?;
    let cs = list_schedule(cfg, map, params)?;
    Ok(comm::lower(&cs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use crate::ids::{DeviceId, ReplicaId};
    use crate::stage_map::PathGroup;
    use crate::validate::validate;

    fn cfg(p: u32, b: u32) -> PipelineConfig {
        PipelineConfig::new(p, b, Scheme::GPipe).unwrap()
    }

    fn map(devices: u32, path: Vec<u32>, b: u32) -> StageMap {
        StageMap {
            devices,
            stages: path.len() as u32,
            groups: vec![PathGroup {
                path: path.into_iter().map(DeviceId).collect(),
                replica: ReplicaId(0),
            }],
            mb_group: vec![0; b as usize],
        }
    }

    #[test]
    fn zigzag_pipeline_schedules_and_validates() {
        let m = map(4, vec![0, 1, 2, 3, 1, 2], 4);
        let s = build_custom_schedule(&cfg(4, 4), m, ListParams::default()).unwrap();
        validate(&s).unwrap();
    }

    #[test]
    fn single_device_chain_works() {
        // Degenerate: the whole "pipeline" on one device — still valid.
        let m = map(1, vec![0, 0, 0], 2);
        let s = build_custom_schedule(&cfg(1, 2), m, ListParams::default()).unwrap();
        validate(&s).unwrap();
        // No communication at all.
        for (_, a) in s.iter_actions() {
            assert!(
                a.comm_ops().is_empty()
                    || a.is_compute()
                    || a == &crate::action::Action::OptimizerStep
            );
        }
    }

    #[test]
    fn reversed_pipeline_is_just_as_valid() {
        let m = map(3, vec![2, 1, 0], 3);
        let s = build_custom_schedule(&cfg(3, 3), m, ListParams::default()).unwrap();
        validate(&s).unwrap();
    }

    #[test]
    fn rejects_out_of_range_device() {
        let m = map(2, vec![0, 5], 2);
        assert_eq!(
            check_map(&cfg(2, 2), &m),
            Err(CustomMapError::DeviceOutOfRange { group: 0, stage: 1, device: 5, devices: 2 })
        );
    }

    #[test]
    fn rejects_bad_group_assignment() {
        let mut m = map(2, vec![0, 1], 2);
        m.mb_group = vec![0, 7];
        assert_eq!(
            check_map(&cfg(2, 2), &m),
            Err(CustomMapError::GroupOutOfRange { mb: 1, group: 7, groups: 1 })
        );
        m.mb_group = vec![0];
        assert_eq!(
            check_map(&cfg(2, 2), &m),
            Err(CustomMapError::WrongGroupCount { got: 1, expected: 2 })
        );
    }

    #[test]
    fn rejects_path_length_mismatch() {
        let mut m = map(2, vec![0, 1], 2);
        m.stages = 3;
        assert_eq!(
            check_map(&cfg(2, 2), &m),
            Err(CustomMapError::BadPathLength { group: 0, got: 2, expected: 3 })
        );
    }

    #[test]
    fn errors_name_the_offending_index() {
        // The error *message* carries the index, not just the shape — a bad
        // map in a batch of hand-written schemes is locatable directly.
        let m = map(2, vec![0, 5], 2);
        let msg = check_map(&cfg(2, 2), &m).unwrap_err().to_string();
        assert!(
            msg.contains("group 0") && msg.contains("stage 1") && msg.contains("device 5"),
            "{msg}"
        );

        let mut m = map(2, vec![0, 1], 3);
        m.mb_group = vec![0, 0, 4];
        let msg = check_map(&cfg(2, 3), &m).unwrap_err().to_string();
        assert!(msg.contains("micro-batch 2") && msg.contains("group 4"), "{msg}");
    }

    #[test]
    fn build_custom_schedule_propagates_the_typed_map_error() {
        // Previously lossy-mapped to ConfigError::Empty; now the index
        // survives to the ScheduleError layer.
        let m = map(2, vec![0, 5], 2);
        assert_eq!(
            build_custom_schedule(&cfg(2, 2), m, ListParams::default()).unwrap_err(),
            ScheduleError::CustomMap(CustomMapError::DeviceOutOfRange {
                group: 0,
                stage: 1,
                device: 5,
                devices: 2
            })
        );
    }
}
