//! DAPPLE / 1F1B (Fan et al. 2020): one-forward-one-backward scheduling.
//!
//! Device `d` performs `min(B, P-1-d)` warm-up forwards, then alternates
//! forward/backward in steady state, then drains the remaining backwards
//! (Fig. 3b). Activation memory on device `d` peaks at `min(B, P-d)`
//! micro-batches — high at the head of the pipe, low at the tail, which is
//! the imbalance the paper measures (variance 16.85 in Fig. 8).

use crate::chain::{ComputeOp, ComputeSchedule};
use crate::config::PipelineConfig;
use crate::schedule::ScheduleError;
use crate::stage_map::StageMap;

/// Generate DAPPLE's per-device compute order. Degenerate shapes are
/// rejected with the named [`ConfigError`](crate::config::ConfigError)
/// reason; the warm-up depth uses checked arithmetic so no `(P, B, d)`
/// combination (P=1, B<P, deep devices) can underflow.
pub fn generate(cfg: &PipelineConfig) -> Result<ComputeSchedule, ScheduleError> {
    cfg.validate()?;
    let map = StageMap::for_config(cfg);
    let p = cfg.devices;
    let b = cfg.micro_batches;
    let mut per_device: Vec<Vec<ComputeOp>> = Vec::with_capacity(p as usize);
    for d in 0..p {
        // Device d warms up min(B, P-1-d) forwards; clamp to zero rather
        // than underflow when the pipe is shallower than the device index.
        let warmup = p.saturating_sub(1 + d).min(b);
        let steady = b - warmup;
        let mut ops = Vec::with_capacity(2 * b as usize);
        for m in 0..warmup {
            ops.push(ComputeOp::fwd(m, d));
        }
        for k in 0..steady {
            ops.push(ComputeOp::fwd(warmup + k, d));
            ops.push(ComputeOp::bwd(k, d));
        }
        for m in steady..b {
            ops.push(ComputeOp::bwd(m, d));
        }
        per_device.push(ops);
    }
    Ok(ComputeSchedule { config: *cfg, stage_map: map, per_device })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;

    fn gen(p: u32, b: u32) -> ComputeSchedule {
        generate(&PipelineConfig::new(p, b, Scheme::Dapple).unwrap()).unwrap()
    }

    #[test]
    fn last_device_is_pure_1f1b() {
        let cs = gen(4, 4);
        let last = &cs.per_device[3];
        let kinds: Vec<bool> = last.iter().map(|o| o.backward).collect();
        assert_eq!(kinds, vec![false, true, false, true, false, true, false, true]);
    }

    #[test]
    fn first_device_warms_up_p_minus_1() {
        let cs = gen(4, 8);
        let first = &cs.per_device[0];
        assert!(first[..3].iter().all(|o| !o.backward));
        assert!(first[3].mb.0 == 3 && !first[3].backward);
        assert!(first[4].mb.0 == 0 && first[4].backward);
    }

    #[test]
    fn op_counts_complete() {
        for (p, b) in [(2, 2), (4, 4), (4, 9), (8, 3)] {
            let cs = gen(p, b);
            assert_eq!(cs.total_ops(), cs.expected_ops(), "P={p} B={b}");
        }
    }

    #[test]
    fn in_flight_activations_bounded_by_depth() {
        // Replay device d's list: stash on F, pop on B; peak ≤ min(B, P-d).
        for (p, b) in [(4u32, 4u32), (4, 8), (8, 8)] {
            let cs = gen(p, b);
            for (d, ops) in cs.per_device.iter().enumerate() {
                let mut live = 0i64;
                let mut peak = 0i64;
                for op in ops {
                    if op.backward {
                        live -= 1;
                    } else {
                        live += 1;
                        peak = peak.max(live);
                    }
                }
                assert!(peak as u32 <= (p - d as u32).min(b), "P={p} B={b} d={d} peak={peak}");
            }
        }
    }

    #[test]
    fn small_b_degenerates_gracefully() {
        let cs = gen(8, 2);
        assert_eq!(cs.total_ops(), cs.expected_ops());
    }

    #[test]
    fn degenerate_shapes_complete_or_reject_by_name() {
        // P=1 and B<P must produce complete schedules, not underflow.
        for (p, b) in [(1u32, 1u32), (1, 4), (2, 1), (8, 1), (16, 3)] {
            let cs = gen(p, b);
            assert_eq!(cs.total_ops(), cs.expected_ops(), "P={p} B={b}");
        }
        // Zero shapes reject with the named reason instead of emitting an
        // empty "complete" schedule.
        let cfg = PipelineConfig { devices: 4, micro_batches: 0, scheme: Scheme::Dapple };
        assert_eq!(
            generate(&cfg).unwrap_err(),
            ScheduleError::Config(crate::config::ConfigError::Empty)
        );
    }
}
