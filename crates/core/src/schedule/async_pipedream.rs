//! PipeDream-style asynchronous 1F1B (Harlap et al. 2018) — Fig. 4(b).
//!
//! Asynchronous pipelines drop the end-of-iteration flush: iteration `n+1`
//! forwards start while iteration `n` backwards are still draining, at the
//! cost of stale weights (which is why the paper — and we — exclude it from
//! the synchronous benchmark set). Within one iteration the op order is
//! exactly 1F1B; the *absence of the flush barrier* is an engine property,
//! exposed by `hanayo-sim`'s back-to-back iteration mode used to render
//! Fig. 4.

use crate::chain::ComputeSchedule;
use crate::config::PipelineConfig;
use crate::schedule::{dapple, ScheduleError};

/// Generate the per-iteration op order (identical to DAPPLE; the schedule
/// is asynchronous only across iterations). Degenerate shapes reject with
/// DAPPLE's named reasons.
pub fn generate(cfg: &PipelineConfig) -> Result<ComputeSchedule, ScheduleError> {
    let mut cs = dapple::generate(cfg)?;
    cs.config = *cfg; // keep the AsyncPipeDream scheme marker
    Ok(cs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;

    #[test]
    fn same_intra_iteration_order_as_dapple() {
        let a = PipelineConfig::new(4, 4, Scheme::AsyncPipeDream).unwrap();
        let d = PipelineConfig::new(4, 4, Scheme::Dapple).unwrap();
        assert_eq!(generate(&a).unwrap().per_device, dapple::generate(&d).unwrap().per_device);
    }

    #[test]
    fn keeps_its_scheme_marker() {
        let cfg = PipelineConfig::new(4, 4, Scheme::AsyncPipeDream).unwrap();
        assert_eq!(generate(&cfg).unwrap().config.scheme, Scheme::AsyncPipeDream);
    }
}
