//! Hanayo: the paper's wave-like pipeline schedule (§3.2–§3.3).
//!
//! The model is split into `S = 2·W·P` stages laid out along the wave path
//! of [`crate::stage_map::wave_path`]: wave `k` descends through devices
//! `0..P` and ascends back. Each device therefore holds `2W` local modules
//! and **one** copy of its share of the weights — the whole point of the
//! transformation in Fig. 5 is that Chimera's bidirectional bubble-filling
//! survives while the second weight replica does not.
//!
//! The per-device op order is produced by the constrained list scheduler
//! with an in-flight cap of `P` micro-batches, which matches 1F1B's
//! activation budget and produces the schedules drawn in Figs. 3(d), 3(e)
//! and 6.

use crate::chain::ComputeSchedule;
use crate::config::PipelineConfig;
use crate::schedule::listsched::{list_schedule, ListParams, RetireRule};
use crate::schedule::ScheduleError;
use crate::stage_map::StageMap;

/// Generate Hanayo's per-device compute order.
pub fn generate(cfg: &PipelineConfig) -> Result<ComputeSchedule, ScheduleError> {
    let map = StageMap::for_config(cfg);
    let params = ListParams {
        cap: Some(cfg.devices),
        retire: RetireRule::ForwardComplete,
        ..Default::default()
    };
    list_schedule(cfg, map, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;

    fn gen(p: u32, b: u32, w: u32) -> ComputeSchedule {
        generate(&PipelineConfig::new(p, b, Scheme::Hanayo { waves: w }).unwrap()).unwrap()
    }

    #[test]
    fn complete_for_a_grid_of_shapes() {
        for (p, b, w) in [(2, 2, 1), (2, 4, 2), (4, 4, 1), (4, 4, 2), (4, 8, 4), (8, 8, 2)] {
            let cs = gen(p, b, w);
            assert_eq!(cs.total_ops(), cs.expected_ops(), "P={p} B={b} W={w}");
        }
    }

    #[test]
    fn device0_starts_with_microbatch0() {
        let cs = gen(4, 4, 2);
        let first = cs.per_device[0][0];
        assert_eq!(first.mb.0, 0);
        assert_eq!(first.stage.0, 0);
        assert!(!first.backward);
    }

    #[test]
    fn fold_device_runs_consecutive_stages_back_to_back() {
        // Device P-1 holds stages P-1 and P; micro-batch 0's two fold
        // forwards must be adjacent in its list (no other mb's op between
        // them would break anything, but the wave should flow through).
        let cs = gen(4, 4, 1);
        let fold = &cs.per_device[3];
        let i_a = fold.iter().position(|o| o.mb.0 == 0 && o.stage.0 == 3 && !o.backward).unwrap();
        let i_b = fold.iter().position(|o| o.mb.0 == 0 && o.stage.0 == 4 && !o.backward).unwrap();
        assert!(i_b > i_a);
    }

    #[test]
    fn backward_begins_on_device_zero_without_a_hop() {
        // Stage S-1's forward and stage S-1's backward are both on device 0;
        // mb0's last forward should be followed in device 0's list by a
        // backward before all other forwards drain (wave property).
        let cs = gen(4, 4, 1);
        let s = cs.stage_map.stages;
        let d0 = &cs.per_device[0];
        let last_fwd =
            d0.iter().position(|o| o.mb.0 == 0 && o.stage.0 == s - 1 && !o.backward).unwrap();
        let first_bwd = d0.iter().position(|o| o.backward).unwrap();
        assert_eq!(first_bwd, last_fwd + 1, "device 0 should turn mb0 around immediately: {d0:?}");
    }
}
