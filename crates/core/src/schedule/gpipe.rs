//! GPipe (Huang et al. 2018): the textbook synchronous pipeline.
//!
//! Every device runs the forwards of all `B` micro-batches in order, then
//! all backwards in order (Fig. 3a). Simple, but all `B` activations stay
//! stashed until backward, so activation memory is `B` units on every
//! device and the bubble ratio is `(P-1)/(P-1+B)`.

use crate::chain::{ComputeOp, ComputeSchedule};
use crate::config::PipelineConfig;
use crate::schedule::ScheduleError;
use crate::stage_map::StageMap;

/// Generate GPipe's per-device compute order. Degenerate shapes
/// (`P == 0`, `B == 0`, stage overflow) are rejected with the named
/// [`ConfigError`](crate::config::ConfigError) reason rather than
/// producing a nonsense schedule.
pub fn generate(cfg: &PipelineConfig) -> Result<ComputeSchedule, ScheduleError> {
    cfg.validate()?;
    let map = StageMap::for_config(cfg);
    let b = cfg.micro_batches;
    let mut per_device: Vec<Vec<ComputeOp>> =
        (0..cfg.devices).map(|_| Vec::with_capacity(2 * b as usize)).collect();
    // Stage d lives on device d; forwards in micro-batch order...
    for d in 0..cfg.devices {
        for m in 0..b {
            per_device[d as usize].push(ComputeOp::fwd(m, d));
        }
        // ...then backwards in micro-batch order.
        for m in 0..b {
            per_device[d as usize].push(ComputeOp::bwd(m, d));
        }
    }
    Ok(ComputeSchedule { config: *cfg, stage_map: map, per_device })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;

    #[test]
    fn forwards_strictly_before_backwards() {
        let cfg = PipelineConfig::new(4, 6, Scheme::GPipe).unwrap();
        let cs = generate(&cfg).unwrap();
        for ops in &cs.per_device {
            let first_bwd = ops.iter().position(|o| o.backward).unwrap();
            assert!(ops[..first_bwd].iter().all(|o| !o.backward));
            assert!(ops[first_bwd..].iter().all(|o| o.backward));
        }
    }

    #[test]
    fn op_counts() {
        let cfg = PipelineConfig::new(3, 5, Scheme::GPipe).unwrap();
        let cs = generate(&cfg).unwrap();
        assert_eq!(cs.total_ops(), cs.expected_ops());
        for ops in &cs.per_device {
            assert_eq!(ops.len(), 10);
        }
    }

    #[test]
    fn unvalidated_config_is_rejected_with_named_reason() {
        // Direct struct construction bypasses `PipelineConfig::new`; the
        // generator itself must reject, not emit an empty schedule.
        let cfg = PipelineConfig { devices: 0, micro_batches: 4, scheme: Scheme::GPipe };
        assert_eq!(
            generate(&cfg).unwrap_err(),
            ScheduleError::Config(crate::config::ConfigError::Empty)
        );
    }
}
