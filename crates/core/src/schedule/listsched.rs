//! The constrained list scheduler used by the wave-shaped schemes.
//!
//! The paper's framework "automatically deploys the structure with any
//! desired number of waves or devices" (§3.3). We realise that with a
//! deterministic greedy list scheduler: simulate execution under abstract
//! unit costs and freeze the order in which each device picked its ops.
//!
//! Policy (chosen to reproduce the paper's figures):
//!
//! * **Deepest-first** — among ready ops, the one furthest along its
//!   dependency chain wins. This keeps every micro-batch flowing through
//!   the wave instead of letting freshly-arrived shallow work interleave
//!   and shear the wave apart, and it subsumes the 1F1B backward-priority
//!   rule: backward positions are deeper than every forward position by
//!   construction, so a ready backward always beats a ready forward.
//! * **Micro-batch order tie-break** — equal depth resolves to the lower
//!   micro-batch index, which keeps the schedule deterministic and the
//!   waves ordered.
//! * **Admission control** — at most `cap` micro-batches of each path group
//!   may be in flight (entered forward, not yet finished their last
//!   backward). This bounds activation memory exactly like 1F1B's warmup
//!   depth does.

use crate::chain::{ComputeOp, ComputeSchedule};
use crate::config::PipelineConfig;
use crate::ids::MicroBatch;
use crate::schedule::ScheduleError;
use crate::stage_map::StageMap;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// When does an in-flight micro-batch stop counting against the admission
/// cap?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetireRule {
    /// When its final backward completes (strict 1F1B-style accounting).
    /// Correct at `B ≤ P` but re-admission lags the chain latency, so
    /// rounds stall at `B > P`.
    FullChain,
    /// When its last forward chunk completes. The backward backlog stays
    /// bounded anyway because the deepest-first policy drains backwards
    /// before admitting shallow work; this is what sustains the steady
    /// state across rounds.
    ForwardComplete,
}

/// Tunables for [`list_schedule`].
#[derive(Debug, Clone, Copy)]
pub struct ListParams {
    /// Abstract cost of one *stage-chunk* forward.
    pub f_cost: u64,
    /// Abstract cost of one stage-chunk backward (paper draws `T_B = 2 T_F`).
    pub b_cost: u64,
    /// Abstract cost charged between dependent ops on different devices.
    pub comm_cost: u64,
    /// Per-group in-flight micro-batch cap (`None` = unbounded, GPipe-like).
    pub cap: Option<u32>,
    /// Retirement rule for the cap.
    pub retire: RetireRule,
    /// Maximum live stash *chunks* per device. An **entry** forward
    /// (chain position 0) is not dispatched while the device already holds
    /// this many undischarged stashes; mid-chain ops always run. Deferring
    /// an entry cannot stall any in-flight chain, so progress is
    /// guaranteed, while the entry stashes are exactly the longest-lived
    /// ones (they survive until the chain's very last backward) — limiting
    /// them is what keeps a wave pipeline's activation peak near
    /// Chimera's level instead of drifting to 1F1B's head-of-pipe `P`
    /// units.
    pub stash_limit: Option<u32>,
}

impl Default for ListParams {
    fn default() -> Self {
        ListParams {
            f_cost: 1,
            b_cost: 2,
            comm_cost: 0,
            cap: None,
            retire: RetireRule::FullChain,
            stash_limit: None,
        }
    }
}

/// Priority of a ready op within one device's ready set. `Ord` is "larger =
/// run first" to suit a max-heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Prio {
    pos: u32,         // deeper chain position first (subsumes 1F1B priority)
    mb: Reverse<u32>, // lower micro-batch first
}

/// Event queue entries, ordered by time then sequence for determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// Device finished its current op.
    DeviceDone { device: u32, mb: u32, pos: u32 },
    /// A dependency (possibly with comm delay) resolved; op becomes ready.
    OpReady { mb: u32, pos: u32 },
}

struct Engine<'a> {
    map: &'a StageMap,
    stages: u32,
    params: ListParams,
    ready: Vec<BinaryHeap<(Prio, u32, u32)>>,
    busy: Vec<bool>,
    order: Vec<Vec<ComputeOp>>,
    in_flight: Vec<u32>,
    pending: Vec<VecDeque<u32>>,
    stash_chunks: Vec<u32>,
    events: BinaryHeap<Reverse<Event>>,
    seq: u64,
    done: usize,
}

impl<'a> Engine<'a> {
    fn push_event(&mut self, time: u64, kind: EventKind) {
        self.events.push(Reverse(Event { time, seq: self.seq, kind }));
        self.seq += 1;
    }

    fn device_of(&self, mb: u32, pos: u32) -> usize {
        let op = ComputeOp::from_pos(MicroBatch(mb), pos, self.stages);
        let g = self.map.group_of(MicroBatch(mb));
        self.map.groups[g].path[op.stage.idx()].idx()
    }

    /// Admit micro-batches of group `g` up to the cap.
    fn admit(&mut self, g: usize, now: u64) {
        let cap = self.params.cap.unwrap_or(u32::MAX);
        while self.in_flight[g] < cap {
            let Some(m) = self.pending[g].pop_front() else { break };
            self.in_flight[g] += 1;
            self.push_event(now, EventKind::OpReady { mb: m, pos: 0 });
        }
    }

    /// Handle one event; returns the device whose ready set / busy state
    /// changed.
    fn handle(&mut self, ev: Event) -> usize {
        let now = ev.time;
        match ev.kind {
            EventKind::OpReady { mb, pos } => {
                let d = self.device_of(mb, pos);
                let prio = Prio { pos, mb: Reverse(mb) };
                self.ready[d].push((prio, mb, pos));
                d
            }
            EventKind::DeviceDone { device, mb, pos } => {
                let d = device as usize;
                self.busy[d] = false;
                self.done += 1;
                let retire_pos = match self.params.retire {
                    RetireRule::FullChain => 2 * self.stages - 1,
                    RetireRule::ForwardComplete => self.stages - 1,
                };
                if pos == retire_pos {
                    let g = self.map.group_of(MicroBatch(mb));
                    self.in_flight[g] -= 1;
                    self.admit(g, now);
                }
                if pos + 1 < 2 * self.stages {
                    let next_d = self.device_of(mb, pos + 1);
                    let delay = if next_d == d { 0 } else { self.params.comm_cost };
                    self.push_event(now + delay, EventKind::OpReady { mb, pos: pos + 1 });
                }
                d
            }
        }
    }

    /// Start the best ready op on device `d` if it is idle.
    ///
    /// Entry forwards blocked by the stash limit sit at the *bottom* of
    /// the priority heap (position 0), so when the top op is a blocked
    /// entry the device genuinely has nothing else to do and idles; it is
    /// re-examined on every event that touches it, including its own
    /// stash-reducing backward completions.
    fn dispatch(&mut self, d: usize, now: u64) {
        if self.busy[d] {
            return;
        }
        if let Some(&(_, mb, pos)) = self.ready[d].peek() {
            let op = ComputeOp::from_pos(MicroBatch(mb), pos, self.stages);
            if pos == 0 {
                let limit = self.params.stash_limit.unwrap_or(u32::MAX);
                if self.stash_chunks[d] >= limit {
                    return;
                }
            }
            if op.backward {
                self.stash_chunks[d] = self.stash_chunks[d].saturating_sub(1);
            } else {
                self.stash_chunks[d] += 1;
            }
            self.ready[d].pop();
            let cost = if op.backward { self.params.b_cost } else { self.params.f_cost };
            self.busy[d] = true;
            self.order[d].push(op);
            self.push_event(now + cost.max(1), EventKind::DeviceDone { device: d as u32, mb, pos });
        }
    }
}

/// Generate a per-device compute order for an arbitrary [`StageMap`] by
/// deterministic greedy list scheduling.
pub fn list_schedule(
    cfg: &PipelineConfig,
    map: StageMap,
    params: ListParams,
) -> Result<ComputeSchedule, ScheduleError> {
    let s = map.stages;
    let b = cfg.micro_batches;
    let p = map.devices as usize;
    let total_ops = (2 * s * b) as usize;
    let groups = map.groups.len();

    let mut pending: Vec<VecDeque<u32>> = vec![VecDeque::new(); groups];
    for m in 0..b {
        pending[map.group_of(MicroBatch(m))].push_back(m);
    }

    let mut eng = Engine {
        map: &map,
        stages: s,
        params,
        ready: (0..p).map(|_| BinaryHeap::new()).collect(),
        busy: vec![false; p],
        order: (0..p).map(|_| Vec::new()).collect(),
        in_flight: vec![0; groups],
        pending,
        stash_chunks: vec![0; p],
        events: BinaryHeap::new(),
        seq: 0,
        done: 0,
    };

    for g in 0..groups {
        eng.admit(g, 0);
    }

    // Main loop: drain every event at the current timestamp before
    // dispatching, so dispatch decisions see the complete ready set.
    while let Some(Reverse(first)) = eng.events.pop() {
        let now = first.time;
        let mut touched = vec![eng.handle(first)];
        while eng.events.peek().is_some_and(|Reverse(peek)| peek.time == now) {
            let Some(Reverse(ev)) = eng.events.pop() else { break };
            touched.push(eng.handle(ev));
        }
        touched.sort_unstable();
        touched.dedup();
        for d in touched {
            eng.dispatch(d, now);
        }
    }

    if eng.done != total_ops {
        return Err(ScheduleError::Deadlock { scheduled: eng.done, expected: total_ops });
    }
    let order = eng.order;
    Ok(ComputeSchedule { config: *cfg, stage_map: map, per_device: order })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;

    fn hanayo_cfg(p: u32, b: u32, w: u32) -> (PipelineConfig, StageMap) {
        let cfg = PipelineConfig::new(p, b, Scheme::Hanayo { waves: w }).unwrap();
        let map = StageMap::for_config(&cfg);
        (cfg, map)
    }

    #[test]
    fn schedules_all_ops_exactly_once() {
        let (cfg, map) = hanayo_cfg(4, 8, 2);
        let cs =
            list_schedule(&cfg, map, ListParams { cap: Some(4), ..Default::default() }).unwrap();
        assert_eq!(cs.total_ops(), cs.expected_ops());
        let mut seen = std::collections::HashSet::new();
        for ops in &cs.per_device {
            for op in ops {
                assert!(seen.insert(*op), "duplicate {op}");
            }
        }
        assert_eq!(seen.len(), cs.expected_ops());
    }

    #[test]
    fn ops_run_on_their_mapped_device() {
        let (cfg, map) = hanayo_cfg(4, 4, 1);
        let cs = list_schedule(&cfg, map.clone(), ListParams::default()).unwrap();
        for (d, ops) in cs.per_device.iter().enumerate() {
            for op in ops {
                assert_eq!(map.device_of(op.mb, op.stage).idx(), d);
            }
        }
    }

    #[test]
    fn per_device_order_respects_chain_deps_locally() {
        // If two ops of the same micro-batch land on the same device, the
        // earlier chain position must be listed first.
        let (cfg, map) = hanayo_cfg(4, 4, 2);
        let s = map.stages;
        let cs = list_schedule(&cfg, map, ListParams::default()).unwrap();
        for ops in &cs.per_device {
            for m in 0..cfg.micro_batches {
                let positions: Vec<u32> =
                    ops.iter().filter(|o| o.mb.0 == m).map(|o| o.pos(s)).collect();
                let mut sorted = positions.clone();
                sorted.sort_unstable();
                assert_eq!(positions, sorted, "mb{m} out of chain order");
            }
        }
    }

    #[test]
    fn admission_cap_bounds_in_flight() {
        let (cfg, map) = hanayo_cfg(2, 8, 1);
        let s = map.stages;
        let cs =
            list_schedule(&cfg, map, ListParams { cap: Some(2), ..Default::default() }).unwrap();
        // mb k's first forward cannot be listed on the entry device before
        // mb k-2's final backward completes there (cap = 2).
        let dev0 = &cs.per_device[0];
        let first_fwd = |m: u32| dev0.iter().position(|o| o.mb.0 == m && o.pos(s) == 0).unwrap();
        let last_bwd =
            |m: u32| dev0.iter().position(|o| o.mb.0 == m && o.pos(s) == 2 * s - 1).unwrap();
        for m in 2..8 {
            assert!(first_fwd(m) > last_bwd(m - 2), "mb{m} admitted before mb{} retired", m - 2);
        }
    }

    #[test]
    fn forward_complete_retirement_sustains_steady_state() {
        // At B = 4P, re-admitting on forward completion (instead of full
        // retirement) must cut the replayed bubble ratio without raising
        // the activation peak above the 1F1B budget of P units.
        use crate::gantt::replay_timeline;
        use crate::memory::unit_profile;
        let p = 8;
        let run = |retire: RetireRule| {
            let (cfg, map) = hanayo_cfg(p, 4 * p, 2);
            let cs =
                list_schedule(&cfg, map, ListParams { cap: Some(p), retire, ..Default::default() })
                    .unwrap();
            let bubble = replay_timeline(&cs, 1, 2, 0).bubble_ratio();
            let peak = unit_profile(&cs).ma_peak_units.iter().cloned().fold(0.0, f64::max);
            (bubble, peak)
        };
        let (bub_full, _) = run(RetireRule::FullChain);
        let (bub_fwd, peak_fwd) = run(RetireRule::ForwardComplete);
        assert!(bub_fwd < bub_full, "fwd {bub_fwd} vs full {bub_full}");
        assert!(peak_fwd <= p as f64 + 1e-9, "activation peak {peak_fwd}");
    }

    #[test]
    fn unbounded_cap_floods_like_gpipe() {
        let (cfg, map) = hanayo_cfg(2, 4, 1);
        let cs = list_schedule(&cfg, map, ListParams::default()).unwrap();
        assert_eq!(cs.total_ops(), cs.expected_ops());
    }

    #[test]
    fn turnaround_device_backs_up_immediately() {
        // The deepest-first rule means the device holding the last stage
        // (device 0 in a wave pipeline) turns mb0 around with no forward in
        // between: B(mb0, S-1) directly follows F(mb0, S-1).
        let (cfg, map) = hanayo_cfg(2, 4, 1);
        let s = map.stages;
        let cs =
            list_schedule(&cfg, map, ListParams { cap: Some(2), ..Default::default() }).unwrap();
        let d0 = &cs.per_device[0];
        let last_fwd =
            d0.iter().position(|o| o.mb.0 == 0 && o.stage.0 == s - 1 && !o.backward).unwrap();
        assert_eq!(d0[last_fwd + 1], ComputeOp::bwd(0, s - 1), "turnaround delayed: {d0:?}");
    }
}
